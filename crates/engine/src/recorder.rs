//! The provenance recorder interface.
//!
//! The runtime is scheme-agnostic: at each of the three stages of the
//! online compression scheme (Section 5.3) it calls into a [`ProvRecorder`]
//! and forwards the returned [`ProvMeta`] with the tuple on the wire. The
//! concrete ExSPAN / Basic / Advanced recorders live in `dpc-core`.

use dpc_common::{EqKeyHash, EvId, NodeId, Rid, Tuple};
use dpc_ndlog::Rule;
use dpc_telemetry::TelemetryHandle;

/// Where in its execution a traveling tuple is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A freshly injected input event that has not yet passed stage 1
    /// (equivalence-keys checking).
    Input,
    /// A derived tuple in flight between rules.
    Derived,
}

/// Metadata tagged along with a tuple as it travels through an execution.
///
/// This is the paper's "existFlag ... along with some auxiliary data (e.g.
/// hash value of the event tuple)" (Section 6.1.2). Its wire size is
/// scheme-dependent and accounted into bandwidth via [`ProvMeta::wire_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvMeta {
    /// Input vs derived.
    pub stage: Stage,
    /// Unique id of this execution (assigned at injection; used by the
    /// ground-truth recorder and for debugging, not shipped on the wire).
    pub exec_id: u64,
    /// `existFlag`: `true` when the event's equivalence keys were seen
    /// before, instructing nodes to skip provenance maintenance.
    pub exist_flag: bool,
    /// Hash of the input event peculiar to this execution.
    pub evid: Option<EvId>,
    /// Hash of the input event's equivalence-key valuation.
    pub eq_hash: Option<EqKeyHash>,
    /// Reference to the most recent rule-execution provenance node: the
    /// `(NLoc, NRID)` chain head for Basic/Advanced, the deriving rule
    /// execution for ExSPAN.
    pub prev: Option<(NodeId, Rid)>,
    /// Bytes this metadata occupies on the wire (scheme-dependent).
    pub wire_bytes: usize,
}

impl ProvMeta {
    /// Metadata for a freshly injected input event.
    pub fn input(exec_id: u64, evid: EvId) -> ProvMeta {
        ProvMeta {
            stage: Stage::Input,
            exec_id,
            exist_flag: false,
            evid: Some(evid),
            eq_hash: None,
            prev: None,
            wire_bytes: 1,
        }
    }
}

/// Hooks invoked by the runtime as a DELP executes.
///
/// A recorder is one logical object, but its state is partitioned per node
/// (every method takes the node at which the action happens); the
/// simulation is single-threaded, so this models a distributed deployment
/// without actual sharing.
pub trait ProvRecorder {
    /// Stage 1 — a fresh input event arrived at `node`. The recorder may
    /// set `exist_flag`, `eq_hash` and `wire_bytes` on `meta`.
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta);

    /// Stage 2 — `rule` fired at `node`, consuming `event` and `slow`,
    /// deriving `head`. Returns the metadata to ship with `head`.
    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta;

    /// Stage 3 — `output` (a tuple of an output relation) arrived at
    /// `node`, completing the execution described by `meta`.
    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta);

    /// A slow-changing base tuple was installed at `node` (initial setup or
    /// a runtime update).
    fn on_base_install(&mut self, node: NodeId, tuple: &Tuple) {
        let _ = (node, tuple);
    }

    /// A `sig` control broadcast (Section 5.5) reached `node` following an
    /// insertion into some slow-changing table.
    fn on_sig(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Serialized size of the provenance tables held at `node` — the
    /// paper's storage metric.
    fn storage_at(&self, node: NodeId) -> usize;

    /// Attach a telemetry sink. Recorders that report metrics (table row
    /// counts, `htequi` hit rates, dedup savings) keep the handle; the
    /// default implementation ignores it.
    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        let _ = telemetry;
    }
}

// Boxed recorders forward every hook, so scheme-generic code (e.g. the
// `Scheme::recorder` factory) can drive a `Runtime<Box<dyn ProvRecorder>>`.
impl ProvRecorder for Box<dyn ProvRecorder> {
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta) {
        (**self).on_input(node, event, meta)
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        (**self).on_rule(node, rule, event, slow, head, meta)
    }

    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta) {
        (**self).on_output(node, output, meta)
    }

    fn on_base_install(&mut self, node: NodeId, tuple: &Tuple) {
        (**self).on_base_install(node, tuple)
    }

    fn on_sig(&mut self, node: NodeId) {
        (**self).on_sig(node)
    }

    fn storage_at(&self, node: NodeId) -> usize {
        (**self).storage_at(node)
    }

    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        (**self).attach_telemetry(telemetry)
    }
}

/// A recorder that maintains no provenance at all (the uninstrumented
/// baseline for network-overhead comparisons).
#[derive(Debug, Clone, Default)]
pub struct NoopRecorder;

impl ProvRecorder for NoopRecorder {
    fn on_input(&mut self, _node: NodeId, _event: &Tuple, _meta: &mut ProvMeta) {}

    fn on_rule(
        &mut self,
        _node: NodeId,
        _rule: &Rule,
        _event: &Tuple,
        _slow: &[Tuple],
        _head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        let mut m = meta.clone();
        m.stage = Stage::Derived;
        m
    }

    fn on_output(&mut self, _node: NodeId, _output: &Tuple, _meta: &ProvMeta) {}

    fn storage_at(&self, _node: NodeId) -> usize {
        0
    }
}

/// Runs a primary recorder and a shadow observer side by side.
///
/// The primary drives the metadata (its `existFlag`, chain references and
/// wire sizes are what ship); the shadow sees the same callbacks *after*
/// the primary and must not influence execution. Used to run the
/// ground-truth tree recorder next to a scheme under test.
#[derive(Debug)]
pub struct TeeRecorder<A, B> {
    /// The recorder whose metadata drives execution.
    pub primary: A,
    /// The passive observer.
    pub shadow: B,
}

impl<A, B> TeeRecorder<A, B> {
    /// Combine `primary` and `shadow`.
    pub fn new(primary: A, shadow: B) -> Self {
        TeeRecorder { primary, shadow }
    }
}

impl<A: ProvRecorder, B: ProvRecorder> ProvRecorder for TeeRecorder<A, B> {
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta) {
        self.primary.on_input(node, event, meta);
        let mut shadow_meta = meta.clone();
        self.shadow.on_input(node, event, &mut shadow_meta);
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        let out = self.primary.on_rule(node, rule, event, slow, head, meta);
        let _ = self.shadow.on_rule(node, rule, event, slow, head, meta);
        out
    }

    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta) {
        self.primary.on_output(node, output, meta);
        self.shadow.on_output(node, output, meta);
    }

    fn on_base_install(&mut self, node: NodeId, tuple: &Tuple) {
        self.primary.on_base_install(node, tuple);
        self.shadow.on_base_install(node, tuple);
    }

    fn on_sig(&mut self, node: NodeId) {
        self.primary.on_sig(node);
        self.shadow.on_sig(node);
    }

    fn storage_at(&self, node: NodeId) -> usize {
        // The primary's tables are the measured artifact.
        self.primary.storage_at(node)
    }

    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        // Only the primary reports: the shadow observes silently, exactly
        // like it stays out of storage accounting.
        self.primary.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::Value;

    #[test]
    fn input_meta_defaults() {
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(0))]);
        let m = ProvMeta::input(7, ev.evid());
        assert_eq!(m.stage, Stage::Input);
        assert_eq!(m.exec_id, 7);
        assert!(!m.exist_flag);
        assert_eq!(m.evid, Some(ev.evid()));
        assert!(m.prev.is_none());
        assert_eq!(m.wire_bytes, 1);
    }

    #[test]
    fn noop_recorder_passes_meta_through() {
        let mut r = NoopRecorder;
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(0))]);
        let mut meta = ProvMeta::input(0, ev.evid());
        r.on_input(NodeId(0), &ev, &mut meta);
        assert_eq!(meta.stage, Stage::Input);
        let rule = dpc_ndlog::parse_program("r1 out(@X) :- e(@X).")
            .unwrap()
            .rules[0]
            .clone();
        let head = Tuple::new("out", vec![Value::Addr(NodeId(0))]);
        let m2 = r.on_rule(NodeId(0), &rule, &ev, &[], &head, &meta);
        assert_eq!(m2.stage, Stage::Derived);
        assert_eq!(m2.evid, meta.evid);
        assert_eq!(r.storage_at(NodeId(0)), 0);
    }

    #[test]
    fn tee_reports_primary_storage() {
        let tee = TeeRecorder::new(NoopRecorder, NoopRecorder);
        assert_eq!(tee.storage_at(NodeId(0)), 0);
    }
}
