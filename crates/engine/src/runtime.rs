//! The pipelined semi-naïve runtime.
//!
//! A [`Runtime`] deploys one DELP on every node of a simulated network and
//! processes injected input events: each event joins the local
//! slow-changing tables, fires the matching rules, and the derived head
//! tuples ship to the node named by their location specifier — continuing
//! until the output relation derives (Section 3.1). Provenance maintenance
//! hooks fire at each stage through the [`ProvRecorder`].
//!
//! Slow-changing tables can be updated while the system runs
//! ([`Runtime::update_slow_at`]): per Section 5.5, an insertion broadcasts a
//! `sig` control message that makes every node clear its equivalence-keys
//! hash table, so subsequent executions re-materialize provenance.

use std::collections::HashMap;

use dpc_common::{Error, EvId, NodeId, Result, StorageSize, Tuple, Vid};
use dpc_ndlog::{analyze, Delp, Mode as AnalysisMode};
use dpc_netsim::{Network, Sim, SimTime, TrafficStats};
use dpc_telemetry::{AttrValue, SpanContext, TelemetryHandle, TraceKind};

use crate::db::Database;
use crate::eval::{eval_rule, FnRegistry};
use crate::plan::{EvalStats, PlanSet, RulePlan};
use crate::recorder::{NoopRecorder, ProvMeta, ProvRecorder, Stage};

/// Messages exchanged by the runtime over the simulated network.
#[derive(Debug, Clone)]
enum Msg {
    /// A tuple delivery (input event, intermediate event or output tuple).
    Event { tuple: Tuple, meta: ProvMeta },
    /// Apply an insertion into a slow-changing table at the destination,
    /// then broadcast `sig`.
    SlowInsert { tuple: Tuple },
    /// Apply a deletion from a slow-changing table.
    SlowDelete { tuple: Tuple },
    /// The Section 5.5 control broadcast.
    Sig,
}

/// A completed execution's output tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord {
    /// When the output derived.
    pub at: SimTime,
    /// Node where the output tuple lives.
    pub node: NodeId,
    /// The output tuple.
    pub tuple: Tuple,
    /// The input event's id.
    pub evid: EvId,
    /// The execution id assigned at injection.
    pub exec_id: u64,
}

/// Per-node execution counters, for load-distribution analysis and
/// debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Event tuples handled (input or intermediate arrivals).
    pub events_handled: u64,
    /// Rules fired here.
    pub rules_fired: u64,
    /// Output tuples derived here.
    pub outputs: u64,
    /// `sig` broadcasts received.
    pub sigs: u64,
}

/// Tunables of the runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Local processing delay per rule firing.
    pub rule_proc_delay: SimTime,
    /// Wire size of a `sig` broadcast message.
    pub sig_bytes: usize,
    /// Extra payload bytes charged per event message beyond the tuple's
    /// serialized size (models framing/headers).
    pub header_bytes: usize,
    /// Materialize event tuples (by vid at visited nodes, by evid at the
    /// input node) so provenance queries can resolve their contents.
    /// Disable for storage/bandwidth measurement runs at very large scale
    /// — queries then cannot resolve leaf contents.
    pub retain_tuples: bool,
    /// Keep an [`OutputRecord`] per derived output. Disable for very
    /// large measurement runs; [`Runtime::outputs_count`] still counts.
    pub record_outputs: bool,
    /// Evaluate rules through compiled [`RulePlan`]s (slot bindings +
    /// secondary-index joins) instead of the naive AST interpreter. On by
    /// default; the interpreter is kept for differential testing and as
    /// the "before" baseline in benchmarks.
    pub compiled_plans: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            rule_proc_delay: SimTime::from_micros(10),
            sig_bytes: 24,
            header_bytes: 28,
            retain_tuples: true,
            record_outputs: true,
            compiled_plans: true,
        }
    }
}

/// Headline counters of one run, aggregated across every node — the
/// unified facade the benchmark harness reads instead of poking at the
/// simulator, recorder and runtime separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMetrics {
    /// Output tuples derived.
    pub outputs: u64,
    /// Rules fired across all nodes.
    pub rules_fired: u64,
    /// Messages dropped by loss injection.
    pub dropped_messages: u64,
    /// Total bytes on the wire.
    pub total_traffic_bytes: u64,
    /// Total provenance storage across all nodes, bytes.
    pub total_storage_bytes: usize,
}

/// A fluent constructor for [`Runtime`]: collects the recorder, config,
/// relations of interest, user functions and telemetry sink, then
/// validates everything in one [`RuntimeBuilder::build`] call.
///
/// ```ignore
/// let rt = Runtime::builder(delp, net)
///     .recorder(ExspanRecorder::new(n))
///     .config(RuntimeConfig::default())
///     .interest(["dnsResult"])
///     .register_fn("f_isSubDomain", is_sub_domain)
///     .telemetry(Telemetry::handle())
///     .build()?;
/// ```
pub struct RuntimeBuilder<R = NoopRecorder> {
    delp: Delp,
    net: Network,
    recorder: R,
    config: RuntimeConfig,
    interest: Vec<String>,
    fns: FnRegistry,
    telemetry: Option<TelemetryHandle>,
}

impl RuntimeBuilder<NoopRecorder> {
    /// Start a builder with the no-op recorder (swap it with
    /// [`RuntimeBuilder::recorder`]).
    pub fn new(delp: Delp, net: Network) -> RuntimeBuilder<NoopRecorder> {
        RuntimeBuilder {
            delp,
            net,
            recorder: NoopRecorder,
            config: RuntimeConfig::default(),
            interest: Vec::new(),
            fns: FnRegistry::new(),
            telemetry: None,
        }
    }
}

impl<R: ProvRecorder> RuntimeBuilder<R> {
    /// Use `recorder` for provenance maintenance.
    pub fn recorder<R2: ProvRecorder>(self, recorder: R2) -> RuntimeBuilder<R2> {
        RuntimeBuilder {
            delp: self.delp,
            net: self.net,
            recorder,
            config: self.config,
            interest: self.interest,
            fns: self.fns,
            telemetry: self.telemetry,
        }
    }

    /// Replace the runtime configuration.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Declare *relations of interest* (Section 3.2): derived head
    /// relations whose tuples get concrete provenance associations even
    /// when intermediate. Validated against the program at build time.
    pub fn interest<I, S>(mut self, rels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.interest.extend(rels.into_iter().map(Into::into));
        self
    }

    /// Register a user-defined function.
    pub fn register_fn(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[dpc_common::Value]) -> Result<dpc_common::Value> + Send + Sync + 'static,
    ) -> Self {
        self.fns.register(name, f);
        self
    }

    /// Mutable access to the function registry, for helpers that install
    /// function packages (e.g. the self-hosted provenance functions).
    pub fn fns_mut(&mut self) -> &mut FnRegistry {
        &mut self.fns
    }

    /// Attach a telemetry sink: wired into the simulator (traffic
    /// counters, queueing delays), the runtime (rule/join/output counters,
    /// trace events, periodic snapshots on the simulated clock) and the
    /// recorder (table sizes, `htequi` hit rates).
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Validate and construct the [`Runtime`].
    ///
    /// Runs the full static analysis (`dpc_ndlog::analyze`) over the
    /// program: error-severity diagnostics fail the build with the
    /// rendered report (defense in depth — [`Delp`] construction already
    /// rejects them), warnings are accepted and surfaced through the
    /// [`dpc_telemetry::counters::LINT_WARNINGS`] counter when a telemetry
    /// sink is attached. Every compiled [`RulePlan`] is audited against
    /// the static join-key analysis before the runtime is returned.
    pub fn build(self) -> Result<Runtime<R>> {
        let mode = if self.delp.is_strict() {
            AnalysisMode::Strict
        } else {
            AnalysisMode::Relaxed
        };
        let analysis = analyze(self.delp.program(), mode);
        if analysis.has_errors() {
            let src = self.delp.program().to_string();
            let mut report = String::new();
            for d in analysis.errors() {
                report.push_str(&d.render(&src, "<program>"));
            }
            return Err(Error::InvalidDelp(report));
        }
        let lint_warnings = analysis.warnings().count() as u64;

        let mut rt = Runtime::new(self.delp, self.net, self.recorder);
        rt.plans.audit()?;
        rt.lint_warnings = lint_warnings;
        rt.config = self.config;
        rt.fns = self.fns;
        rt.apply_interest(self.interest)?;
        if let Some(t) = self.telemetry {
            rt.attach_telemetry(t);
        }
        Ok(rt)
    }
}

/// The engine runtime: one DELP deployed on every node of a network.
pub struct Runtime<R> {
    delp: Delp,
    /// Rules compiled once at construction (see [`crate::plan`]); shared
    /// by all nodes.
    plans: PlanSet,
    sim: Sim<Msg>,
    dbs: Vec<Database>,
    /// Input events materialized at their injection node, keyed by `evid`
    /// (the paper: "the tagged evid is used to retrieve the event tuple
    /// materialized at n").
    events: Vec<HashMap<EvId, Tuple>>,
    fns: FnRegistry,
    recorder: R,
    outputs: Vec<OutputRecord>,
    next_exec_id: u64,
    config: RuntimeConfig,
    /// Relations of interest beyond the output relations (Section 3.2):
    /// intermediate head relations whose tuples also get concrete
    /// provenance associations.
    interest: std::collections::BTreeSet<String>,
    metrics: Vec<NodeMetrics>,
    outputs_count: u64,
    /// Errors from rule evaluation are fatal to the run; kept for context.
    rules_fired: u64,
    /// Static-analysis warnings accepted at build time (see
    /// [`RuntimeBuilder::build`]); exported when telemetry attaches.
    lint_warnings: u64,
    telemetry: Option<TelemetryHandle>,
}

impl Runtime<NoopRecorder> {
    /// Start a [`RuntimeBuilder`] for `delp` on `net` (no-op recorder
    /// until [`RuntimeBuilder::recorder`] replaces it).
    pub fn builder(delp: Delp, net: Network) -> RuntimeBuilder<NoopRecorder> {
        RuntimeBuilder::new(delp, net)
    }
}

impl<R: ProvRecorder> Runtime<R> {
    /// Deploy `delp` on `net` with the given provenance recorder.
    pub fn new(delp: Delp, net: Network, recorder: R) -> Runtime<R> {
        let n = net.node_count();
        let plans = PlanSet::compile(&delp).expect("validated DELP: every rule has an event atom");
        Runtime {
            delp,
            plans,
            sim: Sim::new(net),
            dbs: (0..n).map(|_| Database::new()).collect(),
            events: (0..n).map(|_| HashMap::new()).collect(),
            fns: FnRegistry::new(),
            recorder,
            outputs: Vec::new(),
            next_exec_id: 0,
            config: RuntimeConfig::default(),
            interest: std::collections::BTreeSet::new(),
            metrics: vec![NodeMetrics::default(); n],
            outputs_count: 0,
            rules_fired: 0,
            lint_warnings: 0,
            telemetry: None,
        }
    }

    /// Execution counters for one node.
    pub fn node_metrics(&self, node: NodeId) -> NodeMetrics {
        self.metrics[node.index()]
    }

    /// Validate and install the relations of interest (Section 3.2):
    /// head relations whose tuples — even intermediate ones — get
    /// concrete provenance associations (a stage 3 call per derived
    /// tuple), so administrators can query them directly instead of
    /// replaying. Output relations are always of interest and need not be
    /// listed. Called from [`RuntimeBuilder::build`].
    fn apply_interest<I, S>(&mut self, rels: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let heads: std::collections::BTreeSet<&str> = self
            .delp
            .rules()
            .iter()
            .map(|r| r.head.rel.as_str())
            .collect();
        let mut set = std::collections::BTreeSet::new();
        for r in rels {
            let r: String = r.into();
            if !heads.contains(r.as_str()) {
                return Err(Error::Schema(format!(
                    "`{r}` is not a derived (head) relation of this program"
                )));
            }
            set.insert(r);
        }
        self.interest = set;
        Ok(())
    }

    /// Attach a telemetry sink to the simulator, the recorder and the
    /// runtime itself. Usually set through
    /// [`RuntimeBuilder::telemetry`].
    pub fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.sim.set_telemetry(telemetry.clone());
        self.recorder.attach_telemetry(telemetry.clone());
        telemetry.count(
            dpc_telemetry::counters::PLANS_COMPILED,
            None,
            self.plans.len() as u64,
        );
        if self.lint_warnings > 0 {
            telemetry.count(
                dpc_telemetry::counters::LINT_WARNINGS,
                None,
                self.lint_warnings,
            );
        }
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetryHandle> {
        self.telemetry.as_ref()
    }

    /// Toggle compiled-plan evaluation after construction (see
    /// [`RuntimeConfig::compiled_plans`]). Benchmarks use this to compare
    /// the interpreter against the compiled path on identical workloads.
    pub fn set_compiled_plans(&mut self, on: bool) {
        self.config.compiled_plans = on;
    }

    /// Headline counters of the run so far, aggregated across nodes:
    /// outputs, rules fired, drops, wire traffic and provenance storage.
    pub fn metrics(&self) -> RunMetrics {
        let total_storage_bytes = (0..self.dbs.len())
            .map(|i| self.recorder.storage_at(NodeId(i as u32)))
            .sum();
        RunMetrics {
            outputs: self.outputs_count,
            rules_fired: self.rules_fired,
            dropped_messages: self.sim.dropped(),
            total_traffic_bytes: self.sim.stats().total_bytes(),
            total_storage_bytes,
        }
    }

    /// The function registry (shared by all nodes).
    pub fn fns(&self) -> &FnRegistry {
        &self.fns
    }

    /// The deployed program.
    pub fn delp(&self) -> &Delp {
        &self.delp
    }

    /// The network.
    pub fn net(&self) -> &Network {
        self.sim.net()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        self.sim.stats()
    }

    /// Clear traffic statistics (e.g. after topology setup).
    pub fn clear_stats(&mut self) {
        self.sim.stats_mut().clear();
    }

    /// The provenance recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the recorder (e.g. to extract tables after a run).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// One node's database.
    pub fn db(&self, node: NodeId) -> &Database {
        &self.dbs[node.index()]
    }

    /// Outputs derived so far, in derivation order (empty when
    /// `record_outputs` is disabled).
    pub fn outputs(&self) -> &[OutputRecord] {
        &self.outputs
    }

    /// Total outputs derived, counted even when `record_outputs` is off.
    pub fn outputs_count(&self) -> u64 {
        self.outputs_count
    }

    /// Total rule firings so far.
    pub fn rules_fired(&self) -> u64 {
        self.rules_fired
    }

    /// Resolve an input event by `evid` at the node where it entered.
    pub fn event_by_evid(&self, node: NodeId, evid: &EvId) -> Option<&Tuple> {
        self.events.get(node.index())?.get(evid)
    }

    /// Resolve any tuple (base or input event) by content hash at `node`.
    pub fn tuple_by_vid(&self, node: NodeId, vid: &Vid) -> Option<&Tuple> {
        self.dbs.get(node.index())?.by_vid(vid)
    }

    /// Inject deterministic message loss on the directed link
    /// `src -> dst`: every `every`-th message on it is dropped. Failure
    /// injection for tests; provenance of delivered tuples is unaffected
    /// (dropped executions simply never derive their outputs).
    pub fn inject_loss(&mut self, src: NodeId, dst: NodeId, every: u64) {
        self.sim.inject_loss(src, dst, every);
    }

    /// Messages dropped by fault injection so far.
    pub fn dropped_messages(&self) -> u64 {
        self.sim.dropped()
    }

    /// Install a base tuple during setup, without network traffic or `sig`
    /// broadcast. The tuple's location specifier picks the node.
    pub fn install(&mut self, tuple: Tuple) -> Result<()> {
        let node = tuple.loc()?;
        self.check_node(node)?;
        self.recorder.on_base_install(node, &tuple);
        self.dbs[node.index()].insert(tuple);
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.dbs.len() {
            return Err(Error::Network(format!("unknown node {node}")));
        }
        Ok(())
    }

    /// Inject an input event at simulated time `at` (clamped to now). The
    /// event enters at its own location specifier. Returns the execution
    /// id.
    pub fn inject_at(&mut self, tuple: Tuple, at: SimTime) -> Result<u64> {
        if tuple.rel() != self.delp.input_event() {
            return Err(Error::Schema(format!(
                "expected input event relation `{}`, got `{}`",
                self.delp.input_event(),
                tuple.rel()
            )));
        }
        let node = tuple.loc()?;
        self.check_node(node)?;
        let exec_id = self.next_exec_id;
        self.next_exec_id += 1;
        let meta = ProvMeta::input(exec_id, tuple.evid());
        // One trace per execution: the root "exec" span opens when the
        // event enters and closes when its output derives (stage 3) — or,
        // if the execution dies to message loss, when the run drains.
        let at = at.max(self.sim.now());
        let root = self.telemetry.as_ref().map_or(SpanContext::NONE, |t| {
            let s = t.span_root("exec", Some(node.0), at.as_nanos());
            t.span_attr(s, "exec_id", AttrValue::UInt(exec_id));
            s
        });
        self.sim
            .schedule_at_traced(node, at, Msg::Event { tuple, meta }, root);
        Ok(exec_id)
    }

    /// Inject an input event now.
    pub fn inject(&mut self, tuple: Tuple) -> Result<u64> {
        self.inject_at(tuple, self.sim.now())
    }

    /// Schedule an insertion into a slow-changing table at `at`. Applying
    /// it broadcasts `sig` to every node (Section 5.5).
    pub fn update_slow_at(&mut self, tuple: Tuple, at: SimTime) -> Result<()> {
        let node = tuple.loc()?;
        self.check_node(node)?;
        if !self.delp.is_slow(tuple.rel()) {
            return Err(Error::Schema(format!(
                "`{}` is not a slow-changing relation",
                tuple.rel()
            )));
        }
        self.sim.schedule_at(node, at, Msg::SlowInsert { tuple });
        Ok(())
    }

    /// Schedule a deletion from a slow-changing table at `at`. Deletion
    /// does not affect stored provenance (provenance is monotone) and does
    /// not broadcast.
    pub fn delete_slow_at(&mut self, tuple: Tuple, at: SimTime) -> Result<()> {
        let node = tuple.loc()?;
        self.check_node(node)?;
        self.sim.schedule_at(node, at, Msg::SlowDelete { tuple });
        Ok(())
    }

    /// Run until no work remains. Any spans left open by lost messages
    /// (an execution whose output never derived) are closed at the final
    /// simulated time so every sampled trace stays a well-formed tree.
    pub fn run(&mut self) -> Result<()> {
        while let Some(d) = self.sim.pop() {
            self.handle(d.at, d.dst, d.msg, d.span)?;
        }
        if let Some(t) = &self.telemetry {
            t.close_open_spans(self.sim.now().as_nanos());
        }
        // The series always end at the drained terminal state (idempotent
        // if the drain coincides with the last periodic tick).
        self.sample_timeseries_now();
        Ok(())
    }

    /// Run until simulated `deadline` (events after it stay queued).
    pub fn run_until(&mut self, deadline: SimTime) -> Result<()> {
        while let Some(d) = self.sim.pop_until(deadline) {
            self.handle(d.at, d.dst, d.msg, d.span)?;
        }
        Ok(())
    }

    /// Record the engine layer's time-series gauges at sampling stamp
    /// `stamp`: pending delta-queue depth (the event heap drives rule
    /// re-evaluation), per-node table cardinality and estimated bytes,
    /// then the network layer's series ([`Sim::record_timeseries`]).
    /// Registry gauges (recorder table sizes, equivalence-table state,
    /// `engine.db_rows`) and derived ratios (`engine.index_hit_ratio`,
    /// `recorder.htequi_hit_rate`) were already copied by the sampler
    /// itself when the tick fired.
    fn record_timeseries(&self, stamp: u64) {
        let Some(t) = &self.telemetry else {
            return;
        };
        let mut entries: Vec<(String, f64)> = vec![(
            "engine.pending_deltas".to_string(),
            self.sim.pending() as f64,
        )];
        for (i, db) in self.dbs.iter().enumerate() {
            entries.push((format!("engine.table_rows#{i}"), db.len() as f64));
            entries.push((
                format!("engine.table_bytes#{i}"),
                db.estimated_bytes() as f64,
            ));
        }
        t.ts_record_all(stamp, entries);
        self.sim.record_timeseries(stamp);
    }

    /// Force a time-series sample at the current simulated time,
    /// regardless of the cadence (no-op when sampling is disabled). Called
    /// automatically at the end of [`Runtime::run`]; bench drivers that
    /// stop at a deadline via [`Runtime::run_until`] can call it to close
    /// out the series.
    pub fn sample_timeseries_now(&self) {
        if let Some(t) = &self.telemetry {
            if let Some(stamp) = t.sample_now(self.sim.now().as_nanos()) {
                self.record_timeseries(stamp);
            }
        }
    }

    fn handle(&mut self, at: SimTime, node: NodeId, msg: Msg, ctx: SpanContext) -> Result<()> {
        if let Some(t) = &self.telemetry {
            t.maybe_snapshot(at.as_nanos());
            if let Some(stamp) = t.sample_tick(at.as_nanos()) {
                self.record_timeseries(stamp);
            }
        }
        match msg {
            Msg::Event { tuple, meta } => self.handle_event(at, node, tuple, meta, ctx),
            Msg::SlowInsert { tuple } => {
                self.recorder.on_base_install(node, &tuple);
                self.dbs[node.index()].insert(tuple);
                if let Some(t) = &self.telemetry {
                    t.count("engine.sig_broadcasts", None, 1);
                }
                // The Section 5.5 control broadcast is its own trace: the
                // root spans the fan-out until the last sig arrives.
                let root = self.telemetry.as_ref().map_or(SpanContext::NONE, |t| {
                    t.span_root("engine.sig", Some(node.0), at.as_nanos())
                });
                // Broadcast sig to every node, including self.
                let mut last = at;
                for m in self.sim.net().nodes().collect::<Vec<_>>() {
                    if m == node {
                        self.sim
                            .schedule_local_traced(node, SimTime::ZERO, Msg::Sig, root);
                    } else {
                        let arrival = self.sim.send_routed_traced(
                            node,
                            m,
                            self.config.sig_bytes,
                            Msg::Sig,
                            root,
                        )?;
                        last = last.max(arrival);
                    }
                }
                if let Some(t) = &self.telemetry {
                    t.span_end(root, last.as_nanos());
                }
                Ok(())
            }
            Msg::SlowDelete { tuple } => {
                self.dbs[node.index()].remove(&tuple);
                Ok(())
            }
            Msg::Sig => {
                self.metrics[node.index()].sigs += 1;
                if let Some(t) = &self.telemetry {
                    t.count("engine.sigs_received", Some(node.0), 1);
                    t.trace(at.as_nanos(), Some(node.0), TraceKind::Sig);
                    // The htequi clear is instantaneous in the model; the
                    // span still marks where equivalence state reset.
                    let s = t.span_child("engine.sig", Some(node.0), ctx, at.as_nanos());
                    t.span_end(s, at.as_nanos());
                }
                self.recorder.on_sig(node);
                Ok(())
            }
        }
    }

    fn handle_event(
        &mut self,
        at: SimTime,
        node: NodeId,
        tuple: Tuple,
        mut meta: ProvMeta,
        ctx: SpanContext,
    ) -> Result<()> {
        self.metrics[node.index()].events_handled += 1;
        if let Some(t) = &self.telemetry {
            t.count("engine.events_handled", Some(node.0), 1);
        }
        // Output tuples complete an execution (stage 3).
        if self.delp.is_output(tuple.rel()) {
            self.metrics[node.index()].outputs += 1;
            self.outputs_count += 1;
            if let Some(t) = &self.telemetry {
                t.count("engine.outputs", Some(node.0), 1);
                t.trace(at.as_nanos(), Some(node.0), TraceKind::Stage3);
                // Stage 3 closes the execution's root span.
                let s = t.span_child("engine.event", Some(node.0), ctx, at.as_nanos());
                t.span_attr(s, "output", AttrValue::Str(tuple.rel().to_string()));
                t.span_end(s, at.as_nanos());
                t.span_end_root(ctx.trace, at.as_nanos());
            }
            self.recorder.on_output(node, &tuple, &meta);
            if self.config.retain_tuples {
                self.dbs[node.index()].insert(tuple.clone());
            }
            if self.config.record_outputs {
                self.outputs.push(OutputRecord {
                    at,
                    node,
                    tuple,
                    evid: meta.evid.expect("every execution carries its evid"),
                    exec_id: meta.exec_id,
                });
            }
            return Ok(());
        }

        // The per-arrival "engine.event" span covers stage 1 (if this is
        // a fresh input) and stage 2; it ends when the last derived tuple
        // reaches its destination, so its duration is the time this hop
        // added to the execution.
        let ev = self.telemetry.as_ref().map_or(SpanContext::NONE, |t| {
            let s = t.span_child("engine.event", Some(node.0), ctx, at.as_nanos());
            t.span_attr(s, "rel", AttrValue::Str(tuple.rel().to_string()));
            s
        });

        // Stage 1 for fresh inputs: equivalence-keys checking and event
        // materialization.
        if meta.stage == Stage::Input {
            self.recorder.on_input(node, &tuple, &mut meta);
            if let Some(t) = &self.telemetry {
                t.trace(at.as_nanos(), Some(node.0), TraceKind::Stage1);
                // Schemes that run the equivalence check set `eq_hash`;
                // `exist_flag` then distinguishes a compressed re-execution
                // (hit) from a fresh class (miss).
                if meta.eq_hash.is_some() {
                    let kind = if meta.exist_flag {
                        TraceKind::EqHit
                    } else {
                        TraceKind::EqMiss
                    };
                    t.trace(at.as_nanos(), Some(node.0), kind);
                    let eq = t.span_child("engine.eq", Some(node.0), ev, at.as_nanos());
                    t.span_attr(eq, "hit", AttrValue::UInt(meta.exist_flag as u64));
                    t.span_end(eq, at.as_nanos());
                }
            }
            meta.stage = Stage::Derived;
            if self.config.retain_tuples {
                self.events[node.index()].insert(tuple.evid(), tuple.clone());
            }
        }
        // Every event tuple (input or intermediate) is resolvable by vid at
        // the node it visited — ExSPAN's query fetches intermediate tuple
        // contents, and input events are the leaf tuples of every scheme.
        if self.config.retain_tuples {
            self.dbs[node.index()].insert(tuple.clone());
        }

        // Stage 2: fire every rule whose event relation matches. Plans are
        // `Arc`s, so collecting them is a refcount bump per rule (the old
        // path deep-cloned each `Rule` here, per event).
        let plans: Vec<std::sync::Arc<RulePlan>> = self.plans.plans_for_event(tuple.rel()).to_vec();
        let mut ev_end = at;
        for plan in &plans {
            let rule = plan.rule();
            if let Some(t) = &self.telemetry {
                t.count("engine.joins_attempted", Some(node.0), 1);
            }
            let firings = if self.config.compiled_plans {
                let mut stats = EvalStats::default();
                let firings =
                    plan.eval(&tuple, &mut self.dbs[node.index()], &self.fns, &mut stats)?;
                if let Some(t) = &self.telemetry {
                    if stats.index_hits > 0 {
                        t.count(
                            dpc_telemetry::counters::INDEX_HITS,
                            Some(node.0),
                            stats.index_hits,
                        );
                    }
                    if stats.index_misses > 0 {
                        t.count(
                            dpc_telemetry::counters::INDEX_MISSES,
                            Some(node.0),
                            stats.index_misses,
                        );
                    }
                }
                firings
            } else {
                eval_rule(rule, &tuple, &self.dbs[node.index()], &self.fns)?
            };
            for firing in firings {
                self.rules_fired += 1;
                self.metrics[node.index()].rules_fired += 1;
                if let Some(t) = &self.telemetry {
                    t.count("engine.rules_fired", Some(node.0), 1);
                    t.trace(at.as_nanos(), Some(node.0), TraceKind::RuleFired);
                    t.trace(at.as_nanos(), Some(node.0), TraceKind::Stage2);
                }
                // The "engine.rule" span runs from the firing to the
                // derived tuple's arrival at its destination, so per-rule
                // histograms measure real end-to-end rule latency.
                let rule_span = self.telemetry.as_ref().map_or(SpanContext::NONE, |t| {
                    let s = t.span_child("engine.rule", Some(node.0), ev, at.as_nanos());
                    t.span_attr(s, "rule", AttrValue::Str(rule.label.clone()));
                    s
                });
                let out_meta =
                    self.recorder
                        .on_rule(node, rule, &tuple, &firing.slow, &firing.head, &meta);
                let dst = firing.head.loc()?;
                self.check_node(dst)?;
                // Relations of interest beyond outputs: associate the
                // derived tuple with its (partial) provenance chain now,
                // exactly like stage 3 does for outputs.
                if self.interest.contains(firing.head.rel())
                    && !self.delp.is_output(firing.head.rel())
                {
                    self.recorder.on_output(dst, &firing.head, &out_meta);
                }
                let bytes =
                    firing.head.storage_size() + out_meta.wire_bytes + self.config.header_bytes;
                let msg = Msg::Event {
                    tuple: firing.head,
                    meta: out_meta,
                };
                let arrival = if dst == node {
                    self.sim.schedule_local_traced(
                        node,
                        self.config.rule_proc_delay,
                        msg,
                        rule_span,
                    )
                } else {
                    self.sim
                        .send_routed_traced(node, dst, bytes, msg, rule_span)?
                };
                if let Some(t) = &self.telemetry {
                    t.span_end(rule_span, arrival.as_nanos());
                }
                ev_end = ev_end.max(arrival);
            }
        }
        if let Some(t) = &self.telemetry {
            t.span_end(ev, ev_end.as_nanos());
            t.gauge(
                "engine.db_rows",
                Some(node.0),
                self.dbs[node.index()].len() as i64,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use dpc_common::Value;
    use dpc_ndlog::programs;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    /// The paper's Figure 2 deployment: 3 nodes in a line, routes at n0
    /// and n1 towards n2 (paper numbering n1,n2,n3 maps to n0,n1,n2).
    fn figure2_runtime() -> Runtime<NoopRecorder> {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, NoopRecorder);
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        rt
    }

    #[test]
    fn packet_traverses_and_derives_recv() {
        let mut rt = figure2_runtime();
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        let out = &rt.outputs()[0];
        assert_eq!(out.node, n(2));
        assert_eq!(
            out.tuple,
            Tuple::new(
                "recv",
                vec![
                    Value::Addr(n(2)),
                    Value::Addr(n(0)),
                    Value::Addr(n(2)),
                    Value::str("data"),
                ],
            )
        );
        // r1 fired at n0 and n1, r2 at n2.
        assert_eq!(rt.rules_fired(), 3);
    }

    #[test]
    fn event_is_materialized_at_input_node() {
        let mut rt = figure2_runtime();
        let pkt = packet(0, 0, 2, "data");
        let evid = pkt.evid();
        rt.inject(pkt.clone()).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.event_by_evid(n(0), &evid), Some(&pkt));
        assert_eq!(rt.event_by_evid(n(1), &evid), None);
        assert_eq!(rt.tuple_by_vid(n(0), &pkt.vid()), Some(&pkt));
    }

    #[test]
    fn packet_without_route_goes_nowhere() {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, NoopRecorder);
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
        assert_eq!(rt.rules_fired(), 0);
    }

    #[test]
    fn injection_validates_relation_and_node() {
        let mut rt = figure2_runtime();
        let wrong = Tuple::new("recv", vec![Value::Addr(n(0))]);
        assert!(rt.inject(wrong).is_err());
        let bad_node = packet(9, 0, 2, "x");
        assert!(rt.inject(bad_node).is_err());
    }

    #[test]
    fn traffic_accounts_tuple_and_header() {
        let mut rt = figure2_runtime();
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        // Two network transfers (n0->n1, n1->n2); each carries the packet
        // tuple plus header plus 1 meta byte (Noop leaves wire_bytes = 1).
        let pkt_bytes = packet(1, 0, 2, "data").storage_size();
        let expected = 2 * (pkt_bytes + 1 + RuntimeConfig::default().header_bytes);
        assert_eq!(rt.stats().total_bytes(), expected as u64);
    }

    #[test]
    fn run_with_timeseries_samples_all_layers() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_timeseries(SimTime::from_millis(1).as_nanos(), 256);
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = RuntimeBuilder::new(programs::packet_forwarding(), net)
            .telemetry(t.clone())
            .build()
            .unwrap();
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        for i in 0..5 {
            rt.inject_at(
                packet(0, 0, 2, &format!("p{i}")),
                SimTime::from_millis(i * 5),
            )
            .unwrap();
        }
        rt.run().unwrap();
        // Engine-layer series exist for every node and end at the drained
        // terminal state: all tables quiescent, heap empty.
        for i in 0..3 {
            let rows = t.timeseries_get(&format!("engine.table_rows#{i}")).unwrap();
            assert!(!rows.is_empty());
            let bytes = t
                .timeseries_get(&format!("engine.table_bytes#{i}"))
                .unwrap();
            assert_eq!(rows.len(), bytes.len());
        }
        let pending = t.timeseries_get("engine.pending_deltas").unwrap();
        assert_eq!(pending.last().unwrap().1, 0.0, "drained at the end");
        let heap = t.timeseries_get("net.heap_depth").unwrap();
        assert_eq!(heap.last().unwrap().1, 0.0);
        // Network-layer cumulative bytes are monotone non-decreasing.
        let bytes = t.timeseries_get("net.bytes_total").unwrap();
        assert!(bytes.windows(2).all(|w| w[0].1 <= w[1].1), "{bytes:?}");
        assert!(bytes.last().unwrap().1 > 0.0);
        // The index hit ratio rides along as a derived gauge (compiled
        // plans are on by default and this workload probes indexes).
        assert!(t.timeseries_get("engine.index_hit_ratio").is_some());
        // Stamps are aligned to the cadence except possibly the final
        // forced sample.
        let every = SimTime::from_millis(1).as_nanos();
        for (i, &(stamp, _)) in pending.iter().enumerate() {
            if i + 1 < pending.len() {
                assert_eq!(stamp % every, 0, "aligned stamp {stamp}");
            }
        }
    }

    #[test]
    fn multiple_packets_all_arrive() {
        let mut rt = figure2_runtime();
        for i in 0..10 {
            rt.inject_at(
                packet(0, 0, 2, &format!("p{i}")),
                SimTime::from_millis(i * 10),
            )
            .unwrap();
        }
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 10);
        // Outputs arrive in injection order (FIFO links, same path).
        let payloads: Vec<_> = rt
            .outputs()
            .iter()
            .map(|o| o.tuple.args()[3].as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            payloads,
            (0..10).map(|i| format!("p{i}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut rt = figure2_runtime();
        rt.inject_at(packet(0, 0, 2, "late"), SimTime::from_secs(10))
            .unwrap();
        rt.run_until(SimTime::from_secs(1)).unwrap();
        assert!(rt.outputs().is_empty());
        assert_eq!(rt.now(), SimTime::from_secs(1));
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
    }

    #[test]
    fn slow_update_reroutes_subsequent_packets() {
        // Figure 7: a new node is used as intermediate hop after a route
        // change. Topology: 0-1-2 line plus 0-3-2 alternative.
        let mut net = topo::line(3, Link::STUB_STUB);
        let n3 = net.add_node();
        net.add_link(n(0), n3, Link::STUB_STUB).unwrap();
        net.add_link(n3, n(2), Link::STUB_STUB).unwrap();
        let mut rt = Runtime::new(programs::packet_forwarding(), net, NoopRecorder);
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        rt.install(route(3, 2, 2)).unwrap();

        rt.inject_at(packet(0, 0, 2, "before"), SimTime::ZERO)
            .unwrap();
        // At t=1s: delete route via n1, insert route via n3.
        rt.delete_slow_at(route(0, 2, 1), SimTime::from_secs(1))
            .unwrap();
        rt.update_slow_at(route(0, 2, 3), SimTime::from_secs(1))
            .unwrap();
        rt.inject_at(packet(0, 0, 2, "after"), SimTime::from_secs(2))
            .unwrap();
        rt.run().unwrap();

        assert_eq!(rt.outputs().len(), 2);
        // Both arrive at n2 regardless of path.
        assert!(rt.outputs().iter().all(|o| o.node == n(2)));
        // The new path must have carried the second packet via n3.
        assert!(rt.stats().link_bytes(n(0), n3) > 0);
    }

    #[test]
    fn node_metrics_track_execution() {
        let mut rt = figure2_runtime();
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.inject(packet(0, 0, 2, "url")).unwrap();
        rt.run().unwrap();
        // n0: 2 input events handled, 2 r1 firings.
        let m0 = rt.node_metrics(n(0));
        assert_eq!(m0.events_handled, 2);
        assert_eq!(m0.rules_fired, 2);
        assert_eq!(m0.outputs, 0);
        // n2: 2 packet arrivals + 2 recv deliveries, 2 r2 firings, 2 outs.
        let m2 = rt.node_metrics(n(2));
        assert_eq!(m2.events_handled, 4);
        assert_eq!(m2.rules_fired, 2);
        assert_eq!(m2.outputs, 2);
        assert_eq!(m2.sigs, 0);
        // A slow update delivers a sig everywhere.
        rt.update_slow_at(route(1, 0, 0), rt.now()).unwrap();
        rt.run().unwrap();
        for i in 0..3 {
            assert_eq!(rt.node_metrics(n(i)).sigs, 1, "node n{i}");
        }
    }

    #[test]
    fn lossy_link_drops_executions_cleanly() {
        let mut rt = figure2_runtime();
        // Drop every 2nd message on the n1 -> n2 hop.
        rt.inject_loss(n(1), n(2), 2);
        for i in 0..6 {
            rt.inject(packet(0, 0, 2, &format!("p{i}"))).unwrap();
        }
        rt.run().unwrap();
        // Half the packets die on the lossy hop; the rest arrive intact.
        assert_eq!(rt.outputs().len(), 3);
        assert_eq!(rt.dropped_messages(), 3);
        let payloads: Vec<_> = rt
            .outputs()
            .iter()
            .map(|o| o.tuple.args()[3].as_str().unwrap().to_string())
            .collect();
        assert_eq!(payloads, vec!["p0", "p2", "p4"]);
    }

    #[test]
    fn builder_exports_lint_warnings_counter() {
        // Z is never used: W0201 on a strictly valid program.
        let p = dpc_ndlog::parse_program("r1 out(@X, Y) :- e(@X, Y, Z).").unwrap();
        let delp = Delp::new(p).unwrap();
        let t = dpc_telemetry::Telemetry::handle();
        Runtime::builder(delp, topo::line(2, Link::STUB_STUB))
            .telemetry(t.clone())
            .build()
            .unwrap();
        assert_eq!(
            t.counter_total(dpc_telemetry::counters::LINT_WARNINGS),
            1,
            "one W0201 warning should be exported"
        );
    }

    #[test]
    fn builder_on_clean_program_exports_no_lint_warnings() {
        let t = dpc_telemetry::Telemetry::handle();
        Runtime::builder(
            programs::packet_forwarding(),
            topo::line(2, Link::STUB_STUB),
        )
        .telemetry(t.clone())
        .build()
        .unwrap();
        assert_eq!(t.counter_total(dpc_telemetry::counters::LINT_WARNINGS), 0);
    }

    #[test]
    fn builder_audits_compiled_plans() {
        // A successful build implies every plan passed the audit; make
        // sure the audit also runs standalone over the built plans.
        let rt = Runtime::builder(programs::dns_resolution(), topo::line(2, Link::STUB_STUB))
            .build()
            .unwrap();
        assert_eq!(rt.plans.audit().unwrap(), rt.plans.len());
    }

    #[test]
    fn traced_execution_forms_single_root_tree() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut rt = figure2_runtime();
        rt.attach_telemetry(t.clone());
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        let spans = t.spans();
        assert_eq!(t.open_span_count(), 0);
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        assert_eq!(by_trace.len(), 1, "one execution, one trace");
        let tree = by_trace.values().next().unwrap();
        dpc_telemetry::check_well_formed(tree).unwrap();
        let root = tree.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.name, "exec");
        // The root closes exactly when the output derived.
        assert_eq!(root.end_ns, Some(rt.outputs()[0].at.as_nanos()));
        // All three layers appear: engine events, rule firings, net hops.
        for name in ["engine.event", "engine.rule", "net.hop"] {
            assert!(tree.iter().any(|s| s.name == name), "missing {name}");
        }
        // The critical-path breakdown covers the root duration exactly.
        let bd = dpc_telemetry::critical_path(tree).unwrap();
        assert_eq!(bd.total(), root.duration_ns());
        assert!(bd.network > 0);
    }

    #[test]
    fn loss_does_not_orphan_or_leak_spans() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut rt = figure2_runtime();
        rt.attach_telemetry(t.clone());
        // Drop every 2nd message on the n1 -> n2 hop: half the executions
        // never derive their output.
        rt.inject_loss(n(1), n(2), 2);
        for i in 0..6 {
            rt.inject(packet(0, 0, 2, &format!("p{i}"))).unwrap();
        }
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 3);
        // Every sampled trace — including the lost executions' — is a
        // well-formed tree whose root closed.
        assert_eq!(t.open_span_count(), 0);
        let spans = t.spans();
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        assert_eq!(by_trace.len(), 6);
        for (trace, tree) in by_trace {
            dpc_telemetry::check_well_formed(&tree)
                .unwrap_or_else(|e| panic!("trace {trace}: {e}"));
        }
        // Dropped hops are visible as such.
        let dropped_hops = spans
            .iter()
            .filter(|s| s.name == "net.hop" && s.attr("dropped").is_some())
            .count();
        assert_eq!(dropped_hops, 3);
    }

    #[test]
    fn sampling_traces_subset_of_executions() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(3);
        let mut rt = figure2_runtime();
        rt.attach_telemetry(t.clone());
        for i in 0..6 {
            rt.inject(packet(0, 0, 2, &format!("p{i}"))).unwrap();
        }
        rt.run().unwrap();
        // Head sampling: executions 0 and 3 are traced.
        let spans = t.spans();
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        assert_eq!(by_trace.len(), 2);
        for tree in by_trace.values() {
            dpc_telemetry::check_well_formed(tree).unwrap();
        }
    }

    #[test]
    fn sig_broadcast_is_traced() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut rt = figure2_runtime();
        rt.attach_telemetry(t.clone());
        rt.update_slow_at(route(1, 0, 0), SimTime::ZERO).unwrap();
        rt.run().unwrap();
        let spans = t.spans();
        let root = spans
            .iter()
            .find(|s| s.name == "engine.sig" && s.parent.is_none())
            .unwrap();
        // Three receivers record an "engine.sig" child; the root spans
        // until the last arrival.
        let receipts = spans
            .iter()
            .filter(|s| s.name == "engine.sig" && s.parent.is_some())
            .count();
        assert_eq!(receipts, 3);
        let last = spans.iter().filter_map(|s| s.end_ns).max().unwrap();
        assert_eq!(root.end_ns, Some(last));
        for tree in dpc_telemetry::spans_by_trace(&spans).values() {
            dpc_telemetry::check_well_formed(tree).unwrap();
        }
    }

    #[test]
    fn update_slow_rejects_non_slow_relations() {
        let mut rt = figure2_runtime();
        assert!(rt
            .update_slow_at(packet(0, 0, 2, "x"), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn dns_resolution_end_to_end() {
        // Host n0, root n1, "com" server n2, "hello.com" server n3.
        let net = topo::line(4, Link::STUB_STUB);
        let mut rt = Runtime::builder(programs::dns_resolution(), net)
            .register_fn("f_isSubDomain", |args| {
                let (Some(dm), Some(url)) = (args[0].as_str(), args[1].as_str()) else {
                    return Err(Error::Eval("f_isSubDomain expects strings".into()));
                };
                Ok(Value::Bool(
                    url == dm || url.ends_with(&format!(".{dm}")) || url.ends_with(dm),
                ))
            })
            .build()
            .unwrap();
        rt.install(Tuple::new(
            "rootServer",
            vec![Value::Addr(n(0)), Value::Addr(n(1))],
        ))
        .unwrap();
        rt.install(Tuple::new(
            "nameServer",
            vec![Value::Addr(n(1)), Value::str("com"), Value::Addr(n(2))],
        ))
        .unwrap();
        rt.install(Tuple::new(
            "nameServer",
            vec![
                Value::Addr(n(2)),
                Value::str("hello.com"),
                Value::Addr(n(3)),
            ],
        ))
        .unwrap();
        rt.install(Tuple::new(
            "addressRecord",
            vec![
                Value::Addr(n(3)),
                Value::str("www.hello.com"),
                Value::str("10.0.0.7"),
            ],
        ))
        .unwrap();

        rt.inject(Tuple::new(
            "url",
            vec![
                Value::Addr(n(0)),
                Value::str("www.hello.com"),
                Value::Int(1),
            ],
        ))
        .unwrap();
        rt.run().unwrap();

        assert_eq!(rt.outputs().len(), 1);
        let reply = &rt.outputs()[0].tuple;
        assert_eq!(reply.rel(), "reply");
        assert_eq!(reply.loc().unwrap(), n(0));
        assert_eq!(reply.args()[2], Value::str("10.0.0.7"));
    }
}
