#![warn(missing_docs)]

//! The declarative networking engine.
//!
//! This crate stands in for RapidNet: it executes validated DELPs over the
//! simulated network with *pipelined semi-naïve evaluation* (Section 3.1) —
//! each input event joins the local slow-changing tables, the derived head
//! tuple ships to the node named by its location specifier, and execution
//! continues rule by rule until the output relation is reached.
//!
//! Provenance maintenance plugs in through the [`ProvRecorder`] trait: the
//! runtime invokes the recorder at event input (stage 1 of the online
//! compression scheme), at every rule firing (stage 2) and at output-tuple
//! derivation (stage 3). The three maintenance schemes of the paper
//! (ExSPAN, Basic, Advanced) implement this trait in `dpc-core`.
//!
//! Responsibilities of this crate:
//!
//! * [`db`] — per-node relational databases of base and derived tuples.
//! * [`eval`] — rule matching: unification, joins against slow tables,
//!   arithmetic constraints, assignments, user-defined functions.
//! * [`recorder`] — the [`ProvRecorder`] trait, [`ProvMeta`] (the metadata
//!   tagged along with tuples on the wire, carrying `existFlag`, `evid`
//!   and the provenance chain reference), and recorder combinators.
//! * [`runtime`] — the event loop: injection, rule firing, multi-hop
//!   delivery, slow-table updates with `sig` broadcast (Section 5.5).

pub mod db;
pub mod eval;
pub mod plan;
pub mod recorder;
pub mod runtime;

pub use db::{Database, Table};
pub use eval::{eval_rule, Bindings, Firing, FnRegistry};
pub use plan::{EvalStats, PlanSet, RulePlan};
pub use recorder::{NoopRecorder, ProvMeta, ProvRecorder, Stage, TeeRecorder};
pub use runtime::{NodeMetrics, OutputRecord, RunMetrics, Runtime, RuntimeBuilder, RuntimeConfig};
