//! Per-node relational databases.

use std::collections::{HashMap, HashSet};

use dpc_common::{RelName, StorageSize, Tuple, Vid};

/// One relation's rows at one node.
///
/// Rows are kept both in insertion order (deterministic iteration, so joins
/// and therefore rule firings are reproducible) and in a hash set (O(1)
/// duplicate detection).
#[derive(Debug, Clone, Default)]
pub struct Table {
    rows: Vec<Tuple>,
    index: HashSet<Tuple>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Insert a row; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.index.insert(t.clone()) {
            self.rows.push(t);
            true
        } else {
            false
        }
    }

    /// Remove a row; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.index.remove(t) {
            self.rows.retain(|r| r != t);
            true
        } else {
            false
        }
    }

    /// Does the table contain `t`?
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains(t)
    }

    /// Rows in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl StorageSize for Table {
    fn storage_size(&self) -> usize {
        4 + self
            .rows
            .iter()
            .map(StorageSize::storage_size)
            .sum::<usize>()
    }
}

/// One node's local database: tables keyed by relation name, plus a
/// content-addressed index (`vid -> tuple`) used at provenance-query time
/// to resolve the leaf tuples referenced by `VIDS` columns.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<RelName, Table>,
    by_vid: HashMap<Vid, Tuple>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert a tuple into its relation's table; returns `true` if new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let rel = t.rel_name().clone();
        let fresh = self.tables.entry(rel).or_default().insert(t.clone());
        if fresh {
            self.by_vid.insert(t.vid(), t);
        }
        fresh
    }

    /// Remove a tuple. The vid index keeps the tuple resolvable afterwards:
    /// provenance is monotone (Section 5.5 — deletion does not invalidate
    /// recorded history), so queries may still reference it.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.tables.get_mut(t.rel()) {
            Some(table) => table.remove(t),
            None => false,
        }
    }

    /// The table for `rel`, if it has any rows.
    pub fn table(&self, rel: &str) -> Option<&Table> {
        self.tables.get(rel)
    }

    /// Rows of `rel` (empty slice if the relation is unknown).
    pub fn rows(&self, rel: &str) -> &[Tuple] {
        self.tables.get(rel).map_or(&[], |t| t.rows())
    }

    /// Resolve a tuple by content hash. Covers every tuple ever inserted,
    /// including since-deleted ones.
    pub fn by_vid(&self, vid: &Vid) -> Option<&Tuple> {
        self.by_vid.get(vid)
    }

    /// Names of relations with at least one (current) row.
    pub fn relations(&self) -> impl Iterator<Item = &RelName> {
        self.tables.keys()
    }

    /// Total rows across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::{NodeId, Value};

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(dst)),
                Value::Addr(NodeId(next)),
            ],
        )
    }

    #[test]
    fn insert_dedups() {
        let mut t = Table::new();
        assert!(t.insert(route(1, 3, 2)));
        assert!(!t.insert(route(1, 3, 2)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(&route(1, 3, 2)));
    }

    #[test]
    fn remove_works() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        assert!(t.remove(&route(1, 3, 2)));
        assert!(!t.remove(&route(1, 3, 2)));
        assert!(t.is_empty());
    }

    #[test]
    fn rows_preserve_insertion_order() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        t.insert(route(1, 2, 2));
        t.insert(route(1, 4, 3));
        let dsts: Vec<_> = t
            .rows()
            .iter()
            .map(|r| r.args()[1].as_addr().unwrap().0)
            .collect();
        assert_eq!(dsts, vec![3, 2, 4]);
    }

    #[test]
    fn database_routes_by_relation() {
        let mut db = Database::new();
        db.insert(route(1, 3, 2));
        db.insert(Tuple::new("link", vec![Value::Addr(NodeId(1))]));
        assert_eq!(db.rows("route").len(), 1);
        assert_eq!(db.rows("link").len(), 1);
        assert_eq!(db.rows("nosuch").len(), 0);
        assert_eq!(db.len(), 2);
        assert_eq!(db.relations().count(), 2);
    }

    #[test]
    fn vid_index_survives_deletion() {
        let mut db = Database::new();
        let r = route(1, 3, 2);
        let vid = r.vid();
        db.insert(r.clone());
        db.remove(&r);
        assert_eq!(db.rows("route").len(), 0);
        assert_eq!(db.by_vid(&vid), Some(&r));
    }

    #[test]
    fn table_storage_size() {
        let mut t = Table::new();
        assert_eq!(t.storage_size(), 4);
        let r = route(1, 3, 2);
        let row = r.storage_size();
        t.insert(r);
        assert_eq!(t.storage_size(), 4 + row);
    }
}
