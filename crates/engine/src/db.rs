//! Per-node relational databases.
//!
//! [`Table`] stores rows in *slots*: an append-only vector where deletion
//! blanks the slot (a tombstone) instead of shifting the suffix. That makes
//! [`Table::remove`] O(1) while iteration stays in insertion order —
//! the property the evaluator relies on for reproducible rule firings.
//! Tombstones are compacted (order-preservingly) once they outnumber live
//! rows, so memory stays proportional to the live set.
//!
//! Tables also maintain **secondary hash indexes** keyed by argument
//! positions. An index is built lazily the first time a compiled rule plan
//! probes a `(relation, positions)` combination, and is maintained
//! incrementally on insert; removal relies on tombstones (stale slot ids in
//! a bucket point at blanked slots and are skipped). Buckets list slot ids
//! in insertion order, so an index probe yields exactly the rows a full
//! scan would have matched, in the same order.

use std::collections::HashMap;

use dpc_common::{RelName, StorageSize, Tuple, Value, Vid};

/// Index key: the concatenated canonical encodings of the values at the
/// indexed positions. `Value::encode_into` is self-delimiting, so for a
/// fixed position list the concatenation is injective.
fn index_key(positions: &[usize], args: &[Value]) -> Option<Vec<u8>> {
    let mut key = Vec::with_capacity(positions.len() * 8);
    for &p in positions {
        args.get(p)?.encode_into(&mut key);
    }
    Some(key)
}

/// A secondary hash index over one `(relation, positions)` combination.
#[derive(Debug, Clone, Default)]
struct SecondaryIndex {
    /// Key bytes -> slot ids in insertion order. Slot ids may be stale
    /// (tombstoned); probes skip them.
    buckets: HashMap<Vec<u8>, Vec<usize>>,
    /// Set when a row's arity does not cover the indexed positions; such a
    /// row cannot be keyed, so the index is unusable and probes fall back
    /// to scanning.
    degenerate: bool,
}

impl SecondaryIndex {
    fn add(&mut self, positions: &[usize], slot: usize, t: &Tuple) {
        if self.degenerate {
            return;
        }
        match index_key(positions, t.args()) {
            Some(key) => self.buckets.entry(key).or_default().push(slot),
            None => {
                self.buckets.clear();
                self.degenerate = true;
            }
        }
    }
}

/// One relation's rows at one node.
///
/// Rows are kept in insertion-order slots (deterministic iteration, so
/// joins and therefore rule firings are reproducible) plus a position map
/// (O(1) duplicate detection and O(1) removal), plus any secondary indexes
/// built for compiled-plan probes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Append-only row storage; `None` is a tombstone left by `remove`.
    slots: Vec<Option<Tuple>>,
    /// Row -> slot id, for the live rows only.
    pos: HashMap<Tuple, usize>,
    /// Secondary indexes keyed by the indexed argument positions.
    indexes: HashMap<Box<[usize]>, SecondaryIndex>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Insert a row; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.pos.contains_key(&t) {
            return false;
        }
        let slot = self.slots.len();
        for (positions, idx) in &mut self.indexes {
            idx.add(positions, slot, &t);
        }
        self.pos.insert(t.clone(), slot);
        self.slots.push(Some(t));
        true
    }

    /// Remove a row; returns `true` if it was present. O(1): the slot is
    /// tombstoned, and slots are compacted (preserving order) only once
    /// tombstones outnumber live rows.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(slot) = self.pos.remove(t) else {
            return false;
        };
        self.slots[slot] = None;
        let tombstones = self.slots.len() - self.pos.len();
        if tombstones > self.pos.len().max(16) {
            self.compact();
        }
        true
    }

    /// Drop tombstones, renumber slots in insertion order, and discard the
    /// secondary indexes (they are rebuilt lazily on the next probe).
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.pos.clear();
        for (slot, row) in self.slots.iter().enumerate() {
            let row = row.as_ref().expect("tombstones were just dropped");
            self.pos.insert(row.clone(), slot);
        }
        self.indexes.clear();
    }

    /// Does the table contain `t`?
    pub fn contains(&self, t: &Tuple) -> bool {
        self.pos.contains_key(t)
    }

    /// Live rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Ensure a secondary index exists for `positions`, building it from
    /// the current live rows if needed. Returns `false` if the index is
    /// unusable (some row's arity does not cover `positions`) — callers
    /// should fall back to a scan.
    pub fn ensure_index(&mut self, positions: &[usize]) -> bool {
        if !self.indexes.contains_key(positions) {
            let mut idx = SecondaryIndex::default();
            for (slot, row) in self.slots.iter().enumerate() {
                if let Some(row) = row {
                    idx.add(positions, slot, row);
                }
            }
            self.indexes.insert(positions.into(), idx);
        }
        !self.indexes[positions].degenerate
    }

    /// Probe the `positions` index for rows whose indexed values encode to
    /// `key`, in insertion order. Returns `None` when the index is missing
    /// or degenerate ([`Table::ensure_index`] builds it beforehand).
    pub fn probe<'a>(
        &'a self,
        positions: &[usize],
        key: &[u8],
    ) -> Option<impl Iterator<Item = &'a Tuple>> {
        let idx = self.indexes.get(positions)?;
        if idx.degenerate {
            return None;
        }
        let bucket = idx.buckets.get(key).map(Vec::as_slice).unwrap_or(&[]);
        Some(bucket.iter().filter_map(|&s| self.slots[s].as_ref()))
    }

    /// Number of secondary indexes currently materialized.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

impl StorageSize for Table {
    fn storage_size(&self) -> usize {
        4 + self.iter().map(StorageSize::storage_size).sum::<usize>()
    }
}

/// One node's local database: tables keyed by relation name, plus a
/// content-addressed index (`vid -> tuple`) used at provenance-query time
/// to resolve the leaf tuples referenced by `VIDS` columns.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<RelName, Table>,
    by_vid: HashMap<Vid, Tuple>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert a tuple into its relation's table; returns `true` if new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let rel = t.rel_name().clone();
        let fresh = self.tables.entry(rel).or_default().insert(t.clone());
        if fresh {
            self.by_vid.insert(t.vid(), t);
        }
        fresh
    }

    /// Remove a tuple. The vid index keeps the tuple resolvable afterwards:
    /// provenance is monotone (Section 5.5 — deletion does not invalidate
    /// recorded history), so queries may still reference it.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.tables.get_mut(t.rel()) {
            Some(table) => table.remove(t),
            None => false,
        }
    }

    /// The table for `rel`, if it has ever held a row.
    pub fn table(&self, rel: &str) -> Option<&Table> {
        self.tables.get(rel)
    }

    /// Mutable access to the table for `rel` (used by compiled plans to
    /// build indexes lazily while joining).
    pub fn table_mut(&mut self, rel: &str) -> Option<&mut Table> {
        self.tables.get_mut(rel)
    }

    /// Rows of `rel` in insertion order (empty if the relation is unknown).
    pub fn rows(&self, rel: &str) -> impl Iterator<Item = &Tuple> {
        self.tables.get(rel).into_iter().flat_map(Table::iter)
    }

    /// Does `rel` currently contain `t`?
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tables.get(t.rel()).is_some_and(|tb| tb.contains(t))
    }

    /// Number of live rows in `rel`.
    pub fn count(&self, rel: &str) -> usize {
        self.tables.get(rel).map_or(0, Table::len)
    }

    /// Resolve a tuple by content hash. Covers every tuple ever inserted,
    /// including since-deleted ones.
    pub fn by_vid(&self, vid: &Vid) -> Option<&Tuple> {
        self.by_vid.get(vid)
    }

    /// Names of relations with at least one (current) row.
    pub fn relations(&self) -> impl Iterator<Item = &RelName> {
        self.tables.keys()
    }

    /// Total rows across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Estimated wire-format bytes of all current rows (sum of the
    /// tables' [`StorageSize`]), the database-side analogue of the
    /// recorders' storage estimate.
    pub fn estimated_bytes(&self) -> usize {
        self.tables.values().map(StorageSize::storage_size).sum()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::{NodeId, Value};

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(dst)),
                Value::Addr(NodeId(next)),
            ],
        )
    }

    fn dsts(t: &Table) -> Vec<u32> {
        t.iter().map(|r| r.args()[1].as_addr().unwrap().0).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut t = Table::new();
        assert!(t.insert(route(1, 3, 2)));
        assert!(!t.insert(route(1, 3, 2)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(&route(1, 3, 2)));
    }

    #[test]
    fn remove_works() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        assert!(t.remove(&route(1, 3, 2)));
        assert!(!t.remove(&route(1, 3, 2)));
        assert!(t.is_empty());
    }

    #[test]
    fn rows_preserve_insertion_order() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        t.insert(route(1, 2, 2));
        t.insert(route(1, 4, 3));
        assert_eq!(dsts(&t), vec![3, 2, 4]);
    }

    #[test]
    fn iteration_order_survives_removal_and_compaction() {
        // Regression test for the O(n) `rows.retain` removal: tombstoning
        // and compaction must both preserve insertion order exactly.
        let mut t = Table::new();
        for dst in 0..100 {
            t.insert(route(1, dst, 2));
        }
        // Remove every even destination — more than enough to trigger the
        // tombstone-majority compaction at least once.
        for dst in (0..100).step_by(2) {
            assert!(t.remove(&route(1, dst, 2)));
        }
        assert_eq!(t.len(), 50);
        let expect: Vec<u32> = (0..100).filter(|d| d % 2 == 1).collect();
        assert_eq!(dsts(&t), expect);
        // Re-inserting lands at the end, as with a plain Vec.
        t.insert(route(1, 0, 2));
        let mut expect2 = expect.clone();
        expect2.push(0);
        assert_eq!(dsts(&t), expect2);
    }

    #[test]
    fn index_probe_matches_scan_in_order() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        t.insert(route(1, 2, 2));
        t.insert(route(1, 3, 4)); // second row for dst=3
        assert!(t.ensure_index(&[1]));
        // Key built from position 1 of a probe binding: dst = n3.
        let mut key = Vec::new();
        Value::Addr(NodeId(3)).encode_into(&mut key);
        let hits: Vec<_> = t.probe(&[1], &key).unwrap().cloned().collect();
        assert_eq!(hits, vec![route(1, 3, 2), route(1, 3, 4)]);
        // Unknown key: empty, but still served by the index.
        let mut k2 = Vec::new();
        Value::Addr(NodeId(9)).encode_into(&mut k2);
        assert_eq!(t.probe(&[1], &k2).unwrap().count(), 0);
    }

    #[test]
    fn index_is_maintained_on_insert_and_skips_tombstones() {
        let mut t = Table::new();
        t.insert(route(1, 3, 2));
        assert!(t.ensure_index(&[1]));
        // Insert after the index exists: incrementally added.
        t.insert(route(1, 3, 4));
        let mut key = Vec::new();
        Value::Addr(NodeId(3)).encode_into(&mut key);
        assert_eq!(t.probe(&[1], &key).unwrap().count(), 2);
        // Remove one: the stale bucket entry is skipped.
        t.remove(&route(1, 3, 2));
        let left: Vec<_> = t.probe(&[1], &key).unwrap().cloned().collect();
        assert_eq!(left, vec![route(1, 3, 4)]);
    }

    #[test]
    fn short_arity_row_degrades_index_to_scan() {
        let mut t = Table::new();
        t.insert(Tuple::new("route", vec![Value::Addr(NodeId(1))]));
        assert!(!t.ensure_index(&[1]), "position 1 not covered by arity 1");
        assert!(t.probe(&[1], &[]).is_none());
        // And the degenerate marker also applies when the short row arrives
        // after the index was built.
        let mut t2 = Table::new();
        t2.insert(route(1, 3, 2));
        assert!(t2.ensure_index(&[1]));
        t2.insert(Tuple::new("route", vec![Value::Addr(NodeId(1))]));
        assert!(!t2.ensure_index(&[1]));
        assert!(t2.probe(&[1], &[]).is_none());
    }

    #[test]
    fn database_routes_by_relation() {
        let mut db = Database::new();
        db.insert(route(1, 3, 2));
        db.insert(Tuple::new("link", vec![Value::Addr(NodeId(1))]));
        assert_eq!(db.count("route"), 1);
        assert_eq!(db.count("link"), 1);
        assert_eq!(db.count("nosuch"), 0);
        assert_eq!(db.rows("nosuch").count(), 0);
        assert_eq!(db.len(), 2);
        assert_eq!(db.relations().count(), 2);
    }

    #[test]
    fn vid_index_survives_deletion() {
        let mut db = Database::new();
        let r = route(1, 3, 2);
        let vid = r.vid();
        db.insert(r.clone());
        db.remove(&r);
        assert_eq!(db.count("route"), 0);
        assert_eq!(db.by_vid(&vid), Some(&r));
    }

    #[test]
    fn table_storage_size() {
        let mut t = Table::new();
        assert_eq!(t.storage_size(), 4);
        let r = route(1, 3, 2);
        let row = r.storage_size();
        t.insert(r);
        assert_eq!(t.storage_size(), 4 + row);
    }
}
