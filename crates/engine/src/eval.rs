//! Rule evaluation: unification, joins, constraints, assignments.
//!
//! [`eval_rule`] computes the firings of one rule given its triggering
//! event tuple and a node's local database of slow-changing tables. Each
//! [`Firing`] carries the head tuple *and* the slow-changing tuples the
//! join consumed, in body order — exactly the information the provenance
//! recorders need.

use std::collections::HashMap;
use std::sync::Arc;

use dpc_common::{Error, Result, Tuple, Value};
use dpc_ndlog::{Atom, BinOp, BodyItem, CmpOp, Expr, ExprKind, Rule, TermKind};

use crate::db::Database;

/// Variable bindings accumulated during evaluation.
pub type Bindings = HashMap<String, Value>;

/// A user-defined function callable from rule bodies (e.g.
/// `f_isSubDomain`).
pub type UserFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Registry of user-defined functions, shared by all nodes.
#[derive(Clone, Default)]
pub struct FnRegistry {
    fns: HashMap<String, UserFn>,
}

impl FnRegistry {
    /// An empty registry.
    pub fn new() -> FnRegistry {
        FnRegistry::default()
    }

    /// Register `f` under `name` (conventionally `f_`-prefixed).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.into(), Arc::new(f));
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<&UserFn> {
        self.fns.get(name)
    }
}

impl std::fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnRegistry")
            .field("fns", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// One firing of a rule: the derived head tuple and the slow-changing
/// tuples used by the join (in body order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The derived head tuple.
    pub head: Tuple,
    /// Slow-changing tuples joined by this firing, in body-atom order.
    pub slow: Vec<Tuple>,
}

/// Unify an atom's terms against a concrete tuple, extending `bind`.
///
/// Returns `false` (leaving `bind` possibly partially extended — callers
/// clone first) on mismatch.
fn unify_atom(atom: &Atom, tuple: &Tuple, bind: &mut Bindings) -> bool {
    if atom.rel != tuple.rel() || atom.arity() != tuple.arity() {
        return false;
    }
    for (term, val) in atom.args.iter().zip(tuple.args()) {
        match &term.kind {
            TermKind::Const(c) => {
                if c != val {
                    return false;
                }
            }
            TermKind::Var(v) => match bind.get(v) {
                Some(existing) => {
                    if existing != val {
                        return false;
                    }
                }
                None => {
                    bind.insert(v.clone(), val.clone());
                }
            },
        }
    }
    true
}

/// Evaluate an expression under bindings.
pub fn eval_expr(expr: &Expr, bind: &Bindings, fns: &FnRegistry) -> Result<Value> {
    match &expr.kind {
        ExprKind::Var(v) => bind
            .get(v)
            .cloned()
            .ok_or_else(|| Error::Eval(format!("unbound variable `{v}`"))),
        ExprKind::Const(c) => Ok(c.clone()),
        ExprKind::BinOp(op, l, r) => {
            let lv = eval_expr(l, bind, fns)?;
            let rv = eval_expr(r, bind, fns)?;
            apply_binop(*op, &lv, &rv)
        }
        ExprKind::Call(name, args) => {
            let f = fns
                .get(name)
                .ok_or_else(|| Error::Eval(format!("unknown function `{name}`")))?;
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(a, bind, fns))
                .collect::<Result<_>>()?;
            f(&vals)
        }
    }
}

/// Apply an arithmetic operator to two evaluated operands. Shared by the
/// interpreted ([`eval_expr`]) and compiled (`RulePlan`) expression paths
/// so both report identical errors.
pub(crate) fn apply_binop(op: BinOp, lv: &Value, rv: &Value) -> Result<Value> {
    let (Value::Int(a), Value::Int(b)) = (lv, rv) else {
        return Err(Error::Eval(format!(
            "arithmetic `{op}` requires integers, got {lv} and {rv}"
        )));
    };
    let out = match op {
        BinOp::Add => a.checked_add(*b),
        BinOp::Sub => a.checked_sub(*b),
        BinOp::Mul => a.checked_mul(*b),
        BinOp::Div => {
            if *b == 0 {
                return Err(Error::Eval("division by zero".into()));
            }
            a.checked_div(*b)
        }
    }
    .ok_or_else(|| Error::Eval(format!("arithmetic overflow in `{a} {op} {b}`")))?;
    Ok(Value::Int(out))
}

/// Evaluate a comparison between two values.
pub(crate) fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool> {
    match op {
        CmpOp::Eq => Ok(l == r),
        CmpOp::Ne => Ok(l != r),
        _ => {
            // Ordering comparisons require same-variant operands; anything
            // else is a program bug worth surfacing, not silently false.
            let same = matches!(
                (l, r),
                (Value::Int(_), Value::Int(_))
                    | (Value::Str(_), Value::Str(_))
                    | (Value::Addr(_), Value::Addr(_))
            );
            if !same {
                return Err(Error::Eval(format!("cannot order {l} and {r} with `{op}`")));
            }
            Ok(match op {
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            })
        }
    }
}

/// Substitute bindings into the head atom to build the derived tuple.
fn build_head(head: &Atom, bind: &Bindings) -> Result<Tuple> {
    let args = head
        .args
        .iter()
        .map(|t| match &t.kind {
            TermKind::Const(c) => Ok(c.clone()),
            TermKind::Var(v) => bind
                .get(v)
                .cloned()
                .ok_or_else(|| Error::Eval(format!("unbound head variable `{v}`"))),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Tuple::new(&head.rel, args))
}

/// Evaluate `rule` triggered by `event` against `db`'s slow tables.
///
/// The event atom (first relational atom in the body) unifies against
/// `event`; the remaining body items are processed in source order:
/// condition atoms join against `db`, constraints filter, assignments bind.
/// Returns every firing (usually zero or one; more when slow tables hold
/// multiple matching rows).
pub fn eval_rule(
    rule: &Rule,
    event: &Tuple,
    db: &Database,
    fns: &FnRegistry,
) -> Result<Vec<Firing>> {
    let event_atom = rule
        .event()
        .ok_or_else(|| Error::Eval(format!("rule `{}` has no event atom", rule.label)))?;

    let mut init = Bindings::new();
    if !unify_atom(event_atom, event, &mut init) {
        return Ok(Vec::new());
    }

    // Partial results: bindings plus the slow tuples consumed so far.
    let mut partials: Vec<(Bindings, Vec<Tuple>)> = vec![(init, Vec::new())];
    let mut seen_event = false;

    for item in &rule.body {
        match item {
            BodyItem::Atom(atom) => {
                if !seen_event && std::ptr::eq(atom, event_atom) {
                    seen_event = true;
                    continue; // already unified
                }
                let mut next = Vec::new();
                for (bind, slow) in &partials {
                    for row in db.rows(&atom.rel) {
                        let mut b2 = bind.clone();
                        if unify_atom(atom, row, &mut b2) {
                            let mut s2 = slow.clone();
                            s2.push(row.clone());
                            next.push((b2, s2));
                        }
                    }
                }
                partials = next;
            }
            BodyItem::Constraint {
                left, op, right, ..
            } => {
                let mut next = Vec::new();
                for (bind, slow) in partials {
                    let lv = eval_expr(left, &bind, fns)?;
                    let rv = eval_expr(right, &bind, fns)?;
                    if compare(*op, &lv, &rv)? {
                        next.push((bind, slow));
                    }
                }
                partials = next;
            }
            BodyItem::Assign { var, expr, .. } => {
                let mut next = Vec::new();
                for (mut bind, slow) in partials {
                    let v = eval_expr(expr, &bind, fns)?;
                    match bind.get(var) {
                        Some(existing) if *existing != v => continue, // filter
                        _ => {
                            bind.insert(var.clone(), v);
                            next.push((bind, slow));
                        }
                    }
                }
                partials = next;
            }
        }
        if partials.is_empty() {
            return Ok(Vec::new());
        }
    }

    partials
        .into_iter()
        .map(|(bind, slow)| {
            Ok(Firing {
                head: build_head(&rule.head, &bind)?,
                slow,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::NodeId;
    use dpc_ndlog::parse_program;

    fn forwarding_rule(label: &str) -> Rule {
        let p = parse_program(dpc_ndlog::programs::PACKET_FORWARDING).unwrap();
        p.rule(label).unwrap().clone()
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(src)),
                Value::Addr(NodeId(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(dst)),
                Value::Addr(NodeId(next)),
            ],
        )
    }

    #[test]
    fn forwarding_r1_fires_with_matching_route() {
        let mut db = Database::new();
        db.insert(route(1, 3, 2));
        let fns = FnRegistry::new();
        let firings =
            eval_rule(&forwarding_rule("r1"), &packet(1, 1, 3, "data"), &db, &fns).unwrap();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].head, packet(2, 1, 3, "data"));
        assert_eq!(firings[0].slow, vec![route(1, 3, 2)]);
    }

    #[test]
    fn forwarding_r1_silent_without_route() {
        let mut db = Database::new();
        db.insert(route(1, 4, 2)); // different destination
        let fns = FnRegistry::new();
        let firings =
            eval_rule(&forwarding_rule("r1"), &packet(1, 1, 3, "data"), &db, &fns).unwrap();
        assert!(firings.is_empty());
    }

    #[test]
    fn forwarding_r2_fires_only_at_destination() {
        let db = Database::new();
        let fns = FnRegistry::new();
        let r2 = forwarding_rule("r2");
        let at_dest = eval_rule(&r2, &packet(3, 1, 3, "data"), &db, &fns).unwrap();
        assert_eq!(at_dest.len(), 1);
        assert_eq!(at_dest[0].head.rel(), "recv");
        assert!(at_dest[0].slow.is_empty());
        let in_transit = eval_rule(&r2, &packet(2, 1, 3, "data"), &db, &fns).unwrap();
        assert!(in_transit.is_empty());
    }

    #[test]
    fn multiple_matching_rows_fire_multiple_times() {
        let mut db = Database::new();
        db.insert(route(1, 3, 2));
        db.insert(route(1, 3, 4)); // multipath
        let fns = FnRegistry::new();
        let firings = eval_rule(&forwarding_rule("r1"), &packet(1, 1, 3, "x"), &db, &fns).unwrap();
        assert_eq!(firings.len(), 2);
        let nexts: Vec<u32> = firings
            .iter()
            .map(|f| f.head.args()[0].as_addr().unwrap().0)
            .collect();
        assert_eq!(nexts, vec![2, 4]);
    }

    #[test]
    fn repeated_variable_in_event_atom_must_match() {
        let p = parse_program("r1 out(@X) :- e(@X, X), s(@X, X).").unwrap();
        let rule = &p.rules[0];
        let mut db = Database::new();
        db.insert(Tuple::new(
            "s",
            vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(1))],
        ));
        let fns = FnRegistry::new();
        let same = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(1))]);
        let diff = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(2))]);
        assert_eq!(eval_rule(rule, &same, &db, &fns).unwrap().len(), 1);
        assert_eq!(eval_rule(rule, &diff, &db, &fns).unwrap().len(), 0);
    }

    #[test]
    fn constants_in_atoms_filter() {
        let p = parse_program(r#"r1 out(@X) :- e(@X, "go")."#).unwrap();
        let rule = &p.rules[0];
        let db = Database::new();
        let fns = FnRegistry::new();
        let yes = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::str("go")]);
        let no = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::str("stop")]);
        assert_eq!(eval_rule(rule, &yes, &db, &fns).unwrap().len(), 1);
        assert_eq!(eval_rule(rule, &no, &db, &fns).unwrap().len(), 0);
    }

    #[test]
    fn assignment_binds_and_filters() {
        let p = parse_program("r1 out(@X, Y) :- e(@X, Z), Y := Z + 1.").unwrap();
        let rule = &p.rules[0];
        let db = Database::new();
        let fns = FnRegistry::new();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(41)]);
        let f = eval_rule(rule, &ev, &db, &fns).unwrap();
        assert_eq!(f[0].head.args()[1], Value::Int(42));
    }

    #[test]
    fn user_function_in_constraint() {
        let p =
            parse_program(r#"r1 out(@X) :- e(@X, U), s(@X, D), f_prefix(D, U) == true."#).unwrap();
        let rule = &p.rules[0];
        let mut db = Database::new();
        db.insert(Tuple::new(
            "s",
            vec![Value::Addr(NodeId(1)), Value::str("com")],
        ));
        let mut fns = FnRegistry::new();
        fns.register("f_prefix", |args: &[Value]| {
            let (Some(d), Some(u)) = (args[0].as_str(), args[1].as_str()) else {
                return Err(Error::Eval("f_prefix expects strings".into()));
            };
            Ok(Value::Bool(u.ends_with(d)))
        });
        let hit = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::str("a.com")]);
        let miss = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::str("a.org")]);
        assert_eq!(eval_rule(rule, &hit, &db, &fns).unwrap().len(), 1);
        assert_eq!(eval_rule(rule, &miss, &db, &fns).unwrap().len(), 0);
    }

    #[test]
    fn unknown_function_errors() {
        let p = parse_program("r1 out(@X) :- e(@X, U), f_nope(U) == true.").unwrap();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(1)]);
        let err = eval_rule(&p.rules[0], &ev, &Database::new(), &FnRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("f_nope"), "{err}");
    }

    #[test]
    fn division_by_zero_errors() {
        let p = parse_program("r1 out(@X, Y) :- e(@X, Z), Y := Z / 0.").unwrap();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(4)]);
        let err = eval_rule(&p.rules[0], &ev, &Database::new(), &FnRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn ordering_comparison_type_mismatch_errors() {
        let p = parse_program("r1 out(@X) :- e(@X, Z), Z < \"abc\".").unwrap();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(4)]);
        assert!(eval_rule(&p.rules[0], &ev, &Database::new(), &FnRegistry::new()).is_err());
    }

    #[test]
    fn ordering_comparisons_work_within_type() {
        let p = parse_program("r1 out(@X) :- e(@X, Z), Z >= 10.").unwrap();
        let db = Database::new();
        let fns = FnRegistry::new();
        let hi = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(12)]);
        let lo = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(9)]);
        assert_eq!(eval_rule(&p.rules[0], &hi, &db, &fns).unwrap().len(), 1);
        assert_eq!(eval_rule(&p.rules[0], &lo, &db, &fns).unwrap().len(), 0);
    }

    #[test]
    fn wrong_relation_or_arity_never_unifies() {
        let rule = forwarding_rule("r1");
        let db = Database::new();
        let fns = FnRegistry::new();
        let wrong_rel = Tuple::new("pkt", vec![Value::Addr(NodeId(1))]);
        assert!(eval_rule(&rule, &wrong_rel, &db, &fns).unwrap().is_empty());
        let wrong_arity = Tuple::new("packet", vec![Value::Addr(NodeId(1))]);
        assert!(eval_rule(&rule, &wrong_arity, &db, &fns)
            .unwrap()
            .is_empty());
    }
}
