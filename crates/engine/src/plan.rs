//! Compiled rule plans: slot-mapped bindings and index-driven joins.
//!
//! [`eval_rule`](crate::eval::eval_rule) interprets a rule from its AST on
//! every event: variables are looked up by string in a `HashMap` that is
//! cloned once per *candidate* row, and every condition atom is joined by
//! scanning its entire table. [`RulePlan`] moves all of the per-event
//! name resolution to build time:
//!
//! * every variable gets a dense **slot** index, so a binding set is a
//!   `Vec<Option<Value>>` — no hashing, and cloned only for rows that
//!   actually match;
//! * for every condition atom the compiler records which argument
//!   positions are already bound when the atom joins (the `joinSAttr`
//!   analysis exposed by [`dpc_ndlog::join_key_positions`]), and the join
//!   probes a [secondary index](crate::db::Table::ensure_index) on those
//!   positions instead of scanning;
//! * constraints, assignments and the head template are compiled to
//!   slot-addressed expressions.
//!
//! The compiled path is **firing-identical** to the interpreter: an index
//! bucket lists rows in insertion order, which is exactly the scan order
//! restricted to matching rows, and steps execute in source order with the
//! same filter/bind semantics — so heads and slow-tuple lists come out
//! byte-for-byte equal, in the same order (see the `differential`
//! integration test).

use std::collections::HashMap;
use std::sync::Arc;

use dpc_common::{Error, RelName, Result, Tuple, Value};
use dpc_ndlog::{join_key_positions, Atom, BodyItem, CmpOp, Delp, Expr, ExprKind, Rule, TermKind};

use crate::db::Database;
use crate::eval::{apply_binop, compare, Firing, FnRegistry};

/// Index/plan effectiveness counters, accumulated per evaluation and
/// exported through `dpc-telemetry` by the runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Join probes served by a secondary index (bucket lookup, no scan).
    pub index_hits: u64,
    /// Join probes that fell back to a full table scan — the atom had no
    /// bound positions, or the index was degenerate (mixed-arity rows).
    pub index_misses: u64,
}

impl EvalStats {
    /// Merge another stats snapshot into this one.
    pub fn merge(&mut self, other: EvalStats) {
        self.index_hits += other.index_hits;
        self.index_misses += other.index_misses;
    }
}

/// How one argument position of an atom is handled during matching.
#[derive(Debug, Clone)]
enum MatchTerm {
    /// The position must equal this constant.
    Const(Value),
    /// First occurrence of a variable: bind the row value into the slot.
    Bind(usize),
    /// Repeated occurrence: the row value must equal the slot's value.
    Check(usize),
}

/// Where a value that is known at join time comes from.
#[derive(Debug, Clone)]
enum ValSource {
    /// A bound variable slot.
    Slot(usize),
    /// A literal from the rule text.
    Const(Value),
}

/// A compiled expression: [`Expr`] with variables resolved to slots.
#[derive(Debug, Clone)]
enum PlanExpr {
    Slot(usize),
    Const(Value),
    BinOp(dpc_ndlog::BinOp, Box<PlanExpr>, Box<PlanExpr>),
    Call(String, Vec<PlanExpr>),
}

/// One join against a slow-changing table.
#[derive(Debug, Clone)]
struct JoinStep {
    rel: String,
    arity: usize,
    /// Argument positions whose value is known at join time, ascending.
    /// This is the secondary-index key for the probe.
    key_positions: Box<[usize]>,
    /// Value sources aligned with `key_positions`.
    key_sources: Vec<ValSource>,
    /// The remaining positions: bind/check in position order.
    rest: Vec<(usize, MatchTerm)>,
}

/// One body item after the event atom, in source order.
#[derive(Debug, Clone)]
enum PlanStep {
    Join(JoinStep),
    Filter {
        left: PlanExpr,
        op: CmpOp,
        right: PlanExpr,
    },
    Assign {
        slot: usize,
        expr: PlanExpr,
    },
}

/// The event atom's match program, run once per incoming event.
#[derive(Debug, Clone)]
struct EventPlan {
    rel: String,
    arity: usize,
    terms: Vec<MatchTerm>,
}

/// A rule compiled for repeated evaluation.
#[derive(Debug, Clone)]
pub struct RulePlan {
    rule: Arc<Rule>,
    /// Slot index -> variable name (for diagnostics only).
    names: Vec<String>,
    event: EventPlan,
    steps: Vec<PlanStep>,
    head_rel: RelName,
    head: Vec<ValSource>,
}

/// Tracks variable -> slot allocation and which slots are bound so far.
#[derive(Default)]
struct SlotMap {
    names: Vec<String>,
    bound: Vec<bool>,
}

impl SlotMap {
    fn slot_of(&mut self, var: &str) -> usize {
        match self.names.iter().position(|n| n == var) {
            Some(s) => s,
            None => {
                self.names.push(var.to_string());
                self.bound.push(false);
                self.names.len() - 1
            }
        }
    }

    fn is_bound(&self, slot: usize) -> bool {
        self.bound[slot]
    }

    fn bind(&mut self, slot: usize) {
        self.bound[slot] = true;
    }
}

impl RulePlan {
    /// Compile `rule`. Fails only for rules with no event atom (which the
    /// interpreter rejects at evaluation time instead).
    pub fn compile(rule: &Rule) -> Result<RulePlan> {
        let event_atom = rule
            .event()
            .ok_or_else(|| Error::Eval(format!("rule `{}` has no event atom", rule.label)))?;
        let key_positions = join_key_positions(rule);

        let mut slots = SlotMap::default();

        // Event atom: matched against the incoming tuple from an empty
        // binding set.
        let mut event_terms = Vec::with_capacity(event_atom.arity());
        for term in &event_atom.args {
            event_terms.push(match &term.kind {
                TermKind::Const(c) => MatchTerm::Const(c.clone()),
                TermKind::Var(v) => {
                    let s = slots.slot_of(v);
                    if slots.is_bound(s) {
                        MatchTerm::Check(s)
                    } else {
                        slots.bind(s);
                        MatchTerm::Bind(s)
                    }
                }
            });
        }
        let event = EventPlan {
            rel: event_atom.rel.clone(),
            arity: event_atom.arity(),
            terms: event_terms,
        };

        // Remaining body items, in source order.
        let mut steps = Vec::new();
        let mut seen_event = false;
        let mut join_idx = 0usize;
        for item in &rule.body {
            match item {
                BodyItem::Atom(atom) => {
                    if !seen_event && std::ptr::eq(atom, event_atom) {
                        seen_event = true;
                        continue;
                    }
                    let keyed = key_positions.get(join_idx).map_or(&[][..], Vec::as_slice);
                    join_idx += 1;
                    steps.push(PlanStep::Join(compile_join(atom, keyed, &mut slots)?));
                }
                BodyItem::Constraint {
                    left, op, right, ..
                } => {
                    steps.push(PlanStep::Filter {
                        left: compile_expr(left, &mut slots),
                        op: *op,
                        right: compile_expr(right, &mut slots),
                    });
                }
                BodyItem::Assign { var, expr, .. } => {
                    let compiled = compile_expr(expr, &mut slots);
                    let s = slots.slot_of(var);
                    slots.bind(s);
                    steps.push(PlanStep::Assign {
                        slot: s,
                        expr: compiled,
                    });
                }
            }
        }

        // Head template. Unbound head variables still get a slot so the
        // runtime can report the same error as the interpreter.
        let head = rule
            .head
            .args
            .iter()
            .map(|t| match &t.kind {
                TermKind::Const(c) => ValSource::Const(c.clone()),
                TermKind::Var(v) => ValSource::Slot(slots.slot_of(v)),
            })
            .collect();

        Ok(RulePlan {
            rule: Arc::new(rule.clone()),
            names: slots.names,
            event,
            steps,
            head_rel: Arc::from(rule.head.rel.as_str()),
            head,
        })
    }

    /// The source rule this plan was compiled from.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }

    /// The rule label.
    pub fn label(&self) -> &str {
        &self.rule.label
    }

    /// Evaluate the plan for one incoming `event`.
    ///
    /// Takes the database mutably so join probes can build missing
    /// secondary indexes in place; the logical table contents are never
    /// modified. Produces exactly the firings (and errors) of
    /// [`eval_rule`](crate::eval::eval_rule) on the same inputs, in the
    /// same order.
    pub fn eval(
        &self,
        event: &Tuple,
        db: &mut Database,
        fns: &FnRegistry,
        stats: &mut EvalStats,
    ) -> Result<Vec<Firing>> {
        if event.rel() != self.event.rel || event.arity() != self.event.arity {
            return Ok(Vec::new());
        }
        let mut slots: Vec<Option<Value>> = vec![None; self.names.len()];
        for (term, val) in self.event.terms.iter().zip(event.args()) {
            match term {
                MatchTerm::Const(c) => {
                    if c != val {
                        return Ok(Vec::new());
                    }
                }
                MatchTerm::Bind(s) => slots[*s] = Some(val.clone()),
                MatchTerm::Check(s) => {
                    if slots[*s].as_ref() != Some(val) {
                        return Ok(Vec::new());
                    }
                }
            }
        }

        let mut partials: Vec<(Vec<Option<Value>>, Vec<Tuple>)> = vec![(slots, Vec::new())];
        for step in &self.steps {
            match step {
                PlanStep::Join(j) => {
                    let mut next = Vec::new();
                    if let Some(table) = db.table_mut(&j.rel) {
                        let indexed =
                            !j.key_positions.is_empty() && table.ensure_index(&j.key_positions);
                        let table = &*table;
                        let mut keybuf = Vec::new();
                        for (bind, slow) in &partials {
                            if indexed {
                                stats.index_hits += 1;
                                keybuf.clear();
                                for src in &j.key_sources {
                                    self.key_value(src, bind)?.encode_into(&mut keybuf);
                                }
                                if let Some(rows) = table.probe(&j.key_positions, &keybuf) {
                                    for row in rows {
                                        j.try_match(row, bind, slow, true, &mut next);
                                    }
                                }
                            } else {
                                stats.index_misses += 1;
                                for row in table.iter() {
                                    j.try_match(row, bind, slow, false, &mut next);
                                }
                            }
                        }
                    }
                    partials = next;
                }
                PlanStep::Filter { left, op, right } => {
                    let mut next = Vec::new();
                    for (bind, slow) in partials {
                        let lv = self.eval_expr(left, &bind, fns)?;
                        let rv = self.eval_expr(right, &bind, fns)?;
                        if compare(*op, &lv, &rv)? {
                            next.push((bind, slow));
                        }
                    }
                    partials = next;
                }
                PlanStep::Assign { slot, expr } => {
                    let mut next = Vec::new();
                    for (mut bind, slow) in partials {
                        let v = self.eval_expr(expr, &bind, fns)?;
                        match &bind[*slot] {
                            Some(existing) if *existing != v => continue, // filter
                            _ => {
                                bind[*slot] = Some(v);
                                next.push((bind, slow));
                            }
                        }
                    }
                    partials = next;
                }
            }
            if partials.is_empty() {
                return Ok(Vec::new());
            }
        }

        partials
            .into_iter()
            .map(|(bind, slow)| {
                let args = self
                    .head
                    .iter()
                    .map(|src| match src {
                        ValSource::Const(c) => Ok(c.clone()),
                        ValSource::Slot(s) => bind[*s].clone().ok_or_else(|| {
                            Error::Eval(format!("unbound head variable `{}`", self.names[*s]))
                        }),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Firing {
                    head: Tuple::from_rel(self.head_rel.clone(), args),
                    slow,
                })
            })
            .collect()
    }

    /// Audit the compiled plan against its own source rule.
    ///
    /// Recomputes the static join-key analysis
    /// ([`dpc_ndlog::join_key_positions`]) and replays the plan's binding
    /// discipline symbolically: every slot must be written before it is
    /// read, every `Check` must follow a `Bind`, every join's key
    /// positions must match the analysis (ascending, in range, disjoint
    /// from the residual match terms, and together covering the atom), and
    /// every head slot must be bound by the end of the body. A plan fresh
    /// out of [`RulePlan::compile`] on a structurally valid rule always
    /// passes; a corrupted or stale plan (e.g. after an AST change that the
    /// compiler was not updated for) fails with a description of the first
    /// inconsistency found.
    pub fn audit(&self) -> Result<()> {
        let fail = |what: String| {
            Err(Error::Schema(format!(
                "plan audit failed for rule `{}`: {what}",
                self.rule.label
            )))
        };
        let nslots = self.names.len();
        let mut bound = vec![false; nslots];

        // Event match program.
        if self.event.terms.len() != self.event.arity {
            return fail(format!(
                "event plan has {} match terms for arity {}",
                self.event.terms.len(),
                self.event.arity
            ));
        }
        for (p, term) in self.event.terms.iter().enumerate() {
            match term {
                MatchTerm::Const(_) => {}
                MatchTerm::Bind(s) => {
                    if *s >= nslots {
                        return fail(format!("event position {p} binds out-of-range slot {s}"));
                    }
                    if bound[*s] {
                        return fail(format!(
                            "event position {p} re-binds slot {s} (`{}`)",
                            self.names[*s]
                        ));
                    }
                    bound[*s] = true;
                }
                MatchTerm::Check(s) => {
                    if *s >= nslots {
                        return fail(format!("event position {p} checks out-of-range slot {s}"));
                    }
                    if !bound[*s] {
                        return fail(format!(
                            "event position {p} checks slot {s} (`{}`) before it is bound",
                            self.names[*s]
                        ));
                    }
                }
            }
        }

        // Body steps, replayed in order against the recomputed analysis.
        let expected_keys = join_key_positions(&self.rule);
        let mut join_idx = 0usize;
        for step in &self.steps {
            match step {
                PlanStep::Join(j) => {
                    let expected = expected_keys.get(join_idx).map_or(&[][..], Vec::as_slice);
                    join_idx += 1;
                    if &*j.key_positions != expected {
                        return fail(format!(
                            "join #{join_idx} on `{}` has key positions {:?}, static analysis \
                             says {:?}",
                            j.rel, j.key_positions, expected
                        ));
                    }
                    if j.key_sources.len() != j.key_positions.len() {
                        return fail(format!(
                            "join #{join_idx} on `{}` has {} key sources for {} key positions",
                            j.rel,
                            j.key_sources.len(),
                            j.key_positions.len()
                        ));
                    }
                    if j.key_positions.windows(2).any(|w| w[0] >= w[1]) {
                        return fail(format!(
                            "join #{join_idx} on `{}` key positions {:?} are not strictly \
                             ascending",
                            j.rel, j.key_positions
                        ));
                    }
                    if let Some(&p) = j.key_positions.iter().find(|&&p| p >= j.arity) {
                        return fail(format!(
                            "join #{join_idx} on `{}` keys position {p} beyond arity {}",
                            j.rel, j.arity
                        ));
                    }
                    for src in &j.key_sources {
                        if let ValSource::Slot(s) = src {
                            if *s >= nslots {
                                return fail(format!(
                                    "join #{join_idx} on `{}` keys out-of-range slot {s}",
                                    j.rel
                                ));
                            }
                            if !bound[*s] {
                                return fail(format!(
                                    "join #{join_idx} on `{}` keys slot {s} (`{}`) which is \
                                     unbound at join time",
                                    j.rel, self.names[*s]
                                ));
                            }
                        }
                    }
                    // The residual terms must cover exactly the non-key
                    // positions, each once.
                    let mut covered: Vec<usize> = j.key_positions.to_vec();
                    let mut in_atom: Vec<usize> = Vec::new();
                    for (p, term) in &j.rest {
                        if *p >= j.arity || covered.contains(p) {
                            return fail(format!(
                                "join #{join_idx} on `{}` matches position {p} twice or beyond \
                                 arity {}",
                                j.rel, j.arity
                            ));
                        }
                        covered.push(*p);
                        match term {
                            MatchTerm::Const(_) => {}
                            MatchTerm::Bind(s) => {
                                if *s >= nslots {
                                    return fail(format!(
                                        "join #{join_idx} on `{}` binds out-of-range slot {s}",
                                        j.rel
                                    ));
                                }
                                if bound[*s] || in_atom.contains(s) {
                                    return fail(format!(
                                        "join #{join_idx} on `{}` re-binds slot {s} (`{}`)",
                                        j.rel, self.names[*s]
                                    ));
                                }
                                in_atom.push(*s);
                            }
                            MatchTerm::Check(s) => {
                                if *s >= nslots {
                                    return fail(format!(
                                        "join #{join_idx} on `{}` checks out-of-range slot {s}",
                                        j.rel
                                    ));
                                }
                                if !bound[*s] && !in_atom.contains(s) {
                                    return fail(format!(
                                        "join #{join_idx} on `{}` checks slot {s} (`{}`) before \
                                         it is bound",
                                        j.rel, self.names[*s]
                                    ));
                                }
                            }
                        }
                    }
                    if covered.len() != j.arity {
                        return fail(format!(
                            "join #{join_idx} on `{}` covers {} of {} positions",
                            j.rel,
                            covered.len(),
                            j.arity
                        ));
                    }
                    for s in in_atom {
                        bound[s] = true;
                    }
                }
                PlanStep::Filter { left, right, .. } => {
                    for expr in [left, right] {
                        self.audit_expr(expr, &bound, "filter")?;
                    }
                }
                PlanStep::Assign { slot, expr } => {
                    self.audit_expr(expr, &bound, "assignment")?;
                    if *slot >= nslots {
                        return fail(format!("assignment writes out-of-range slot {slot}"));
                    }
                    bound[*slot] = true;
                }
            }
        }
        if join_idx != expected_keys.len() {
            return fail(format!(
                "plan has {join_idx} joins, source rule has {}",
                expected_keys.len()
            ));
        }

        // Head template.
        if self.head.len() != self.rule.head.arity() {
            return fail(format!(
                "head template has {} sources for arity {}",
                self.head.len(),
                self.rule.head.arity()
            ));
        }
        for (p, src) in self.head.iter().enumerate() {
            if let ValSource::Slot(s) = src {
                if *s >= nslots {
                    return fail(format!("head position {p} reads out-of-range slot {s}"));
                }
                if !bound[*s] {
                    return fail(format!(
                        "head position {p} reads slot {s} (`{}`) which is never bound",
                        self.names[*s]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check that every slot an expression reads is bound at this point.
    fn audit_expr(&self, expr: &PlanExpr, bound: &[bool], ctx: &str) -> Result<()> {
        match expr {
            PlanExpr::Slot(s) => {
                if *s >= bound.len() {
                    return Err(Error::Schema(format!(
                        "plan audit failed for rule `{}`: {ctx} reads out-of-range slot {s}",
                        self.rule.label
                    )));
                }
                if !bound[*s] {
                    return Err(Error::Schema(format!(
                        "plan audit failed for rule `{}`: {ctx} reads slot {s} (`{}`) before it \
                         is bound",
                        self.rule.label, self.names[*s]
                    )));
                }
                Ok(())
            }
            PlanExpr::Const(_) => Ok(()),
            PlanExpr::BinOp(_, l, r) => {
                self.audit_expr(l, bound, ctx)?;
                self.audit_expr(r, bound, ctx)
            }
            PlanExpr::Call(_, args) => args.iter().try_for_each(|a| self.audit_expr(a, bound, ctx)),
        }
    }

    fn key_value<'b>(&self, src: &'b ValSource, bind: &'b [Option<Value>]) -> Result<&'b Value> {
        match src {
            ValSource::Const(c) => Ok(c),
            ValSource::Slot(s) => bind[*s].as_ref().ok_or_else(|| {
                Error::Eval(format!(
                    "internal: join key variable `{}` unbound",
                    self.names[*s]
                ))
            }),
        }
    }

    fn eval_expr(
        &self,
        expr: &PlanExpr,
        bind: &[Option<Value>],
        fns: &FnRegistry,
    ) -> Result<Value> {
        match expr {
            PlanExpr::Slot(s) => bind[*s]
                .clone()
                .ok_or_else(|| Error::Eval(format!("unbound variable `{}`", self.names[*s]))),
            PlanExpr::Const(c) => Ok(c.clone()),
            PlanExpr::BinOp(op, l, r) => {
                let lv = self.eval_expr(l, bind, fns)?;
                let rv = self.eval_expr(r, bind, fns)?;
                apply_binop(*op, &lv, &rv)
            }
            PlanExpr::Call(name, args) => {
                let f = fns
                    .get(name)
                    .ok_or_else(|| Error::Eval(format!("unknown function `{name}`")))?;
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_expr(a, bind, fns))
                    .collect::<Result<_>>()?;
                f(&vals)
            }
        }
    }
}

impl JoinStep {
    /// Try to extend one partial binding with `row`. `key_verified` is true
    /// when the row came out of an index bucket, whose key construction
    /// already guarantees the key positions match (the encoding is
    /// injective). The binding vector is cloned only on success.
    fn try_match(
        &self,
        row: &Tuple,
        bind: &[Option<Value>],
        slow: &[Tuple],
        key_verified: bool,
        next: &mut Vec<(Vec<Option<Value>>, Vec<Tuple>)>,
    ) {
        if row.arity() != self.arity {
            return;
        }
        let args = row.args();
        if !key_verified {
            for (&p, src) in self.key_positions.iter().zip(&self.key_sources) {
                let expect = match src {
                    ValSource::Const(c) => c,
                    ValSource::Slot(s) => match &bind[*s] {
                        Some(v) => v,
                        None => return, // unreachable: key slots are bound
                    },
                };
                if args[p] != *expect {
                    return;
                }
            }
        }
        // Bind/check the free positions without cloning the binding set;
        // `pending` carries in-atom bindings for repeated variables.
        let mut pending: Vec<(usize, &Value)> = Vec::with_capacity(self.rest.len());
        for (p, term) in &self.rest {
            let val = &args[*p];
            match term {
                MatchTerm::Const(c) => {
                    if c != val {
                        return;
                    }
                }
                MatchTerm::Bind(s) => pending.push((*s, val)),
                MatchTerm::Check(s) => {
                    let bound = pending
                        .iter()
                        .rev()
                        .find(|(ps, _)| ps == s)
                        .map(|(_, v)| *v)
                        .or(bind[*s].as_ref());
                    if bound != Some(val) {
                        return;
                    }
                }
            }
        }
        let mut b2 = bind.to_vec();
        for (s, v) in pending {
            b2[s] = Some(v.clone());
        }
        let mut s2 = slow.to_vec();
        s2.push(row.clone());
        next.push((b2, s2));
    }
}

/// Compile one condition atom given the positions `keyed` that the static
/// analysis says are bound at join time.
fn compile_join(atom: &Atom, keyed: &[usize], slots: &mut SlotMap) -> Result<JoinStep> {
    let mut key_sources = Vec::with_capacity(keyed.len());
    let mut rest = Vec::new();
    let mut bound_in_atom: Vec<usize> = Vec::new();
    for (p, term) in atom.args.iter().enumerate() {
        let is_key = keyed.contains(&p);
        match &term.kind {
            TermKind::Const(c) => {
                if is_key {
                    key_sources.push(ValSource::Const(c.clone()));
                } else {
                    rest.push((p, MatchTerm::Const(c.clone())));
                }
            }
            TermKind::Var(v) => {
                let s = slots.slot_of(v);
                if is_key {
                    if !slots.is_bound(s) {
                        return Err(Error::Schema(format!(
                            "join-key analysis marked unbound variable `{v}` at {}[{p}]",
                            atom.rel
                        )));
                    }
                    key_sources.push(ValSource::Slot(s));
                } else if slots.is_bound(s) || bound_in_atom.contains(&s) {
                    rest.push((p, MatchTerm::Check(s)));
                } else {
                    bound_in_atom.push(s);
                    rest.push((p, MatchTerm::Bind(s)));
                }
            }
        }
    }
    for s in bound_in_atom {
        slots.bind(s);
    }
    Ok(JoinStep {
        rel: atom.rel.clone(),
        arity: atom.arity(),
        key_positions: keyed.into(),
        key_sources,
        rest,
    })
}

fn compile_expr(expr: &Expr, slots: &mut SlotMap) -> PlanExpr {
    match &expr.kind {
        ExprKind::Var(v) => PlanExpr::Slot(slots.slot_of(v)),
        ExprKind::Const(c) => PlanExpr::Const(c.clone()),
        ExprKind::BinOp(op, l, r) => PlanExpr::BinOp(
            *op,
            Box::new(compile_expr(l, slots)),
            Box::new(compile_expr(r, slots)),
        ),
        ExprKind::Call(name, args) => PlanExpr::Call(
            name.clone(),
            args.iter().map(|a| compile_expr(a, slots)).collect(),
        ),
    }
}

/// All rules of a DELP compiled once, grouped by triggering event relation
/// in program order — the compiled counterpart of
/// [`Delp::rules_for_event`].
#[derive(Debug, Clone, Default)]
pub struct PlanSet {
    by_event: HashMap<String, Vec<Arc<RulePlan>>>,
    total: usize,
}

impl PlanSet {
    /// Compile every rule of `delp`.
    pub fn compile(delp: &Delp) -> Result<PlanSet> {
        let mut by_event: HashMap<String, Vec<Arc<RulePlan>>> = HashMap::new();
        let mut total = 0;
        for rule in delp.rules() {
            let plan = RulePlan::compile(rule)?;
            by_event
                .entry(plan.event.rel.clone())
                .or_default()
                .push(Arc::new(plan));
            total += 1;
        }
        Ok(PlanSet { by_event, total })
    }

    /// Plans whose event relation is `rel`, in program order.
    pub fn plans_for_event(&self, rel: &str) -> &[Arc<RulePlan>] {
        self.by_event.get(rel).map_or(&[], Vec::as_slice)
    }

    /// Audit every compiled plan (see [`RulePlan::audit`]) and check the
    /// event-relation grouping. Returns the number of plans audited.
    pub fn audit(&self) -> Result<usize> {
        let mut audited = 0;
        for (rel, plans) in &self.by_event {
            for plan in plans {
                if plan.event.rel != *rel {
                    return Err(Error::Schema(format!(
                        "plan audit failed for rule `{}`: grouped under event `{rel}` but \
                         compiled for `{}`",
                        plan.rule.label, plan.event.rel
                    )));
                }
                plan.audit()?;
                audited += 1;
            }
        }
        if audited != self.total {
            return Err(Error::Schema(format!(
                "plan audit failed: {audited} plans in groups, {} recorded",
                self.total
            )));
        }
        Ok(audited)
    }

    /// Number of compiled plans.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether any plans were compiled.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_rule;
    use dpc_common::NodeId;
    use dpc_ndlog::parse_program;

    fn check_parity(src: &str, label: &str, event: &Tuple, db: &mut Database, fns: &FnRegistry) {
        let p = parse_program(src).unwrap();
        let rule = p.rule(label).unwrap();
        let naive = eval_rule(rule, event, db, fns);
        let plan = RulePlan::compile(rule).unwrap();
        let mut stats = EvalStats::default();
        let compiled = plan.eval(event, db, fns, &mut stats);
        match (naive, compiled) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "firing mismatch for `{label}` on {event}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("result kind mismatch: naive={a:?} compiled={b:?}"),
        }
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(dst)),
                Value::Addr(NodeId(next)),
            ],
        )
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(src)),
                Value::Addr(NodeId(dst)),
                Value::str(payload),
            ],
        )
    }

    #[test]
    fn forwarding_join_uses_index_and_matches_naive() {
        let mut db = Database::new();
        for dst in 0..50 {
            db.insert(route(1, dst, (dst + 1) % 50));
        }
        db.insert(route(1, 3, 9)); // second route for dst=3: two firings
        let fns = FnRegistry::new();
        let src = dpc_ndlog::programs::PACKET_FORWARDING;
        check_parity(src, "r1", &packet(1, 1, 3, "data"), &mut db, &fns);
        check_parity(src, "r2", &packet(3, 1, 3, "data"), &mut db, &fns);

        // And the probe really was indexed.
        let p = parse_program(src).unwrap();
        let plan = RulePlan::compile(p.rule("r1").unwrap()).unwrap();
        let mut stats = EvalStats::default();
        let firings = plan
            .eval(&packet(1, 1, 3, "data"), &mut db, &fns, &mut stats)
            .unwrap();
        assert_eq!(firings.len(), 2);
        assert_eq!(stats.index_hits, 1);
        assert_eq!(stats.index_misses, 0);
    }

    #[test]
    fn unbound_join_falls_back_to_scan() {
        // s(@Y, Z) shares no variable with the event: no key positions.
        let src = "r1 out(@X, Y, Z) :- e(@X), s(@Y, Z).";
        let mut db = Database::new();
        db.insert(Tuple::new("s", vec![Value::Addr(NodeId(7)), Value::Int(1)]));
        let fns = FnRegistry::new();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1))]);
        check_parity(src, "r1", &ev, &mut db, &fns);
        let p = parse_program(src).unwrap();
        let plan = RulePlan::compile(p.rule("r1").unwrap()).unwrap();
        let mut stats = EvalStats::default();
        plan.eval(&ev, &mut db, &fns, &mut stats).unwrap();
        assert_eq!(stats.index_hits, 0);
        assert_eq!(stats.index_misses, 1);
    }

    #[test]
    fn repeated_vars_consts_assigns_and_constraints_match_naive() {
        let src = r#"
            r1 out(@X, W) :- e(@X, X, N), s(@X, Y, Y, "t"), W := N + 1, W > 1.
        "#;
        let mut db = Database::new();
        db.insert(Tuple::new(
            "s",
            vec![
                Value::Addr(NodeId(1)),
                Value::Int(5),
                Value::Int(5),
                Value::str("t"),
            ],
        ));
        db.insert(Tuple::new(
            "s",
            vec![
                Value::Addr(NodeId(1)),
                Value::Int(5),
                Value::Int(6), // repeated-var mismatch
                Value::str("t"),
            ],
        ));
        let fns = FnRegistry::new();
        for ev in [
            Tuple::new(
                "e",
                vec![
                    Value::Addr(NodeId(1)),
                    Value::Addr(NodeId(1)),
                    Value::Int(3),
                ],
            ),
            Tuple::new(
                "e",
                // repeated event var mismatch
                vec![
                    Value::Addr(NodeId(1)),
                    Value::Addr(NodeId(2)),
                    Value::Int(3),
                ],
            ),
            Tuple::new(
                "e",
                // constraint filters (W = 1 not > 1)
                vec![
                    Value::Addr(NodeId(1)),
                    Value::Addr(NodeId(1)),
                    Value::Int(0),
                ],
            ),
        ] {
            check_parity(src, "r1", &ev, &mut db, &fns);
        }
    }

    #[test]
    fn errors_match_naive() {
        let src = "r1 out(@X, Y) :- e(@X, Z), Y := Z / 0.";
        let mut db = Database::new();
        let fns = FnRegistry::new();
        let ev = Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(4)]);
        check_parity(src, "r1", &ev, &mut db, &fns);
        let src2 = "r1 out(@X) :- e(@X, U), f_nope(U) == true.";
        check_parity(src2, "r1", &ev.clone(), &mut db, &fns);
    }

    #[test]
    fn audit_passes_on_bundled_programs() {
        for delp in [
            dpc_ndlog::programs::packet_forwarding(),
            dpc_ndlog::programs::dns_resolution(),
            dpc_ndlog::programs::dhcp(),
            dpc_ndlog::programs::arp(),
        ] {
            let plans = PlanSet::compile(&delp).unwrap();
            assert_eq!(plans.audit().unwrap(), plans.len());
        }
    }

    #[test]
    fn audit_passes_on_assignments_and_constraints() {
        let src = r#"
            r1 out(@X, W) :- e(@X, N), s(@X, Y), W := N + Y, W > 1, f_abs(W) == W.
        "#;
        let p = parse_program(src).unwrap();
        let plan = RulePlan::compile(p.rule("r1").unwrap()).unwrap();
        plan.audit().unwrap();
    }

    #[test]
    fn audit_catches_corrupted_join_key_positions() {
        let p = parse_program(dpc_ndlog::programs::PACKET_FORWARDING).unwrap();
        let mut plan = RulePlan::compile(p.rule("r1").unwrap()).unwrap();
        // route(@L, D, N) is keyed on [0, 1]; pretend the compiler keyed it
        // on [0] only — the index would probe a different bucket set.
        match &mut plan.steps[0] {
            PlanStep::Join(j) => {
                j.key_positions = vec![0].into();
                j.key_sources.truncate(1);
            }
            other => panic!("expected join step, got {other:?}"),
        }
        let err = plan.audit().unwrap_err().to_string();
        assert!(err.contains("key positions"), "unexpected message: {err}");
        assert!(err.contains("r1"), "audit should name the rule: {err}");
    }

    #[test]
    fn audit_catches_unbound_key_slot() {
        let p = parse_program(dpc_ndlog::programs::PACKET_FORWARDING).unwrap();
        let mut plan = RulePlan::compile(p.rule("r1").unwrap()).unwrap();
        // Re-point a key source at a slot the event never binds.
        plan.names.push("PHANTOM".to_string());
        let phantom = plan.names.len() - 1;
        match &mut plan.steps[0] {
            PlanStep::Join(j) => j.key_sources[0] = ValSource::Slot(phantom),
            other => panic!("expected join step, got {other:?}"),
        }
        let err = plan.audit().unwrap_err().to_string();
        assert!(err.contains("unbound at join time"), "unexpected: {err}");
    }

    #[test]
    fn audit_catches_unbound_head_slot() {
        let p = parse_program(dpc_ndlog::programs::PACKET_FORWARDING).unwrap();
        let mut plan = RulePlan::compile(p.rule("r2").unwrap()).unwrap();
        plan.names.push("PHANTOM".to_string());
        let phantom = plan.names.len() - 1;
        plan.head[0] = ValSource::Slot(phantom);
        let err = plan.audit().unwrap_err().to_string();
        assert!(err.contains("never bound"), "unexpected: {err}");
    }

    #[test]
    fn plan_set_groups_by_event_in_program_order() {
        let delp = dpc_ndlog::programs::packet_forwarding();
        let plans = PlanSet::compile(&delp).unwrap();
        assert_eq!(plans.len(), 2);
        let for_packet = plans.plans_for_event("packet");
        assert_eq!(for_packet.len(), 2);
        assert_eq!(for_packet[0].label(), "r1");
        assert_eq!(for_packet[1].label(), "r2");
        assert!(plans.plans_for_event("recv").is_empty());
    }
}
