//! Differential testing: compiled [`RulePlan`] evaluation must produce
//! byte-identical firings — head tuple and slow tuples, in the same order
//! — as the naive AST interpreter [`eval_rule`], for every bundled
//! program, for seeded-random events and databases, and for synthetic
//! rules covering the tricky corners (repeated variables, constants,
//! scan fallbacks, assignments, constraints, user functions, errors).

use std::collections::BTreeMap;

use dpc_common::{NodeId, Rng, SeededRng, Tuple, Value};
use dpc_engine::eval::{eval_rule, FnRegistry};
use dpc_engine::plan::{EvalStats, RulePlan};
use dpc_engine::Database;
use dpc_ndlog::ast::{BodyItem, Rule};
use dpc_ndlog::parser::parse_program;
use dpc_ndlog::programs;
use dpc_ndlog::Delp;

/// Relation name → arity, collected from every atom in the program.
fn rel_arities(delp: &Delp) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for rule in delp.rules() {
        out.insert(rule.head.rel.clone(), rule.head.arity());
        for item in &rule.body {
            if let BodyItem::Atom(a) = item {
                out.insert(a.rel.clone(), a.arity());
            }
        }
    }
    out
}

/// Values drawn from a deliberately tiny domain so random joins collide
/// often: a handful of addresses, small integers, and strings that form
/// subdomain chains (exercising `f_isSubDomain` both ways).
fn random_value(rng: &mut SeededRng) -> Value {
    const STRS: &[&str] = &["com", "a.com", "b.a.com", "org", "x.org", "data"];
    match rng.next_u64() % 4 {
        0 => Value::Addr(NodeId((rng.next_u64() % 4) as u32)),
        1 => Value::Int((rng.next_u64() % 6) as i64),
        2 => Value::str(STRS[(rng.next_u64() % STRS.len() as u64) as usize]),
        _ => Value::Bool(rng.next_u64().is_multiple_of(2)),
    }
}

fn random_tuple(rng: &mut SeededRng, rel: &str, arity: usize) -> Tuple {
    // Index 0 is the location specifier, so always an address.
    let mut args = vec![Value::Addr(NodeId((rng.next_u64() % 4) as u32))];
    args.extend((1..arity).map(|_| random_value(rng)));
    Tuple::new(rel, args)
}

/// Registry with the one user function the bundled programs need.
fn registry() -> FnRegistry {
    let mut fns = FnRegistry::new();
    fns.register("f_isSubDomain", |args: &[Value]| {
        let (Some(dm), Some(url)) = (args[0].as_str(), args[1].as_str()) else {
            return Err(dpc_common::Error::Eval(
                "f_isSubDomain expects (domain, url) strings".into(),
            ));
        };
        Ok(Value::Bool(
            !dm.is_empty() && (url == dm || url.ends_with(&format!(".{dm}"))),
        ))
    });
    fns
}

/// Assert naive and compiled evaluation agree on `rule` for `event`
/// against `db` — identical `Vec<Firing>` (order included) on success,
/// identical error messages on failure.
fn assert_parity(rule: &Rule, plan: &RulePlan, event: &Tuple, db: &mut Database, fns: &FnRegistry) {
    let naive = eval_rule(rule, event, db, fns);
    let mut stats = EvalStats::default();
    let compiled = plan.eval(event, db, fns, &mut stats);
    match (naive, compiled) {
        (Ok(n), Ok(c)) => assert_eq!(n, c, "firings diverge: rule `{}` on {event}", rule.label),
        (Err(n), Err(c)) => assert_eq!(
            n.to_string(),
            c.to_string(),
            "error messages diverge: rule `{}` on {event}",
            rule.label
        ),
        (n, c) => panic!(
            "outcome diverges for rule `{}` on {event}: naive {n:?}, compiled {c:?}",
            rule.label
        ),
    }
}

/// Run the full differential loop over one program: seeded-random slow
/// state, random events for every rule, and interleaved insert/remove
/// churn so tombstones and incremental index maintenance are on the hook.
fn differential_program(delp: &Delp, seed: u64, rounds: usize) {
    let fns = registry();
    let arities = rel_arities(delp);
    let plans: Vec<(usize, RulePlan)> = delp
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| (i, RulePlan::compile(r).expect("bundled rules compile")))
        .collect();
    let slow: Vec<(&str, usize)> = arities
        .iter()
        .filter(|(rel, _)| delp.is_slow(rel))
        .map(|(rel, &a)| (rel.as_str(), a))
        .collect();

    let mut rng = SeededRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut rows: Vec<Tuple> = Vec::new();
    for &(rel, arity) in &slow {
        for _ in 0..12 {
            let t = random_tuple(&mut rng, rel, arity);
            if db.insert(t.clone()) {
                rows.push(t);
            }
        }
    }

    for round in 0..rounds {
        for (i, plan) in &plans {
            let rule = &delp.rules()[*i];
            let event_rel = rule.event().expect("DELP rule has an event").rel.clone();
            let arity = arities[&event_rel];
            for _ in 0..4 {
                let ev = random_tuple(&mut rng, &event_rel, arity);
                assert_parity(rule, plan, &ev, &mut db, &fns);
            }
        }
        // Churn the slow state between rounds: removals leave tombstones
        // and stale index-bucket entries, insertions append to existing
        // buckets — the compiled path must keep matching the naive scan.
        if !rows.is_empty() && round.is_multiple_of(2) {
            let victim = rows.swap_remove((rng.next_u64() as usize) % rows.len());
            assert!(db.remove(&victim), "row was present");
        }
        let &(rel, arity) = &slow[(rng.next_u64() as usize) % slow.len().max(1)];
        let t = random_tuple(&mut rng, rel, arity);
        if db.insert(t.clone()) {
            rows.push(t);
        }
    }
}

#[test]
fn bundled_programs_fire_identically() {
    for (name, delp) in [
        ("packet_forwarding", programs::packet_forwarding()),
        ("dns_resolution", programs::dns_resolution()),
        ("dhcp", programs::dhcp()),
        ("arp", programs::arp()),
    ] {
        for seed in 0..8u64 {
            differential_program(&delp, 0xD1FF + seed * 1315423911 + name.len() as u64, 24);
        }
    }
}

/// Synthetic rules stressing the corners the bundled programs miss:
/// repeated variables within and across atoms, constants in condition
/// atoms, joins with no bound positions (scan fallback), multi-atom
/// chains, assignments feeding later constraints, and user functions.
#[test]
fn synthetic_rules_fire_identically() {
    let cases = [
        // Repeated variable inside the event atom and across the join.
        "r1 out(@X, Y) :- e(@X, X, Y), s(@X, Y).",
        // Constant in a condition atom plus a repeated join variable.
        r#"r1 out(@X) :- e(@X, Y), s(@X, "com", Y)."#,
        // Join with no bound positions: must fall back to a scan.
        "r1 out(@X, A, B) :- e(@X), s(@A, B).",
        // Two-atom chain where the second join key comes from the first.
        "r1 out(@X, C) :- e(@X, A), s(@X, A, B), t(@X, B, C).",
        // Assignment binding a variable used by a later constraint.
        "r1 out(@X, W) :- e(@X, Z), W := Z + 1, W < 4.",
        // Constraint between two event-bound variables.
        "r1 out(@X) :- e(@X, A, B), A == B.",
        // User function in a constraint over joined state.
        r#"r1 out(@X) :- e(@X, U), s(@X, D), f_isSubDomain(D, U) == true."#,
        // Comparison on the joined row, filtering after the index probe.
        "r1 out(@X, V) :- e(@X, K), s(@X, K, V), V >= 2.",
    ];
    let fns = registry();
    for (ci, src) in cases.iter().enumerate() {
        let program = parse_program(src).expect("case parses");
        let rule = &program.rules[0];
        let plan = RulePlan::compile(rule).expect("case compiles");
        let arities: BTreeMap<String, usize> = {
            let mut m = BTreeMap::new();
            for item in &rule.body {
                if let BodyItem::Atom(a) = item {
                    m.insert(a.rel.clone(), a.arity());
                }
            }
            m
        };
        let mut rng = SeededRng::seed_from_u64(0x5EED + ci as u64);
        let mut db = Database::new();
        let mut rows = Vec::new();
        for (rel, &arity) in arities.iter().filter(|(rel, _)| *rel != "e") {
            for _ in 0..10 {
                let t = random_tuple(&mut rng, rel, arity);
                if db.insert(t.clone()) {
                    rows.push(t);
                }
            }
        }
        for step in 0..80u32 {
            let ev = random_tuple(&mut rng, "e", arities["e"]);
            assert_parity(rule, &plan, &ev, &mut db, &fns);
            if step.is_multiple_of(5) && !rows.is_empty() {
                let victim = rows.swap_remove((rng.next_u64() as usize) % rows.len());
                db.remove(&victim);
            }
        }
    }
}

/// Evaluation errors must carry identical messages on both paths.
#[test]
fn error_messages_match_exactly() {
    let cases: &[(&str, Tuple)] = &[
        (
            "r1 out(@X, Y) :- e(@X, Z), Y := Z / 0.",
            Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(4)]),
        ),
        (
            "r1 out(@X, Y) :- e(@X, Z), Y := Z + 1.",
            Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(i64::MAX)]),
        ),
        (
            "r1 out(@X, Y) :- e(@X, Z), Y := Z * 2.",
            Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::str("nope")]),
        ),
        (
            r#"r1 out(@X) :- e(@X, Z), Z < "abc"."#,
            Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(4)]),
        ),
        (
            "r1 out(@X) :- e(@X, U), f_nope(U) == true.",
            Tuple::new("e", vec![Value::Addr(NodeId(1)), Value::Int(1)]),
        ),
    ];
    let fns = registry();
    for (src, ev) in cases {
        let program = parse_program(src).expect("case parses");
        let rule = &program.rules[0];
        let plan = RulePlan::compile(rule).expect("case compiles");
        let mut db = Database::new();
        assert_parity(rule, &plan, ev, &mut db, &fns);
    }
}
