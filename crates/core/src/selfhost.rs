//! Runtime support for the *self-hosted* provenance rewrite
//! (`dpc_ndlog::rewrite`): the user-defined hash functions the rewritten
//! programs call, and the input-event extension helper.
//!
//! `f_vid(rel, a1..an)` hashes the tuple `rel(a1..an)` exactly like
//! [`dpc_common::Tuple::vid`]; `f_rid(label, loc, v1..vk)` reproduces the
//! ExSPAN/Basic rule-execution hash ([`crate::exspan::exspan_rid`]). With
//! these registered, a rewritten program derives provenance rows that are
//! hash-identical to what [`crate::BasicRecorder`] maintains natively —
//! the equivalence the test at the bottom of this module enforces.

use dpc_common::{Digest, Error, NodeId, Rid, Tuple, Value, Vid};
use dpc_engine::FnRegistry;
use dpc_ndlog::rewrite::NULL_REF;
use std::sync::Arc;
use std::sync::Mutex;

use crate::advanced::advanced_rid;
use crate::exspan::exspan_rid;

/// Register `f_vid` and `f_rid` in the function registry of a runtime
/// that executes a rewritten program (pass
/// `RuntimeBuilder::fns_mut()` while building).
pub fn register_provenance_fns(fns: &mut FnRegistry) {
    fns.register("f_vid", |args: &[Value]| {
        let Some(rel) = args.first().and_then(Value::as_str) else {
            return Err(Error::Eval("f_vid expects a relation name first".into()));
        };
        let t = Tuple::new(rel, args[1..].to_vec());
        Ok(Value::Str(t.vid().to_hex()))
    });
    fns.register("f_rid", |args: &[Value]| {
        let (Some(label), Some(loc)) = (
            args.first().and_then(Value::as_str),
            args.get(1).and_then(Value::as_addr),
        ) else {
            return Err(Error::Eval(
                "f_rid expects (label, loc, vid hex strings...)".into(),
            ));
        };
        let mut vids = Vec::with_capacity(args.len() - 2);
        for a in &args[2..] {
            let hex = a
                .as_str()
                .ok_or_else(|| Error::Eval("f_rid vids must be hex strings".into()))?;
            let d = Digest::from_hex(hex)
                .ok_or_else(|| Error::Eval(format!("`{hex}` is not a 40-char hex digest")))?;
            vids.push(Vid(d));
        }
        Ok(Value::Str(exspan_rid(label, loc, &vids).to_hex()))
    });
}

/// Register `f_arid` (the chained Advanced rule-execution hash) and the
/// *stateful* `f_existflag` (stage-1 equivalence-keys checking: returns
/// `false` the first time a key valuation is seen, `true` afterwards) on
/// a runtime executing an Advanced-rewritten program. Call
/// [`register_provenance_fns`] as well for `f_vid`.
pub fn register_advanced_fns(fns: &mut FnRegistry) {
    fns.register("f_arid", |args: &[Value]| {
        let Some(label) = args.first().and_then(Value::as_str) else {
            return Err(Error::Eval("f_arid expects a rule label first".into()));
        };
        let prev: Option<(NodeId, Rid)> = match (args.get(1), args.get(2)) {
            (Some(Value::Str(s1)), Some(Value::Str(s2))) if s1 == NULL_REF && s2 == NULL_REF => {
                None
            }
            (Some(Value::Addr(l)), Some(Value::Str(hex))) => {
                let d = Digest::from_hex(hex)
                    .ok_or_else(|| Error::Eval(format!("`{hex}` is not a 40-char hex digest")))?;
                Some((*l, Rid(d)))
            }
            other => {
                return Err(Error::Eval(format!(
                    "f_arid expects (label, ploc, prid, vids...), got {other:?}"
                )))
            }
        };
        let mut vids = Vec::with_capacity(args.len().saturating_sub(3));
        for a in &args[3..] {
            let hex = a
                .as_str()
                .ok_or_else(|| Error::Eval("f_arid vids must be hex strings".into()))?;
            let d = Digest::from_hex(hex)
                .ok_or_else(|| Error::Eval(format!("`{hex}` is not a 40-char hex digest")))?;
            vids.push(Vid(d));
        }
        Ok(Value::Str(advanced_rid(label, &vids, prev).to_hex()))
    });

    // Stage 1 state: the distributed htequi sets, keyed by the checking
    // node, behind a lock because user functions are shared by all
    // simulated nodes. Each class key remembers the *first event* that
    // claimed it, so re-evaluating the check for the same event (the
    // forwarding and provenance rule variants both call it) returns the
    // same verdict.
    //
    // Arguments: (NKEYS, loc, key valuation..., full event attrs...).
    let htequi: Arc<Mutex<std::collections::HashMap<Vec<u8>, Vec<u8>>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    fns.register("f_existflag", move |args: &[Value]| {
        let nkeys = args
            .first()
            .and_then(Value::as_int)
            .filter(|&n| n >= 0 && (n as usize) + 2 <= args.len())
            .ok_or_else(|| {
                Error::Eval("f_existflag expects (NKEYS, loc, keys..., event...)".into())
            })? as usize;
        if args.get(1).and_then(Value::as_addr).is_none() {
            return Err(Error::Eval(
                "f_existflag expects the checking node second".into(),
            ));
        }
        let mut class_key = Vec::new();
        for a in &args[1..2 + nkeys] {
            a.encode_into(&mut class_key);
        }
        let mut identity = Vec::new();
        for a in &args[2 + nkeys..] {
            a.encode_into(&mut identity);
        }
        let mut map = htequi.lock().unwrap();
        match map.get(&class_key) {
            Some(first) => Ok(Value::Bool(*first != identity)),
            None => {
                map.insert(class_key, identity);
                Ok(Value::Bool(false))
            }
        }
    });
}

/// Extend an input event tuple with the NULL meta reference the rewritten
/// program expects (`(PLoc, PRid) = ("null", "null")`).
pub fn extend_input_event(event: &Tuple) -> Tuple {
    let mut args = event.args().to_vec();
    args.push(Value::str(NULL_REF));
    args.push(Value::str(NULL_REF));
    Tuple::new(event.rel(), args)
}

/// As [`extend_input_event`], for the Advanced rewrite: adds the flag
/// placeholder too (`(PLoc, PRid, Flag) = ("null", "null", "null")`; the
/// `_in` rule variants recompute the flag via `f_existflag`).
pub fn extend_input_event_advanced(event: &Tuple) -> Tuple {
    let mut args = event.args().to_vec();
    args.push(Value::str(NULL_REF));
    args.push(Value::str(NULL_REF));
    args.push(Value::str(NULL_REF));
    Tuple::new(event.rel(), args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicRecorder;
    use dpc_apps::forwarding;
    use dpc_common::{NodeId, Rid};
    use dpc_engine::{ProvRecorder, Runtime};
    use dpc_ndlog::rewrite::{rewrite_basic, RULE_EXEC_PREFIX};
    use dpc_ndlog::{programs, Delp};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn routes<R: ProvRecorder>(rt: &mut Runtime<R>, len: u32) {
        for i in 0..len - 1 {
            rt.install(forwarding::route(n(i), n(len - 1), n(i + 1)))
                .unwrap();
        }
    }

    /// The headline equivalence: the rewritten program, executed as plain
    /// NDlog with `f_vid`/`f_rid`, derives exactly the provenance rows the
    /// native BasicRecorder maintains — same rids, same vids, same chain.
    #[test]
    fn rewritten_program_reproduces_basic_recorder_tables() {
        let len = 4u32;
        // Native run.
        let mut native = forwarding::make_runtime(
            topo::line(len as usize, Link::STUB_STUB),
            BasicRecorder::new(len as usize),
        );
        routes(&mut native, len);
        let pkt = forwarding::packet(n(0), n(0), n(len - 1), "data");
        native.inject(pkt.clone()).unwrap();
        native.run().unwrap();

        // Self-hosted run.
        let rewritten = Delp::new_relaxed(rewrite_basic(&programs::packet_forwarding())).unwrap();
        let mut b = Runtime::builder(rewritten, topo::line(len as usize, Link::STUB_STUB));
        register_provenance_fns(b.fns_mut());
        let mut hosted = b.build().unwrap();
        routes(&mut hosted, len);
        hosted.inject(extend_input_event(&pkt)).unwrap();
        hosted.run().unwrap();

        // Outputs: one extended recv + one ruleExec row per rule firing.
        let recv_ext = hosted
            .outputs()
            .iter()
            .find(|o| o.tuple.rel() == "recv")
            .expect("rewritten program derives recv")
            .tuple
            .clone();
        let exec_rows: Vec<&Tuple> = hosted
            .outputs()
            .iter()
            .map(|o| &o.tuple)
            .filter(|t| t.rel().starts_with(RULE_EXEC_PREFIX))
            .collect();
        assert_eq!(exec_rows.len(), len as usize, "one row per rule firing");

        // recv's trailing meta attrs are the Basic prov row reference.
        let a = recv_ext.args();
        let (rloc, rid_hex) = (
            a[a.len() - 2].as_addr().expect("PLoc is a node"),
            a[a.len() - 1].as_str().expect("PRid is hex"),
        );
        let recv_native = forwarding::recv(n(len - 1), n(0), n(len - 1), "data");
        let prov = native
            .recorder()
            .prov_row(n(len - 1), &recv_native.vid())
            .expect("native prov row");
        assert_eq!(prov.rloc, Some(rloc));
        assert_eq!(prov.rid.unwrap().to_hex(), rid_hex);

        // Every derived ruleExec row matches a native table row.
        for row in exec_rows {
            let args = row.args();
            let loc = args[0].as_addr().expect("RLoc");
            let rid = Rid(Digest::from_hex(args[1].as_str().expect("RID hex")).unwrap());
            let native_row = native
                .recorder()
                .rule_exec(loc, &rid)
                .unwrap_or_else(|| panic!("no native row for {row}"));
            // Variant name encodes the original label: ruleExec_<l>_<v>.
            let rest = row.rel().strip_prefix(RULE_EXEC_PREFIX).unwrap();
            let (label, variant) = rest.rsplit_once('_').unwrap();
            assert_eq!(native_row.rule, label);
            // vids: everything between RID and the trailing (PLoc, PRid).
            let vids: Vec<Vid> = args[2..args.len() - 2]
                .iter()
                .map(|v| Vid(Digest::from_hex(v.as_str().expect("vid hex")).unwrap()))
                .collect();
            assert_eq!(native_row.vids, vids, "row {row}");
            // Chain reference.
            match (&args[args.len() - 2], &args[args.len() - 1]) {
                (Value::Str(s1), Value::Str(s2)) if s1 == "null" && s2 == "null" => {
                    assert_eq!(native_row.next, None);
                    assert_eq!(variant, "tail");
                }
                (Value::Addr(ploc), Value::Str(prid)) => {
                    let (nl, nr) = native_row.next.expect("mid rows chain");
                    assert_eq!(nl, *ploc);
                    assert_eq!(nr.to_hex(), *prid);
                    assert_eq!(variant, "mid");
                }
                other => panic!("unexpected meta attrs {other:?}"),
            }
        }
    }

    /// The Advanced self-host: the rewritten program compresses (only the
    /// first execution of a class emits ruleExec rows), and everything it
    /// derives matches the native AdvancedRecorder tables hash for hash.
    #[test]
    fn rewritten_advanced_program_compresses_and_matches_native() {
        use crate::advanced::AdvancedRecorder;
        use dpc_ndlog::rewrite::rewrite_advanced;
        use dpc_ndlog::{equivalence_keys, EquivKeys};

        let len = 3u32;
        let keys: EquivKeys = equivalence_keys(&programs::packet_forwarding());

        // Native run: two packets of the same class (Figure 6).
        let mut native = forwarding::make_runtime(
            topo::line(len as usize, Link::STUB_STUB),
            AdvancedRecorder::new(len as usize, keys.clone()),
        );
        routes(&mut native, len);
        let p1 = forwarding::packet(n(0), n(0), n(len - 1), "data");
        let p2 = forwarding::packet(n(0), n(0), n(len - 1), "url");
        native.inject(p1.clone()).unwrap();
        native.run().unwrap();
        native.inject(p2.clone()).unwrap();
        native.run().unwrap();

        // Self-hosted run.
        let rewritten =
            Delp::new_relaxed(rewrite_advanced(&programs::packet_forwarding(), &keys)).unwrap();
        let mut b = Runtime::builder(rewritten, topo::line(len as usize, Link::STUB_STUB));
        register_provenance_fns(b.fns_mut());
        register_advanced_fns(b.fns_mut());
        let mut hosted = b.build().unwrap();
        routes(&mut hosted, len);
        hosted.inject(extend_input_event_advanced(&p1)).unwrap();
        hosted.run().unwrap();
        hosted.inject(extend_input_event_advanced(&p2)).unwrap();
        hosted.run().unwrap();

        // Compression: only the first packet emitted ruleExec rows.
        let exec_rows: Vec<&Tuple> = hosted
            .outputs()
            .iter()
            .map(|o| &o.tuple)
            .filter(|t| t.rel().starts_with("ruleExecA_"))
            .collect();
        assert_eq!(exec_rows.len(), len as usize, "one row per rule, once");

        // Both recvs carry the same shared-tree reference, flags differ.
        let recvs: Vec<&Tuple> = hosted
            .outputs()
            .iter()
            .map(|o| &o.tuple)
            .filter(|t| t.rel() == "recv")
            .collect();
        assert_eq!(recvs.len(), 2);
        let meta = |t: &Tuple| {
            let a = t.args();
            (
                a[a.len() - 3].as_addr().expect("PLoc"),
                a[a.len() - 2].as_str().expect("PRid").to_string(),
                a[a.len() - 1].as_bool().expect("Flag"),
            )
        };
        let (l1, r1, f1) = meta(recvs[0]);
        let (l2, r2, f2) = meta(recvs[1]);
        assert_eq!((l1, &r1), (l2, &r2), "shared reference");
        assert!(!f1, "first execution is uncompressed");
        assert!(f2, "second execution is compressed");

        // The reference matches the native prov rows of both executions.
        for (pkt, recv_payload) in [(&p1, "data"), (&p2, "url")] {
            let recv_native = forwarding::recv(n(len - 1), n(0), n(len - 1), recv_payload);
            let vid = recv_native.vid();
            let evid = pkt.evid();
            let prov = native
                .recorder()
                .prov_row(n(len - 1), &vid, &evid)
                .expect("native prov row");
            assert_eq!(prov.rloc, l1);
            assert_eq!(prov.rid.to_hex(), r1);
        }

        // Every derived ruleExecA row matches the native table.
        for row in exec_rows {
            let args = row.args();
            let loc = args[0].as_addr().expect("RLoc");
            let rid = Rid(Digest::from_hex(args[1].as_str().expect("RID")).unwrap());
            let view = native
                .recorder()
                .rule_exec(loc, &rid)
                .unwrap_or_else(|| panic!("no native row for {row}"));
            let rest = row.rel().strip_prefix("ruleExecA_").unwrap();
            let (label, variant) = rest.rsplit_once('_').unwrap();
            assert_eq!(view.rule, label);
            let vids: Vec<Vid> = args[2..args.len() - 2]
                .iter()
                .map(|v| Vid(Digest::from_hex(v.as_str().expect("vid hex")).unwrap()))
                .collect();
            assert_eq!(view.vids, vids, "row {row}");
            match (&args[args.len() - 2], &args[args.len() - 1]) {
                (Value::Str(s1), Value::Str(s2)) if s1 == "null" && s2 == "null" => {
                    assert_eq!(view.next, None);
                    assert_eq!(variant, "tail");
                }
                (Value::Addr(ploc), Value::Str(prid)) => {
                    let (nl, nr) = view.next.expect("mid rows chain");
                    assert_eq!(nl, *ploc);
                    assert_eq!(nr.to_hex(), *prid);
                    assert_eq!(variant, "mid");
                }
                other => panic!("unexpected meta attrs {other:?}"),
            }
        }
    }

    #[test]
    fn existflag_is_stateful_and_per_key() {
        let mut fns = FnRegistry::new();
        register_advanced_fns(&mut fns);
        let f = fns.get("f_existflag").unwrap().clone();
        // (NKEYS=1, loc, key, event identity...)
        let ev1 = [
            Value::Int(1),
            Value::Addr(n(0)),
            Value::Addr(n(5)),
            Value::str("payload-1"),
        ];
        let ev2 = [
            Value::Int(1),
            Value::Addr(n(0)),
            Value::Addr(n(5)),
            Value::str("payload-2"),
        ];
        let other_class = [
            Value::Int(1),
            Value::Addr(n(0)),
            Value::Addr(n(6)),
            Value::str("payload-1"),
        ];
        assert_eq!(f(&ev1).unwrap(), Value::Bool(false)); // first sighting
        assert_eq!(f(&ev1).unwrap(), Value::Bool(false)); // same event: idempotent
        assert_eq!(f(&ev2).unwrap(), Value::Bool(true)); // same class, new event
        assert_eq!(f(&other_class).unwrap(), Value::Bool(false)); // new class
        assert!(f(&[Value::Int(9)]).is_err());
    }

    #[test]
    fn fvid_matches_native_tuple_hash() {
        let mut fns = FnRegistry::new();
        register_provenance_fns(&mut fns);
        let f = fns.get("f_vid").unwrap().clone();
        let t = forwarding::route(n(0), n(1), n(1));
        let mut args = vec![Value::str("route")];
        args.extend(t.args().iter().cloned());
        assert_eq!(f(&args).unwrap(), Value::Str(t.vid().to_hex()));
    }

    #[test]
    fn frid_matches_native_rule_hash() {
        let mut fns = FnRegistry::new();
        register_provenance_fns(&mut fns);
        let f = fns.get("f_rid").unwrap().clone();
        let v1 = Vid::of_bytes(b"child");
        let native = exspan_rid("r1", n(0), &[v1]);
        let got = f(&[Value::str("r1"), Value::Addr(n(0)), Value::Str(v1.to_hex())]).unwrap();
        assert_eq!(got, Value::Str(native.to_hex()));
    }

    #[test]
    fn frid_rejects_bad_hex() {
        let mut fns = FnRegistry::new();
        register_provenance_fns(&mut fns);
        let f = fns.get("f_rid").unwrap().clone();
        let err = f(&[Value::str("r1"), Value::Addr(n(0)), Value::str("zzz")]).unwrap_err();
        assert!(err.to_string().contains("hex"), "{err}");
    }

    #[test]
    fn extend_appends_null_refs() {
        let pkt = forwarding::packet(n(0), n(0), n(1), "x");
        let ext = extend_input_event(&pkt);
        assert_eq!(ext.arity(), pkt.arity() + 2);
        assert_eq!(ext.args()[4], Value::str("null"));
        assert_eq!(ext.args()[5], Value::str("null"));
    }
}
