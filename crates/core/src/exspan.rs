//! The ExSPAN baseline recorder (Section 2.2, Table 1).
//!
//! ExSPAN maintains uncompressed distributed provenance: every tuple — base,
//! intermediate or output — gets a `prov` row at the node where it lives,
//! and every rule firing gets a `ruleExec` row at the node where it
//! executed. `vid = sha1(tuple)` and `rid = sha1(rule + loc + child vids)`
//! exactly as in Table 1.

use dpc_common::{NodeId, Rid, Sha1, Tuple, Vid};
use dpc_engine::{ProvMeta, ProvRecorder, Stage};
use dpc_ndlog::Rule;
use dpc_telemetry::TelemetryHandle;

use crate::storage::{ProvRow, ProvTable, RuleExecRow, RuleExecTable};

/// Per-node ExSPAN state.
#[derive(Debug)]
struct Node {
    prov: ProvTable,
    rule_exec: RuleExecTable,
}

/// The ExSPAN provenance recorder.
#[derive(Debug)]
pub struct ExspanRecorder {
    nodes: Vec<Node>,
    telemetry: Option<TelemetryHandle>,
}

/// Compute the ExSPAN rule-execution id: `sha1(rule + loc + vids)`.
pub fn exspan_rid(rule: &str, loc: NodeId, vids: &[Vid]) -> Rid {
    let mut h = Sha1::new();
    h.update(b"R");
    h.update(rule.as_bytes());
    h.update(&loc.0.to_be_bytes());
    for v in vids {
        h.update(&v.0 .0);
    }
    Rid(h.finish())
}

/// Wire overhead ExSPAN tags onto each shipped tuple: the deriving rule
/// execution's `(RLoc, RID)` so the receiver can insert the tuple's `prov`
/// row, plus a stage byte.
pub const EXSPAN_META_BYTES: usize = 25;

impl ExspanRecorder {
    /// Create a recorder for a network of `n` nodes.
    pub fn new(n: usize) -> ExspanRecorder {
        ExspanRecorder {
            nodes: (0..n)
                .map(|_| Node {
                    prov: ProvTable::default(),
                    rule_exec: RuleExecTable::new(false),
                })
                .collect(),
            telemetry: None,
        }
    }

    /// Push the per-table gauges for `node` to the attached telemetry.
    fn report_tables(&self, node: NodeId) {
        let Some(t) = &self.telemetry else { return };
        let (prov, re) = self.row_counts(node);
        t.gauge("recorder.prov_rows", Some(node.0), prov as i64);
        t.gauge("recorder.rule_exec_rows", Some(node.0), re as i64);
        t.gauge(
            "recorder.storage_bytes",
            Some(node.0),
            self.storage_at(node) as i64,
        );
    }

    /// The `prov` row for `vid` at `loc`.
    pub fn prov_row(&self, loc: NodeId, vid: &Vid) -> Option<&ProvRow> {
        self.nodes.get(loc.index())?.prov.get(vid)
    }

    /// The `ruleExec` row for `rid` at `loc`.
    pub fn rule_exec(&self, loc: NodeId, rid: &Rid) -> Option<&RuleExecRow> {
        self.nodes.get(loc.index())?.rule_exec.get(rid)
    }

    /// Row counts at `node`: `(prov, ruleExec)`.
    pub fn row_counts(&self, node: NodeId) -> (usize, usize) {
        let n = &self.nodes[node.index()];
        (n.prov.len(), n.rule_exec.len())
    }

    /// Snapshot of the `prov` rows at `node` (unordered).
    pub fn prov_rows_at(&self, node: NodeId) -> Vec<crate::storage::ProvRow> {
        self.nodes[node.index()].prov.iter().cloned().collect()
    }

    /// Snapshot of the `ruleExec` rows at `node` (unordered).
    pub fn rule_exec_rows_at(&self, node: NodeId) -> Vec<RuleExecRow> {
        self.nodes[node.index()].rule_exec.iter().cloned().collect()
    }

    /// Total storage across all nodes.
    pub fn total_storage(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.storage_at(NodeId(i as u32)))
            .sum()
    }

    fn insert_base_prov(&mut self, node: NodeId, tuple: &Tuple) {
        self.nodes[node.index()].prov.insert(ProvRow {
            loc: node,
            vid: tuple.vid(),
            rid: None,
            rloc: None,
        });
    }
}

impl ProvRecorder for ExspanRecorder {
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta) {
        // The input event is a base tuple: prov row with NULL derivation.
        self.insert_base_prov(node, event);
        meta.wire_bytes = EXSPAN_META_BYTES;
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        // Child vids: the triggering event first, then the slow tuples in
        // body order.
        let mut vids = Vec::with_capacity(1 + slow.len());
        vids.push(event.vid());
        vids.extend(slow.iter().map(Tuple::vid));
        let rid = exspan_rid(&rule.label, node, &vids);

        // Slow tuples are base tuples living at this node.
        for s in slow {
            self.insert_base_prov(node, s);
        }

        self.nodes[node.index()].rule_exec.insert(RuleExecRow {
            rloc: node,
            rid,
            rule: rule.label.clone(),
            vids,
            next: None,
        });

        // The derived tuple's prov row lives where the tuple will live
        // (inserted on arrival in a real deployment; same data either way).
        let head_loc = head.loc().expect("head tuples carry a location");
        self.nodes[head_loc.index()].prov.insert(ProvRow {
            loc: head_loc,
            vid: head.vid(),
            rid: Some(rid),
            rloc: Some(node),
        });

        self.report_tables(node);
        if head_loc != node {
            self.report_tables(head_loc);
        }

        let mut out = meta.clone();
        out.stage = Stage::Derived;
        out.prev = Some((node, rid));
        out.wire_bytes = EXSPAN_META_BYTES;
        out
    }

    fn on_output(&mut self, _node: NodeId, _output: &Tuple, _meta: &ProvMeta) {
        // The output tuple's prov row was inserted when the final rule
        // fired; nothing more to do.
    }

    fn on_base_install(&mut self, node: NodeId, tuple: &Tuple) {
        self.insert_base_prov(node, tuple);
        self.report_tables(node);
    }

    fn storage_at(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        n.prov.bytes() + n.rule_exec.bytes()
    }

    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::Value;
    use dpc_engine::Runtime;
    use dpc_ndlog::programs;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    /// Figure 2 deployment with ExSPAN provenance: reproduces Table 1.
    fn run_figure2() -> Runtime<ExspanRecorder> {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, ExspanRecorder::new(3));
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn table1_prov_rows() {
        let rt = run_figure2();
        let rec = rt.recorder();
        // Base tuples: routes at n0/n1 and the input packet at n0.
        let r0 = rec.prov_row(n(0), &route(0, 2, 1).vid()).unwrap();
        assert_eq!((r0.rid, r0.rloc), (None, None));
        let p0 = rec.prov_row(n(0), &packet(0, 0, 2, "data").vid()).unwrap();
        assert_eq!(p0.rid, None);
        // Intermediate packet at n1 derived by r1 at n0.
        let p1 = rec.prov_row(n(1), &packet(1, 0, 2, "data").vid()).unwrap();
        assert!(p1.rid.is_some());
        assert_eq!(p1.rloc, Some(n(0)));
        // recv at n2 derived by r2 at n2.
        let recv = Tuple::new(
            "recv",
            vec![
                Value::Addr(n(2)),
                Value::Addr(n(0)),
                Value::Addr(n(2)),
                Value::str("data"),
            ],
        );
        let pr = rec.prov_row(n(2), &recv.vid()).unwrap();
        assert_eq!(pr.rloc, Some(n(2)));
    }

    #[test]
    fn table1_rule_exec_rows_chain_via_vids() {
        let rt = run_figure2();
        let rec = rt.recorder();
        // Walk the provenance: recv -> r2@n2 -> packet@n2 -> r1@n1 -> ...
        let recv = rt.outputs()[0].tuple.clone();
        let pr = rec.prov_row(n(2), &recv.vid()).unwrap();
        let re2 = rec.rule_exec(pr.rloc.unwrap(), &pr.rid.unwrap()).unwrap();
        assert_eq!(re2.rule, "r2");
        // r2's only child is the packet event at n2.
        assert_eq!(re2.vids.len(), 1);
        assert_eq!(re2.vids[0], packet(2, 0, 2, "data").vid());
        // Follow to r1 at n1.
        let p2 = rec.prov_row(n(2), &re2.vids[0]).unwrap();
        let re1 = rec.rule_exec(p2.rloc.unwrap(), &p2.rid.unwrap()).unwrap();
        assert_eq!(re1.rule, "r1");
        assert_eq!(re1.vids.len(), 2); // event + route
        assert_eq!(re1.vids[1], route(1, 2, 2).vid());
    }

    #[test]
    fn rid_is_deterministic_and_distinct() {
        let vids = [Vid::of_bytes(b"a"), Vid::of_bytes(b"b")];
        let a = exspan_rid("r1", n(0), &vids);
        let b = exspan_rid("r1", n(0), &vids);
        assert_eq!(a, b);
        assert_ne!(a, exspan_rid("r2", n(0), &vids));
        assert_ne!(a, exspan_rid("r1", n(1), &vids));
        assert_ne!(a, exspan_rid("r1", n(0), &vids[..1]));
    }

    #[test]
    fn storage_grows_per_packet() {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, ExspanRecorder::new(3));
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        rt.inject(packet(0, 0, 2, "p0")).unwrap();
        rt.run().unwrap();
        let after_one = rt.recorder().total_storage();
        rt.inject(packet(0, 0, 2, "p1")).unwrap();
        rt.run().unwrap();
        let after_two = rt.recorder().total_storage();
        // ExSPAN stores a full new tree for the second (equivalent) packet.
        let delta = after_two - after_one;
        assert!(delta > 100, "delta {delta}");
    }

    #[test]
    fn row_counts_match_expectation() {
        let rt = run_figure2();
        // n0: prov(route, packet-in) = 2, ruleExec(r1) = 1.
        assert_eq!(rt.recorder().row_counts(n(0)), (2, 1));
        // n1: prov(route, packet-mid) = 2, ruleExec(r1) = 1.
        assert_eq!(rt.recorder().row_counts(n(1)), (2, 1));
        // n2: prov(packet-final, recv) = 2, ruleExec(r2) = 1.
        assert_eq!(rt.recorder().row_counts(n(2)), (2, 1));
    }
}
