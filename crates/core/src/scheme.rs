//! Scheme selection: one enum naming every provenance maintenance scheme
//! the paper evaluates, plus a factory producing a boxed recorder wired
//! for a given program and network size.
//!
//! The factory lets scheme-generic harness code (the `fig*` binaries, the
//! forwarding/DNS runners) drive a `Runtime<Box<dyn ProvRecorder>>`
//! instead of duplicating a `match` per call site.

use dpc_engine::{NoopRecorder, ProvRecorder};
use dpc_ndlog::{equivalence_keys, Delp};

use crate::advanced::AdvancedRecorder;
use crate::basic::BasicRecorder;
use crate::exspan::ExspanRecorder;

/// The provenance maintenance scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No provenance at all — the uninstrumented baseline for
    /// network-overhead comparisons.
    Noop,
    /// Uncompressed ExSPAN baseline (Section 2.2).
    Exspan,
    /// Section 4 storage optimization.
    Basic,
    /// Section 5.3 equivalence-based compression.
    Advanced,
    /// Section 5.3 + the Section 5.4 node/link split.
    AdvancedInterClass,
}

impl Scheme {
    /// The three schemes the paper's figures compare.
    pub const PAPER: [Scheme; 3] = [Scheme::Exspan, Scheme::Basic, Scheme::Advanced];

    /// Every scheme, in presentation order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Noop,
        Scheme::Exspan,
        Scheme::Basic,
        Scheme::Advanced,
        Scheme::AdvancedInterClass,
    ];

    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Noop => "None",
            Scheme::Exspan => "ExSPAN",
            Scheme::Basic => "Basic",
            Scheme::Advanced => "Advanced",
            Scheme::AdvancedInterClass => "Advanced+InterClass",
        }
    }

    /// Build the recorder implementing this scheme for `delp` deployed on
    /// `nodes` nodes. Advanced variants derive their equivalence keys from
    /// the program's static analysis (Section 5.2).
    pub fn recorder(self, delp: &Delp, nodes: usize) -> Box<dyn ProvRecorder> {
        match self {
            Scheme::Noop => Box::new(NoopRecorder),
            Scheme::Exspan => Box::new(ExspanRecorder::new(nodes)),
            Scheme::Basic => Box::new(BasicRecorder::new(nodes)),
            Scheme::Advanced => Box::new(AdvancedRecorder::new(nodes, equivalence_keys(delp))),
            Scheme::AdvancedInterClass => Box::new(AdvancedRecorder::with_inter_class(
                nodes,
                equivalence_keys(delp),
            )),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::NodeId;
    use dpc_ndlog::programs;

    #[test]
    fn names_and_sets() {
        assert_eq!(Scheme::Exspan.name(), "ExSPAN");
        assert_eq!(Scheme::PAPER.len(), 3);
        assert_eq!(Scheme::ALL.len(), 5);
        assert_eq!(Scheme::Advanced.to_string(), "Advanced");
    }

    #[test]
    fn factory_builds_every_scheme() {
        let delp = programs::packet_forwarding();
        for sc in Scheme::ALL {
            let rec = sc.recorder(&delp, 3);
            assert_eq!(rec.storage_at(NodeId(0)), 0, "{}", sc.name());
        }
    }
}
