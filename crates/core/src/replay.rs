//! Reactive provenance maintenance by deterministic replay (Section 3.2).
//!
//! The paper maintains *concrete* provenance only for the relations of
//! interest; for everything else it adopts DTaP's reactive strategy: store
//! only the non-deterministic inputs (base-table operations and input
//! events, with their times) and re-execute the system when the
//! provenance of a "tuple of less interest" is queried. Because the
//! engine and simulator are deterministic, a replay reproduces the
//! original execution exactly.
//!
//! [`ReplayLog`] is that input store; [`ReplayableRuntime`] wraps an
//! ordinary runtime and logs as it forwards. Replaying yields a runtime
//! with a [`GroundTruthRecorder`], from which the provenance tree of *any*
//! derived tuple — intermediate events included — can be read.

use dpc_common::{Result, StorageSize, Tuple};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::Delp;
use dpc_netsim::{Network, SimTime};

use crate::reference::GroundTruthRecorder;

/// One logged non-deterministic input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOp {
    /// Setup-time base-tuple installation.
    Install(Tuple),
    /// An input event injected at a simulated time.
    Inject {
        /// The event tuple.
        tuple: Tuple,
        /// Injection time.
        at: SimTime,
    },
    /// A runtime insertion into a slow-changing table (broadcasts `sig`).
    UpdateSlow {
        /// The inserted tuple.
        tuple: Tuple,
        /// Application time.
        at: SimTime,
    },
    /// A runtime deletion from a slow-changing table.
    DeleteSlow {
        /// The deleted tuple.
        tuple: Tuple,
        /// Application time.
        at: SimTime,
    },
}

/// The recorded non-deterministic inputs of one run.
#[derive(Debug, Clone, Default)]
pub struct ReplayLog {
    ops: Vec<ReplayOp>,
}

impl ReplayLog {
    /// An empty log.
    pub fn new() -> ReplayLog {
        ReplayLog::default()
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The logged operations, in record order.
    pub fn ops(&self) -> &[ReplayOp] {
        &self.ops
    }

    /// Serialized size of the log — the storage cost of reactive
    /// maintenance (inputs only, no provenance tables).
    pub fn storage_size(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                ReplayOp::Install(t) => 1 + t.storage_size(),
                ReplayOp::Inject { tuple, .. }
                | ReplayOp::UpdateSlow { tuple, .. }
                | ReplayOp::DeleteSlow { tuple, .. } => 1 + tuple.storage_size() + 8,
            })
            .sum()
    }

    /// Re-execute the logged run on a fresh runtime over `net`, capturing
    /// full provenance trees. `configure` runs before any operation (use
    /// it to register user-defined functions).
    pub fn replay(
        &self,
        delp: Delp,
        net: Network,
        configure: impl FnOnce(&mut Runtime<GroundTruthRecorder>),
    ) -> Result<Runtime<GroundTruthRecorder>> {
        let mut rt = Runtime::new(delp, net, GroundTruthRecorder::new());
        configure(&mut rt);
        for op in &self.ops {
            match op {
                ReplayOp::Install(t) => rt.install(t.clone())?,
                ReplayOp::Inject { tuple, at } => {
                    rt.inject_at(tuple.clone(), *at)?;
                }
                ReplayOp::UpdateSlow { tuple, at } => rt.update_slow_at(tuple.clone(), *at)?,
                ReplayOp::DeleteSlow { tuple, at } => rt.delete_slow_at(tuple.clone(), *at)?,
            }
        }
        rt.run()?;
        Ok(rt)
    }
}

/// A runtime wrapper that records every non-deterministic input into a
/// [`ReplayLog`] while forwarding to the inner runtime.
pub struct ReplayableRuntime<R> {
    rt: Runtime<R>,
    log: ReplayLog,
}

impl<R: ProvRecorder> ReplayableRuntime<R> {
    /// Wrap a runtime.
    pub fn new(rt: Runtime<R>) -> ReplayableRuntime<R> {
        ReplayableRuntime {
            rt,
            log: ReplayLog::new(),
        }
    }

    /// The inner runtime.
    pub fn inner(&self) -> &Runtime<R> {
        &self.rt
    }

    /// Mutable access to the inner runtime (operations performed directly
    /// on it are *not* logged).
    pub fn inner_mut(&mut self) -> &mut Runtime<R> {
        &mut self.rt
    }

    /// The log recorded so far.
    pub fn log(&self) -> &ReplayLog {
        &self.log
    }

    /// Unwrap into the runtime and the log.
    pub fn into_parts(self) -> (Runtime<R>, ReplayLog) {
        (self.rt, self.log)
    }

    /// Logged [`Runtime::install`].
    pub fn install(&mut self, tuple: Tuple) -> Result<()> {
        self.rt.install(tuple.clone())?;
        self.log.ops.push(ReplayOp::Install(tuple));
        Ok(())
    }

    /// Logged [`Runtime::inject_at`].
    pub fn inject_at(&mut self, tuple: Tuple, at: SimTime) -> Result<u64> {
        let id = self.rt.inject_at(tuple.clone(), at)?;
        self.log.ops.push(ReplayOp::Inject { tuple, at });
        Ok(id)
    }

    /// Logged [`Runtime::update_slow_at`].
    pub fn update_slow_at(&mut self, tuple: Tuple, at: SimTime) -> Result<()> {
        self.rt.update_slow_at(tuple.clone(), at)?;
        self.log.ops.push(ReplayOp::UpdateSlow { tuple, at });
        Ok(())
    }

    /// Logged [`Runtime::delete_slow_at`].
    pub fn delete_slow_at(&mut self, tuple: Tuple, at: SimTime) -> Result<()> {
        self.rt.delete_slow_at(tuple.clone(), at)?;
        self.log.ops.push(ReplayOp::DeleteSlow { tuple, at });
        Ok(())
    }

    /// Forwarded [`Runtime::run`].
    pub fn run(&mut self) -> Result<()> {
        self.rt.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exspan::ExspanRecorder;
    use dpc_apps::forwarding;
    use dpc_common::NodeId;
    use dpc_ndlog::programs;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn record_run() -> (Runtime<ExspanRecorder>, ReplayLog, Network) {
        let net = topo::line(4, Link::STUB_STUB);
        let rt = forwarding::make_runtime(net.clone(), ExspanRecorder::new(4));
        let mut rec = ReplayableRuntime::new(rt);
        for i in 0..3u32 {
            rec.install(forwarding::route(n(i), n(3), n(i + 1)))
                .unwrap();
        }
        for k in 0..5u64 {
            rec.inject_at(
                forwarding::packet(n(0), n(0), n(3), format!("p{k}")),
                SimTime::from_millis(k * 10),
            )
            .unwrap();
        }
        rec.run().unwrap();
        let (rt, log) = rec.into_parts();
        (rt, log, net)
    }

    #[test]
    fn replay_reproduces_outputs_exactly() {
        let (live, log, net) = record_run();
        let replayed = log
            .replay(programs::packet_forwarding(), net, |_| {})
            .unwrap();
        assert_eq!(live.outputs().len(), replayed.outputs().len());
        for (a, b) in live.outputs().iter().zip(replayed.outputs()) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(a.evid, b.evid);
            // Exact times differ slightly: the replay ships ground-truth
            // metadata (1 byte) where the live run shipped ExSPAN's 25,
            // changing transmission delays — the logical execution (order,
            // tuples, derivations) is what replay reproduces.
        }
    }

    #[test]
    fn replay_yields_provenance_of_less_interesting_tuples() {
        let (_, log, net) = record_run();
        let replayed = log
            .replay(programs::packet_forwarding(), net, |_| {})
            .unwrap();
        // The intermediate packet at n2 is not a relation of interest, so
        // no scheme stored its tree — but replay recovers it.
        let mid = forwarding::packet(n(2), n(0), n(3), "p0");
        let tree = replayed
            .recorder()
            .tree_for_tuple(&mid)
            .expect("replay captures intermediate derivations");
        assert_eq!(tree.output(), &mid);
        assert_eq!(tree.rules(), vec!["r1", "r1"]);
        assert_eq!(tree.event(), &forwarding::packet(n(0), n(0), n(3), "p0"));
    }

    #[test]
    fn log_is_much_smaller_than_exspan_tables() {
        let (live, log, _) = record_run();
        let exspan: usize = live
            .net()
            .nodes()
            .map(|m| live.recorder().storage_at(m))
            .sum();
        assert!(
            log.storage_size() * 2 < exspan,
            "log {} should be well under ExSPAN {exspan}",
            log.storage_size()
        );
    }

    #[test]
    fn replay_handles_slow_updates() {
        // Record a run that rewires mid-stream; the replay must follow the
        // same paths.
        let mut net = topo::line(3, Link::STUB_STUB);
        let n3 = net.add_node();
        net.add_link(n(0), n3, Link::STUB_STUB).unwrap();
        net.add_link(n3, n(2), Link::STUB_STUB).unwrap();
        let rt = forwarding::make_runtime(net.clone(), ExspanRecorder::new(4));
        let mut rec = ReplayableRuntime::new(rt);
        rec.install(forwarding::route(n(0), n(2), n(1))).unwrap();
        rec.install(forwarding::route(n(1), n(2), n(2))).unwrap();
        rec.install(forwarding::route(n3, n(2), n(2))).unwrap();
        rec.inject_at(forwarding::packet(n(0), n(0), n(2), "a"), SimTime::ZERO)
            .unwrap();
        rec.delete_slow_at(forwarding::route(n(0), n(2), n(1)), SimTime::from_secs(1))
            .unwrap();
        rec.update_slow_at(forwarding::route(n(0), n(2), n3), SimTime::from_secs(1))
            .unwrap();
        rec.inject_at(
            forwarding::packet(n(0), n(0), n(2), "b"),
            SimTime::from_secs(2),
        )
        .unwrap();
        rec.run().unwrap();
        let (_, log) = rec.into_parts();
        assert_eq!(log.len(), 7);

        let replayed = log
            .replay(programs::packet_forwarding(), net, |_| {})
            .unwrap();
        assert_eq!(replayed.outputs().len(), 2);
        let trees = replayed.recorder().trees();
        assert!(trees[0].2.render().contains("@n1"));
        assert!(trees[1].2.render().contains("@n3"));
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let log = ReplayLog::new();
        assert!(log.is_empty());
        let replayed = log
            .replay(
                programs::packet_forwarding(),
                topo::line(2, Link::STUB_STUB),
                |_| {},
            )
            .unwrap();
        assert!(replayed.outputs().is_empty());
    }
}
