//! Tree reconstruction: `TRANSFORM_TO_D` (Appendix E) / Step 2 of the
//! Basic query (Section 4).
//!
//! Given the rule-execution chain fetched from the provenance tables (rule
//! labels and the concrete slow-changing tuples at each level) and the
//! input event tuple, the full provenance tree — including every
//! intermediate event tuple — is recovered by re-executing the rules
//! bottom-up.

use dpc_common::{Error, Result, Tuple};
use dpc_engine::{eval_rule, Database, FnRegistry};
use dpc_ndlog::Delp;

use crate::tree::ProvTree;

/// One level of a fetched chain, root-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLevel {
    /// The rule label executed at this level.
    pub rule: String,
    /// The concrete slow-changing tuples it joined, in body order.
    pub slow: Vec<Tuple>,
}

/// Re-execute `chain` (root-first) bottom-up from `event`, returning the
/// full provenance tree.
///
/// Fails if a rule label is unknown, a re-execution does not fire exactly
/// as recorded, or the chain is empty.
pub fn reconstruct(
    delp: &Delp,
    fns: &FnRegistry,
    chain: &[ChainLevel],
    event: &Tuple,
) -> Result<ProvTree> {
    if chain.is_empty() {
        return Err(Error::ProvenanceLookup(
            "cannot reconstruct from an empty chain".into(),
        ));
    }
    let mut tree: Option<ProvTree> = None;
    let mut cur_event = event.clone();

    for level in chain.iter().rev() {
        let rule = delp.program().rule(&level.rule).ok_or_else(|| {
            Error::ProvenanceLookup(format!("unknown rule label `{}`", level.rule))
        })?;
        // A miniature database holding exactly the recorded slow tuples:
        // the join can only use what the original execution used.
        let mut db = Database::new();
        for s in &level.slow {
            db.insert(s.clone());
        }
        let firings = eval_rule(rule, &cur_event, &db, fns)?;
        let firing = firings
            .into_iter()
            .find(|f| f.slow == level.slow)
            .ok_or_else(|| {
                Error::ProvenanceLookup(format!(
                    "re-execution of `{}` on {cur_event} did not reproduce the recorded firing",
                    level.rule
                ))
            })?;
        let head = firing.head;
        tree = Some(match tree {
            None => ProvTree::Leaf {
                rule: level.rule.clone(),
                output: head.clone(),
                event: cur_event.clone(),
                slow: level.slow.clone(),
            },
            Some(child) => ProvTree::Node {
                rule: level.rule.clone(),
                output: head.clone(),
                child: Box::new(child),
                slow: level.slow.clone(),
            },
        });
        cur_event = head;
    }

    Ok(tree.expect("chain is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::{NodeId, Value};
    use dpc_ndlog::programs;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    fn figure3_chain() -> Vec<ChainLevel> {
        vec![
            ChainLevel {
                rule: "r2".into(),
                slow: vec![],
            },
            ChainLevel {
                rule: "r1".into(),
                slow: vec![route(1, 2, 2)],
            },
            ChainLevel {
                rule: "r1".into(),
                slow: vec![route(0, 2, 1)],
            },
        ]
    }

    #[test]
    fn rebuilds_figure3_tree() {
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let tree = reconstruct(&delp, &fns, &figure3_chain(), &packet(0, 0, 2, "data")).unwrap();
        assert_eq!(tree.rules(), vec!["r2", "r1", "r1"]);
        assert_eq!(tree.event(), &packet(0, 0, 2, "data"));
        assert_eq!(tree.output().rel(), "recv");
        // Intermediate tuples were re-derived.
        let mid = tree.child().unwrap().output();
        assert_eq!(mid, &packet(2, 0, 2, "data"));
    }

    #[test]
    fn different_event_same_chain_rederives_its_own_intermediates() {
        // The shared-tree property: reconstructing the equivalent "url"
        // execution from the same chain yields its own tuples.
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let a = reconstruct(&delp, &fns, &figure3_chain(), &packet(0, 0, 2, "data")).unwrap();
        let b = reconstruct(&delp, &fns, &figure3_chain(), &packet(0, 0, 2, "url")).unwrap();
        assert!(a.equivalent(&b));
        assert_ne!(a.output(), b.output());
        assert_eq!(b.output().args()[3], Value::str("url"),);
    }

    #[test]
    fn empty_chain_is_rejected() {
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let err = reconstruct(&delp, &fns, &[], &packet(0, 0, 2, "x")).unwrap_err();
        assert!(err.to_string().contains("empty chain"), "{err}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let chain = vec![ChainLevel {
            rule: "r9".into(),
            slow: vec![],
        }];
        let err = reconstruct(&delp, &fns, &chain, &packet(0, 0, 2, "x")).unwrap_err();
        assert!(err.to_string().contains("r9"), "{err}");
    }

    #[test]
    fn non_reproducing_chain_is_rejected() {
        // Chain claims r1 fired at n0 with a route for the wrong
        // destination — the join cannot reproduce.
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let chain = vec![ChainLevel {
            rule: "r1".into(),
            slow: vec![route(0, 9, 1)],
        }];
        let err = reconstruct(&delp, &fns, &chain, &packet(0, 0, 2, "x")).unwrap_err();
        assert!(err.to_string().contains("did not reproduce"), "{err}");
    }

    #[test]
    fn event_mismatching_chain_tail_is_rejected() {
        // The event is at n1 but the chain tail expects a join at n0.
        let delp = programs::packet_forwarding();
        let fns = FnRegistry::new();
        let chain = vec![ChainLevel {
            rule: "r1".into(),
            slow: vec![route(0, 2, 1)],
        }];
        assert!(reconstruct(&delp, &fns, &chain, &packet(1, 0, 2, "x")).is_err());
    }
}
