//! The ground-truth recorder: full provenance trees captured directly from
//! semi-naïve execution.
//!
//! This is the oracle side of the paper's correctness results: Theorem 3
//! says the compressed tables encode exactly the trees semi-naïve
//! evaluation produces, and Theorem 5 says the query algorithm returns
//! them. The test suites run this recorder in the shadow slot of a
//! `TeeRecorder` and compare.

use std::collections::HashMap;

use dpc_common::{EvId, NodeId, Tuple, Vid};
use dpc_engine::{ProvMeta, ProvRecorder, Stage};
use dpc_ndlog::Rule;

use crate::tree::ProvTree;

/// One observed rule firing.
#[derive(Debug, Clone)]
struct Step {
    rule: String,
    event: Tuple,
    slow: Vec<Tuple>,
    head: Tuple,
}

/// Captures the full provenance tree of every completed execution.
#[derive(Debug, Default)]
pub struct GroundTruthRecorder {
    /// Steps per execution. Entries are retained after completion because
    /// one execution can produce several outputs (e.g. a rule joining a
    /// multi-row slow table), each needing the shared step prefix.
    pending: HashMap<u64, Vec<Step>>,
    /// Executions that produced at least one output.
    completed: std::collections::HashSet<u64>,
    /// Completed trees: (output tuple, evid, tree).
    trees: Vec<(Tuple, EvId, ProvTree)>,
}

impl GroundTruthRecorder {
    /// An empty recorder.
    pub fn new() -> GroundTruthRecorder {
        GroundTruthRecorder::default()
    }

    /// All completed trees in completion order.
    pub fn trees(&self) -> &[(Tuple, EvId, ProvTree)] {
        &self.trees
    }

    /// The tree of a specific output tuple and execution.
    pub fn tree_for(&self, output: &Tuple, evid: &EvId) -> Option<&ProvTree> {
        self.trees
            .iter()
            .find(|(t, e, _)| t == output && e == evid)
            .map(|(_, _, tr)| tr)
    }

    /// The provenance tree of *any* derived tuple — including intermediate
    /// events that no storage scheme keeps concrete provenance for. This
    /// is the read-side of the Section 3.2 reactive strategy: after a
    /// replay, the tree of a "tuple of less interest" is assembled from
    /// the captured rule firings.
    pub fn tree_for_tuple(&self, tuple: &Tuple) -> Option<ProvTree> {
        for steps in self.pending.values() {
            if steps.iter().any(|s| s.head == *tuple) {
                if let Some(tree) = Self::assemble(steps, tuple) {
                    return Some(tree);
                }
            }
        }
        None
    }

    /// Number of executions that fired rules but never produced an output
    /// (e.g. dropped packets).
    pub fn incomplete_executions(&self) -> usize {
        self.pending
            .keys()
            .filter(|id| !self.completed.contains(id))
            .count()
    }

    fn assemble(steps: &[Step], output: &Tuple) -> Option<ProvTree> {
        // Index steps by the vid of their head; walk backwards from the
        // output through event vids.
        let mut by_head: HashMap<Vid, Step> =
            steps.iter().cloned().map(|s| (s.head.vid(), s)).collect();
        let mut chain = Vec::new();
        let mut cur_vid = output.vid();
        while let Some(step) = by_head.remove(&cur_vid) {
            cur_vid = step.event.vid();
            chain.push(step);
        }
        // `chain` is root-first; fold from the tail.
        let tail = chain.pop()?;
        let mut tree = ProvTree::Leaf {
            rule: tail.rule,
            output: tail.head,
            event: tail.event,
            slow: tail.slow,
        };
        while let Some(step) = chain.pop() {
            tree = ProvTree::Node {
                rule: step.rule,
                output: step.head,
                child: Box::new(tree),
                slow: step.slow,
            };
        }
        Some(tree)
    }
}

impl ProvRecorder for GroundTruthRecorder {
    fn on_input(&mut self, _node: NodeId, _event: &Tuple, _meta: &mut ProvMeta) {}

    fn on_rule(
        &mut self,
        _node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        self.pending.entry(meta.exec_id).or_default().push(Step {
            rule: rule.label.clone(),
            event: event.clone(),
            slow: slow.to_vec(),
            head: head.clone(),
        });
        let mut out = meta.clone();
        out.stage = Stage::Derived;
        out
    }

    fn on_output(&mut self, _node: NodeId, output: &Tuple, meta: &ProvMeta) {
        let Some(steps) = self.pending.get(&meta.exec_id) else {
            return;
        };
        let evid = meta.evid.expect("every execution carries its evid");
        if let Some(tree) = Self::assemble(steps, output) {
            debug_assert_eq!(tree.output(), output);
            self.completed.insert(meta.exec_id);
            self.trees.push((output.clone(), evid, tree));
        }
    }

    fn storage_at(&self, _node: NodeId) -> usize {
        0 // the oracle is not a storage scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::Value;
    use dpc_engine::Runtime;
    use dpc_ndlog::programs;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    fn run_line(k: usize, payloads: &[&str]) -> Runtime<GroundTruthRecorder> {
        let net = topo::line(k, Link::STUB_STUB);
        let mut rt = Runtime::new(
            programs::packet_forwarding(),
            net,
            GroundTruthRecorder::new(),
        );
        for i in 0..k as u32 - 1 {
            rt.install(route(i, k as u32 - 1, i + 1)).unwrap();
        }
        for p in payloads {
            rt.inject(packet(0, 0, k as u32 - 1, p)).unwrap();
        }
        rt.run().unwrap();
        rt
    }

    #[test]
    fn captures_figure3_tree() {
        let rt = run_line(3, &["data"]);
        let rec = rt.recorder();
        assert_eq!(rec.trees().len(), 1);
        let (_out, _evid, tree) = &rec.trees()[0];
        assert_eq!(tree.rules(), vec!["r2", "r1", "r1"]);
        assert_eq!(tree.event(), &packet(0, 0, 2, "data"));
        assert_eq!(tree.output().rel(), "recv");
        // Slow tuples level by level: r2 none, r1@n1 route, r1@n0 route.
        assert!(tree.slow().is_empty());
        let c1 = tree.child().unwrap();
        assert_eq!(c1.slow(), &[route(1, 2, 2)]);
        let c0 = c1.child().unwrap();
        assert_eq!(c0.slow(), &[route(0, 2, 1)]);
        assert_eq!(rec.incomplete_executions(), 0);
    }

    #[test]
    fn equivalent_packets_give_equivalent_trees() {
        let rt = run_line(4, &["data", "url"]);
        let rec = rt.recorder();
        assert_eq!(rec.trees().len(), 2);
        let a = &rec.trees()[0].2;
        let b = &rec.trees()[1].2;
        assert!(a.equivalent(b));
        assert_ne!(a.event(), b.event());
    }

    #[test]
    fn tree_lookup_by_output_and_evid() {
        let rt = run_line(3, &["data"]);
        let rec = rt.recorder();
        let out = &rt.outputs()[0];
        assert!(rec.tree_for(&out.tuple, &out.evid).is_some());
        let other = EvId::of_bytes(b"nope");
        assert!(rec.tree_for(&out.tuple, &other).is_none());
    }

    #[test]
    fn dropped_packets_stay_pending() {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(
            programs::packet_forwarding(),
            net,
            GroundTruthRecorder::new(),
        );
        // Route at n0 but a black hole at n1.
        rt.install(route(0, 2, 1)).unwrap();
        rt.inject(packet(0, 0, 2, "lost")).unwrap();
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
        assert_eq!(rt.recorder().trees().len(), 0);
        assert_eq!(rt.recorder().incomplete_executions(), 1);
    }
}
