//! The Basic storage optimization (Section 4, Table 2).
//!
//! Basic removes the provenance nodes of intermediate event tuples inside
//! each tree: no `prov` rows are kept for base or intermediate tuples, and
//! each `ruleExec` row gains `(NLoc, NRID)` columns chaining it to the rule
//! execution that derived its triggering event. Only the *output* tuple
//! keeps a `prov` row. The full tree is recovered at query time by walking
//! the chain and re-executing the rules bottom-up (Section 4, step 2).

use dpc_common::{NodeId, Rid, Tuple, Vid};
use dpc_engine::{ProvMeta, ProvRecorder, Stage};
use dpc_ndlog::Rule;
use dpc_telemetry::TelemetryHandle;

use crate::exspan::exspan_rid;
use crate::storage::{ProvRow, ProvTable, RuleExecRow, RuleExecTable};

/// Wire overhead Basic tags onto each shipped tuple: the previous rule
/// execution's `(NLoc, NRID)` plus a stage byte.
pub const BASIC_META_BYTES: usize = 25;

/// Per-node Basic state.
#[derive(Debug)]
struct Node {
    prov: ProvTable,
    rule_exec: RuleExecTable,
}

/// The Basic storage-optimization recorder.
#[derive(Debug)]
pub struct BasicRecorder {
    nodes: Vec<Node>,
    telemetry: Option<TelemetryHandle>,
}

impl BasicRecorder {
    /// Create a recorder for a network of `n` nodes.
    pub fn new(n: usize) -> BasicRecorder {
        BasicRecorder {
            nodes: (0..n)
                .map(|_| Node {
                    prov: ProvTable::default(),
                    rule_exec: RuleExecTable::new(true),
                })
                .collect(),
            telemetry: None,
        }
    }

    /// Push the per-table gauges for `node` to the attached telemetry.
    fn report_tables(&self, node: NodeId) {
        let Some(t) = &self.telemetry else { return };
        let (prov, re) = self.row_counts(node);
        t.gauge("recorder.prov_rows", Some(node.0), prov as i64);
        t.gauge("recorder.rule_exec_rows", Some(node.0), re as i64);
        t.gauge(
            "recorder.storage_bytes",
            Some(node.0),
            self.storage_at(node) as i64,
        );
    }

    /// The `prov` row for an output tuple.
    pub fn prov_row(&self, loc: NodeId, vid: &Vid) -> Option<&ProvRow> {
        self.nodes.get(loc.index())?.prov.get(vid)
    }

    /// The `ruleExec` row for `rid` at `loc`.
    pub fn rule_exec(&self, loc: NodeId, rid: &Rid) -> Option<&RuleExecRow> {
        self.nodes.get(loc.index())?.rule_exec.get(rid)
    }

    /// Row counts at `node`: `(prov, ruleExec)`.
    pub fn row_counts(&self, node: NodeId) -> (usize, usize) {
        let n = &self.nodes[node.index()];
        (n.prov.len(), n.rule_exec.len())
    }

    /// Snapshot of the `prov` rows at `node` (unordered).
    pub fn prov_rows_at(&self, node: NodeId) -> Vec<ProvRow> {
        self.nodes[node.index()].prov.iter().cloned().collect()
    }

    /// Snapshot of the `ruleExec` rows at `node` (unordered).
    pub fn rule_exec_rows_at(&self, node: NodeId) -> Vec<RuleExecRow> {
        self.nodes[node.index()].rule_exec.iter().cloned().collect()
    }

    /// Total storage across all nodes.
    pub fn total_storage(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.storage_at(NodeId(i as u32)))
            .sum()
    }
}

impl ProvRecorder for BasicRecorder {
    fn on_input(&mut self, _node: NodeId, _event: &Tuple, meta: &mut ProvMeta) {
        // Nothing stored: the input event is materialized by the engine
        // and referenced by vid from the chain-tail ruleExec row.
        meta.wire_bytes = BASIC_META_BYTES;
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        event: &Tuple,
        slow: &[Tuple],
        head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        let _ = head;
        // `rid` values are identical to ExSPAN's (Section 4: "vid values
        // and rid values are identical to those in Table 1").
        let mut hash_vids = Vec::with_capacity(1 + slow.len());
        hash_vids.push(event.vid());
        hash_vids.extend(slow.iter().map(Tuple::vid));
        let rid = exspan_rid(&rule.label, node, &hash_vids);

        // Stored VIDS: the slow tuples; the chain tail (the rule fired by
        // the raw input event) additionally keeps the input event's vid so
        // queries can find the leaf (Table 2, row rid1: `(vid1, vid2)`).
        let vids = if meta.prev.is_none() {
            hash_vids
        } else {
            slow.iter().map(Tuple::vid).collect()
        };

        self.nodes[node.index()].rule_exec.insert(RuleExecRow {
            rloc: node,
            rid,
            rule: rule.label.clone(),
            vids,
            next: meta.prev,
        });
        self.report_tables(node);

        let mut out = meta.clone();
        out.stage = Stage::Derived;
        out.prev = Some((node, rid));
        out.wire_bytes = BASIC_META_BYTES;
        out
    }

    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta) {
        let (rloc, rid) = meta
            .prev
            .expect("an output tuple is always derived by at least one rule");
        self.nodes[node.index()].prov.insert(ProvRow {
            loc: node,
            vid: output.vid(),
            rid: Some(rid),
            rloc: Some(rloc),
        });
        self.report_tables(node);
    }

    fn storage_at(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        n.prov.bytes() + n.rule_exec.bytes()
    }

    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exspan::ExspanRecorder;
    use dpc_common::Value;
    use dpc_engine::Runtime;
    use dpc_ndlog::programs;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    fn run_figure2() -> Runtime<BasicRecorder> {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, BasicRecorder::new(3));
        rt.install(route(0, 2, 1)).unwrap();
        rt.install(route(1, 2, 2)).unwrap();
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn table2_prov_holds_only_the_output() {
        let rt = run_figure2();
        let rec = rt.recorder();
        // Exactly one prov row in the whole network: the recv tuple at n2.
        assert_eq!(rec.row_counts(n(0)).0, 0);
        assert_eq!(rec.row_counts(n(1)).0, 0);
        assert_eq!(rec.row_counts(n(2)).0, 1);
        let recv = rt.outputs()[0].tuple.clone();
        assert!(rec.prov_row(n(2), &recv.vid()).is_some());
    }

    #[test]
    fn table2_chain_walks_to_null() {
        let rt = run_figure2();
        let rec = rt.recorder();
        let recv = rt.outputs()[0].tuple.clone();
        let pr = rec.prov_row(n(2), &recv.vid()).unwrap();
        // recv derived by r2 at n2.
        let re3 = rec.rule_exec(pr.rloc.unwrap(), &pr.rid.unwrap()).unwrap();
        assert_eq!(re3.rule, "r2");
        assert!(re3.vids.is_empty()); // r2 joins no slow tuples
                                      // next -> r1 at n1.
        let (nl2, nr2) = re3.next.unwrap();
        assert_eq!(nl2, n(1));
        let re2 = rec.rule_exec(nl2, &nr2).unwrap();
        assert_eq!(re2.rule, "r1");
        assert_eq!(re2.vids, vec![route(1, 2, 2).vid()]); // slow only
                                                          // next -> r1 at n0 (chain tail).
        let (nl1, nr1) = re2.next.unwrap();
        assert_eq!(nl1, n(0));
        let re1 = rec.rule_exec(nl1, &nr1).unwrap();
        assert_eq!(re1.rule, "r1");
        assert!(re1.next.is_none());
        // Tail keeps event vid + slow vid (Table 2: (vid1, vid2)).
        assert_eq!(re1.vids.len(), 2);
        assert!(re1.vids.contains(&packet(0, 0, 2, "data").vid()));
        assert!(re1.vids.contains(&route(0, 2, 1).vid()));
    }

    #[test]
    fn rids_match_exspan() {
        // Section 4: Basic's vid/rid values are identical to ExSPAN's.
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt_b = Runtime::new(
            programs::packet_forwarding(),
            net.clone(),
            BasicRecorder::new(3),
        );
        let mut rt_e = Runtime::new(programs::packet_forwarding(), net, ExspanRecorder::new(3));
        rt_b.install(route(0, 2, 1)).unwrap();
        rt_b.install(route(1, 2, 2)).unwrap();
        rt_b.inject(packet(0, 0, 2, "data")).unwrap();
        rt_b.run().unwrap();
        rt_e.install(route(0, 2, 1)).unwrap();
        rt_e.install(route(1, 2, 2)).unwrap();
        rt_e.inject(packet(0, 0, 2, "data")).unwrap();
        rt_e.run().unwrap();

        let recv = rt_b.outputs()[0].tuple.clone();
        let pb = rt_b.recorder().prov_row(n(2), &recv.vid()).unwrap();
        let pe = rt_e.recorder().prov_row(n(2), &recv.vid()).unwrap();
        assert_eq!(pb.rid, pe.rid);
        assert_eq!(pb.rloc, pe.rloc);
    }

    #[test]
    fn basic_stores_less_than_exspan() {
        let net = topo::line(5, Link::STUB_STUB);
        let mut rt_b = Runtime::new(
            programs::packet_forwarding(),
            net.clone(),
            BasicRecorder::new(5),
        );
        let mut rt_e = Runtime::new(programs::packet_forwarding(), net, ExspanRecorder::new(5));
        for i in 0..4u32 {
            rt_b.install(route(i, 4, i + 1)).unwrap();
            rt_e.install(route(i, 4, i + 1)).unwrap();
        }
        for p in 0..20 {
            let pkt = packet(0, 0, 4, &format!("payload-{p}"));
            rt_b.inject(pkt.clone()).unwrap();
            rt_e.inject(pkt).unwrap();
        }
        rt_b.run().unwrap();
        rt_e.run().unwrap();
        assert_eq!(rt_b.outputs().len(), 20);
        let b = rt_b.recorder().total_storage();
        let e = rt_e.recorder().total_storage();
        assert!(b < e, "basic {b} should be below exspan {e}");
    }
}
