//! Provenance trees (Appendix A).
//!
//! A provenance tree of a DELP execution is a *chain*: each level is one
//! rule execution, with the slow-changing tuples it joined as leaf
//! children, ending at the input event tuple. Formally (Appendix A):
//!
//! ```text
//! tr ::= <rID, P, ev, B1::...::Bn>      -- leaf: the rule fired on the event
//!      | <rID, P, tr, B1::...::Bn>      -- node: the rule fired on tr's output
//! ```

use std::fmt;

use dpc_common::Tuple;

/// A provenance tree rooted at its output tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvTree {
    /// The first rule execution of the chain: triggered directly by the
    /// input event.
    Leaf {
        /// Label of the executed rule.
        rule: String,
        /// The derived (output-of-this-rule) tuple `P`.
        output: Tuple,
        /// The input event tuple `ev`.
        event: Tuple,
        /// Slow-changing tuples joined, in body order.
        slow: Vec<Tuple>,
    },
    /// A later rule execution, triggered by the child tree's output.
    Node {
        /// Label of the executed rule.
        rule: String,
        /// The derived tuple `P`.
        output: Tuple,
        /// The sub-tree that derived this rule's triggering event.
        child: Box<ProvTree>,
        /// Slow-changing tuples joined, in body order.
        slow: Vec<Tuple>,
    },
}

impl ProvTree {
    /// The tuple this tree derives (the root tuple node).
    pub fn output(&self) -> &Tuple {
        match self {
            ProvTree::Leaf { output, .. } | ProvTree::Node { output, .. } => output,
        }
    }

    /// The input event at the bottom of the chain.
    pub fn event(&self) -> &Tuple {
        match self {
            ProvTree::Leaf { event, .. } => event,
            ProvTree::Node { child, .. } => child.event(),
        }
    }

    /// The rule label at this level.
    pub fn rule(&self) -> &str {
        match self {
            ProvTree::Leaf { rule, .. } | ProvTree::Node { rule, .. } => rule,
        }
    }

    /// Slow-changing tuples at this level.
    pub fn slow(&self) -> &[Tuple] {
        match self {
            ProvTree::Leaf { slow, .. } | ProvTree::Node { slow, .. } => slow,
        }
    }

    /// The child tree, if this is not the leaf level.
    pub fn child(&self) -> Option<&ProvTree> {
        match self {
            ProvTree::Leaf { .. } => None,
            ProvTree::Node { child, .. } => Some(child),
        }
    }

    /// Rule labels from root to leaf.
    pub fn rules(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(t) = cur {
            out.push(t.rule());
            cur = t.child();
        }
        out
    }

    /// Number of rule executions in the chain (= tree depth).
    pub fn depth(&self) -> usize {
        1 + self.child().map_or(0, ProvTree::depth)
    }

    /// Total provenance nodes: rule nodes plus tuple nodes (output,
    /// intermediate events, event, and slow leaves) — the size of the
    /// drawn tree in Figure 3.
    pub fn node_count(&self) -> usize {
        // Per level: 1 rule node + 1 derived-tuple node + slow leaves;
        // plus the event tuple node at the bottom.
        match self {
            ProvTree::Leaf { slow, .. } => 1 + 1 + slow.len() + 1,
            ProvTree::Node { child, slow, .. } => 1 + 1 + slow.len() + child.node_count(),
        }
    }

    /// Tree equivalence `tr ~ tr'` (Section 5.1, Appendix A): identical
    /// rule sequences and identical slow-changing tuples at every level;
    /// the output tuples and input events may differ.
    pub fn equivalent(&self, other: &ProvTree) -> bool {
        match (self, other) {
            (
                ProvTree::Leaf {
                    rule: r1, slow: s1, ..
                },
                ProvTree::Leaf {
                    rule: r2, slow: s2, ..
                },
            ) => r1 == r2 && s1 == s2,
            (
                ProvTree::Node {
                    rule: r1,
                    slow: s1,
                    child: c1,
                    ..
                },
                ProvTree::Node {
                    rule: r2,
                    slow: s2,
                    child: c2,
                    ..
                },
            ) => r1 == r2 && s1 == s2 && c1.equivalent(c2),
            _ => false,
        }
    }

    /// Every tuple in the tree: output, intermediates, slow tuples, event.
    pub fn all_tuples(&self) -> Vec<&Tuple> {
        let mut out = vec![self.output()];
        let mut cur = self;
        loop {
            out.extend(cur.slow().iter());
            match cur {
                ProvTree::Leaf { event, .. } => {
                    out.push(event);
                    break;
                }
                ProvTree::Node { child, .. } => {
                    out.push(child.output());
                    cur = child;
                }
            }
        }
        out
    }

    /// Serialize the tree as JSON for downstream tooling. Hand-rolled
    /// (no serde): nested objects `{rule, output, slow, child|event}`
    /// where tuples are `{rel, args}` with typed argument objects.
    pub fn to_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        fn value(v: &dpc_common::Value, out: &mut String) {
            match v {
                dpc_common::Value::Addr(n) => {
                    out.push_str(&format!("{{\"node\":{}}}", n.0));
                }
                dpc_common::Value::Int(i) => {
                    out.push_str(&format!("{{\"int\":{i}}}"));
                }
                dpc_common::Value::Str(s) => {
                    out.push_str("{\"str\":");
                    esc(s, out);
                    out.push('}');
                }
                dpc_common::Value::Bool(b) => {
                    out.push_str(&format!("{{\"bool\":{b}}}"));
                }
            }
        }
        fn tuple(t: &Tuple, out: &mut String) {
            out.push_str("{\"rel\":");
            esc(t.rel(), out);
            out.push_str(",\"args\":[");
            for (i, a) in t.args().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                value(a, out);
            }
            out.push_str("]}");
        }
        fn walk(tr: &ProvTree, out: &mut String) {
            out.push_str("{\"rule\":");
            esc(tr.rule(), out);
            out.push_str(",\"output\":");
            tuple(tr.output(), out);
            out.push_str(",\"slow\":[");
            for (i, s) in tr.slow().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                tuple(s, out);
            }
            out.push(']');
            match tr {
                ProvTree::Leaf { event, .. } => {
                    out.push_str(",\"event\":");
                    tuple(event, out);
                }
                ProvTree::Node { child, .. } => {
                    out.push_str(",\"child\":");
                    walk(child, out);
                }
            }
            out.push('}');
        }
        let mut out = String::new();
        walk(self, &mut out);
        out
    }

    /// Render an ASCII sketch of the tree (root at top), in the style of
    /// Figure 3.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        writeln!(out, "{pad}{}", self.output()).expect("write to String");
        writeln!(out, "{pad}└─[{}]", self.rule()).expect("write to String");
        for s in self.slow() {
            writeln!(out, "{pad}    ├─ {s}").expect("write to String");
        }
        match self {
            ProvTree::Leaf { event, .. } => {
                writeln!(out, "{pad}    └─ {event}").expect("write to String");
            }
            ProvTree::Node { child, .. } => child.render_into(out, indent + 2),
        }
    }
}

impl fmt::Display for ProvTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::{NodeId, Value};

    fn t(rel: &str, loc: u32, payload: &str) -> Tuple {
        Tuple::new(rel, vec![Value::Addr(NodeId(loc)), Value::str(payload)])
    }

    /// Build the figure-3-shaped chain: r1@n0 -> r1@n1 -> r2@n2.
    fn sample(payload: &str) -> ProvTree {
        ProvTree::Node {
            rule: "r2".into(),
            output: t("recv", 2, payload),
            slow: vec![],
            child: Box::new(ProvTree::Node {
                rule: "r1".into(),
                output: t("packet", 2, payload),
                slow: vec![t("route", 1, "to2")],
                child: Box::new(ProvTree::Leaf {
                    rule: "r1".into(),
                    output: t("packet", 1, payload),
                    event: t("packet", 0, payload),
                    slow: vec![t("route", 0, "to1")],
                }),
            }),
        }
    }

    #[test]
    fn accessors() {
        let tr = sample("data");
        assert_eq!(tr.output(), &t("recv", 2, "data"));
        assert_eq!(tr.event(), &t("packet", 0, "data"));
        assert_eq!(tr.rules(), vec!["r2", "r1", "r1"]);
        assert_eq!(tr.depth(), 3);
    }

    #[test]
    fn node_count_matches_figure3_shape() {
        // 3 rule nodes + 3 derived-tuple nodes + 2 route leaves + 1 event
        // = 9, matching the drawn tree in Figure 3 (which shows 3 ovals
        // and 6 squares).
        assert_eq!(sample("data").node_count(), 9);
    }

    #[test]
    fn equivalence_ignores_event_and_outputs() {
        // Same structure and slow tuples, different payloads — the
        // "data" vs "url" example of Section 5.1.
        let a = sample("data");
        let b = sample("url");
        assert!(a.equivalent(&b));
        assert!(b.equivalent(&a));
        assert_ne!(a, b);
    }

    #[test]
    fn equivalence_requires_same_slow_tuples() {
        let a = sample("data");
        let mut b = sample("data");
        if let ProvTree::Node { child, .. } = &mut b {
            if let ProvTree::Node { slow, .. } = child.as_mut() {
                slow[0] = t("route", 1, "ELSEWHERE");
            }
        }
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn equivalence_requires_same_depth() {
        let a = sample("data");
        let ProvTree::Node { child, .. } = sample("data") else {
            unreachable!()
        };
        assert!(!a.equivalent(&child));
    }

    #[test]
    fn equivalence_requires_same_rules() {
        let a = ProvTree::Leaf {
            rule: "r1".into(),
            output: t("o", 0, "x"),
            event: t("e", 0, "x"),
            slow: vec![],
        };
        let b = ProvTree::Leaf {
            rule: "r9".into(),
            output: t("o", 0, "x"),
            event: t("e", 0, "x"),
            slow: vec![],
        };
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn all_tuples_collects_everything() {
        let tr = sample("data");
        let all = tr.all_tuples();
        // recv, route@1, packet@2, route@0, packet@1, packet@0 = 6.
        assert_eq!(all.len(), 6);
        assert!(all.contains(&&t("recv", 2, "data")));
        assert!(all.contains(&&t("packet", 0, "data")));
        assert!(all.contains(&&t("route", 0, "to1")));
    }

    #[test]
    fn json_export_is_well_formed() {
        let j = sample("da\"ta\\x").to_json();
        // Structure: nested child objects, escaped payload, typed args.
        assert!(j.starts_with("{\"rule\":\"r2\""));
        assert!(j.contains("\"child\":{\"rule\":\"r1\""));
        assert!(j.contains("\"event\":{\"rel\":\"packet\""));
        assert!(j.contains("da\\\"ta\\\\x"));
        assert!(j.contains("{\"node\":2}"));
        // Balanced braces and brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_control_characters() {
        let tr = ProvTree::Leaf {
            rule: "r1".into(),
            output: t("o", 0, "line\nbreak\t"),
            event: t("e", 0, "\u{1}"),
            slow: vec![],
        };
        let j = tr.to_json();
        assert!(j.contains("line\\nbreak\\t"));
        assert!(j.contains("\\u0001"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn render_mentions_rules_and_tuples() {
        let s = sample("data").render();
        assert!(s.contains("[r2]"));
        assert!(s.contains("[r1]"));
        assert!(s.contains("recv"));
        assert!(s.contains("route"));
    }
}
