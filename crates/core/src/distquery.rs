//! The Section 5.6 query executed as *actual messages* on the simulated
//! network.
//!
//! [`crate::query`] computes query latency analytically (sums of path
//! latencies, processing and transfer times). This module is the
//! mechanical counterpart: the recursive chain query of Section 5.6 runs
//! as a discrete-event simulation — a query message travels the
//! `(NLoc, NRID)` chain hop by hop, accumulating the fetched rows and
//! leaf tuples, and the collected entries return to the querier, which
//! re-derives the intermediate tuples. Link queuing and transmission
//! delays come from the simulator itself.
//!
//! The test suite checks that the simulated latency and the analytic
//! model agree to within a small factor — the cost model behind Figure 12
//! is validated by construction, not assumed.

use dpc_common::{Error, EvId, NodeId, Result, Rid, Tuple};
use dpc_engine::FnRegistry;
use dpc_ndlog::Delp;
use dpc_netsim::{Network, Sim, SimTime};
use dpc_telemetry::{AttrValue, SpanContext, TelemetryHandle};

use crate::query::{AdvancedStore, QueryCostModel, TupleResolver};
use crate::reconstruct::{reconstruct, ChainLevel};
use crate::tree::ProvTree;

/// Outcome of a simulated distributed query.
#[derive(Debug, Clone)]
pub struct SimulatedQuery {
    /// The reconstructed full provenance tree.
    pub tree: ProvTree,
    /// End-to-end latency measured by the simulator (network phase) plus
    /// the local reconstruction cost.
    pub latency: SimTime,
    /// Messages exchanged on the network.
    pub messages: u64,
    /// Bytes carried across all hops.
    pub bytes: u64,
}

/// Tracing options for a simulated query: where the spans go, and where
/// on the shared trace timeline this query starts.
///
/// Each query runs its own private [`Sim`] whose clock starts at zero;
/// `start` offsets the whole query so many queries laid on one exported
/// timeline don't overlay. Pass the previous query's end as the next
/// `start` (or leave [`SimTime::ZERO`] for a single query).
#[derive(Clone)]
pub struct QueryTrace {
    /// Sink receiving the spans.
    pub telemetry: TelemetryHandle,
    /// Trace-timeline instant at which this query begins.
    pub start: SimTime,
}

/// Per-query tracer: the root "query" span plus helpers for the closed
/// child spans every protocol stage emits. A `None` trace makes every
/// call free.
struct QTracer {
    tel: Option<TelemetryHandle>,
    root: SpanContext,
    /// The simulated instant the query started at (the trace offset).
    base: SimTime,
}

impl QTracer {
    /// Offset `sim` to the trace start, attach the sink and open the root
    /// span annotated with `scheme`.
    fn start<M>(trace: Option<&QueryTrace>, sim: &mut Sim<M>, querier: NodeId) -> QTracer {
        let Some(qt) = trace else {
            return QTracer {
                tel: None,
                root: SpanContext::NONE,
                base: SimTime::ZERO,
            };
        };
        if qt.start > SimTime::ZERO {
            // The heap is empty: this just advances the clock.
            let _ = sim.pop_until(qt.start);
        }
        sim.set_telemetry(qt.telemetry.clone());
        let root = qt
            .telemetry
            .span_root("query", Some(querier.0), sim.now().as_nanos());
        QTracer {
            tel: Some(qt.telemetry.clone()),
            root,
            base: qt.start,
        }
    }

    fn attr(&self, key: &'static str, value: AttrValue) {
        if let Some(t) = &self.tel {
            t.span_attr(self.root, key, value);
        }
    }

    /// Emit a closed child span of the root covering `[start, end]`.
    fn stage(&self, name: &'static str, node: NodeId, start: SimTime, end: SimTime) -> SpanContext {
        let Some(t) = &self.tel else {
            return SpanContext::NONE;
        };
        let s = t.span_child(name, Some(node.0), self.root, start.as_nanos());
        t.span_end(s, end.as_nanos());
        s
    }

    /// Like [`QTracer::stage`] with rows/bytes annotations.
    fn fetch(&self, node: NodeId, start: SimTime, end: SimTime, rows: usize, bytes: usize) {
        let Some(t) = &self.tel else { return };
        let s = self.stage("query.fetch", node, start, end);
        t.span_attr(s, "rows", AttrValue::UInt(rows as u64));
        t.span_attr(s, "bytes", AttrValue::UInt(bytes as u64));
    }

    /// Close the root at `end` with the run totals.
    fn finish(&self, end: SimTime, messages: u64, bytes: u64) {
        if let Some(t) = &self.tel {
            t.span_attr(self.root, "messages", AttrValue::UInt(messages));
            t.span_attr(self.root, "bytes", AttrValue::UInt(bytes));
            t.span_end(self.root, end.as_nanos());
        }
    }
}

/// The traveling query's accumulated state.
#[derive(Debug, Clone)]
struct State {
    querier: NodeId,
    evid: EvId,
    levels: Vec<ChainLevel>,
    event: Option<Tuple>,
    /// Serialized size of the collected entries so far.
    payload: usize,
}

/// Messages of the query protocol.
#[derive(Debug, Clone)]
enum QMsg {
    /// Process the chain node `rid` here, then continue.
    Step { rid: Rid, state: State },
    /// All entries collected; deliver to the querier.
    Done { state: State },
    /// Local processing finished: forward `inner` to `to` with `bytes` on
    /// the wire (or locally when already there).
    Forward {
        to: NodeId,
        bytes: usize,
        inner: Box<QMsg>,
    },
}

/// Base wire size of a query request (ids and bookkeeping).
const REQUEST_BYTES: usize = 48;

/// Execute the Section 5.6 chain query for `output`/`evid` as simulated
/// messages over `net`, against an Advanced-layout store.
#[allow(clippy::too_many_arguments)]
pub fn simulate_query_advanced<S: AdvancedStore>(
    net: &Network,
    rec: &S,
    resolver: &dyn TupleResolver,
    delp: &Delp,
    fns: &FnRegistry,
    cost: QueryCostModel,
    output: &Tuple,
    evid: &EvId,
    trace: Option<&QueryTrace>,
) -> Result<SimulatedQuery> {
    let querier = output.loc()?;
    let provs = rec.lookup_prov(querier, &output.vid(), evid);
    let prov = provs.first().ok_or_else(|| {
        Error::ProvenanceLookup(format!("no prov row for {output} / {evid} at {querier}"))
    })?;

    let mut sim: Sim<QMsg> = Sim::new(net.clone());
    let tr = QTracer::start(trace, &mut sim, querier);
    tr.attr("scheme", AttrValue::Str("advanced".into()));
    // The prov lookup happens at the querier, then the query departs.
    // Advanced resolves the prov row through the equivalence-tagged
    // table, so the initial lookup is equivalence work.
    tr.stage(
        "query.eq_lookup",
        querier,
        sim.now(),
        sim.now() + cost.per_row_proc,
    );
    let state = State {
        querier,
        evid: *evid,
        levels: Vec::new(),
        event: None,
        payload: 0,
    };
    sim.schedule_local(
        querier,
        cost.per_row_proc,
        QMsg::Forward {
            to: prov.rloc,
            bytes: REQUEST_BYTES,
            inner: Box::new(QMsg::Step {
                rid: prov.rid,
                state,
            }),
        },
    );

    let mut finished: Option<State> = None;
    while let Some(d) = sim.pop() {
        let node = d.dst;
        match d.msg {
            QMsg::Forward { to, bytes, inner } => {
                if to == node {
                    sim.schedule_local(node, SimTime::ZERO, *inner);
                } else {
                    sim.send_routed_traced(node, to, bytes, *inner, tr.root)?;
                }
            }
            QMsg::Step { rid, mut state } => {
                let step_at = sim.now();
                let view = rec.lookup_rule_exec(node, &rid).ok_or_else(|| {
                    Error::ProvenanceLookup(format!("no ruleExec node {rid} at {node}"))
                })?;
                let mut slow = Vec::with_capacity(view.vids.len());
                let mut fetched = 4 + 20 + (4 + view.rule.len()) + 4 + view.vids.len() * 20 + 25;
                for v in &view.vids {
                    let t = resolver.tuple_by_vid(node, v).ok_or_else(|| {
                        Error::ProvenanceLookup(format!("slow tuple {v} missing at {node}"))
                    })?;
                    fetched += dpc_common::StorageSize::storage_size(t);
                    slow.push(t.clone());
                }
                let rows = 1 + slow.len();
                state.levels.push(ChainLevel {
                    rule: view.rule.clone(),
                    slow,
                });
                state.payload += fetched;
                let proc = SimTime::from_nanos(cost.per_row_proc.as_nanos() * rows as u64);
                tr.fetch(node, step_at, step_at + proc, rows, fetched);
                match view.next {
                    Some((nloc, nrid)) => {
                        let bytes = REQUEST_BYTES + state.payload;
                        sim.schedule_local(
                            node,
                            proc,
                            QMsg::Forward {
                                to: nloc,
                                bytes,
                                inner: Box::new(QMsg::Step { rid: nrid, state }),
                            },
                        );
                    }
                    None => {
                        // Chain tail: fetch the materialized input event.
                        let ev = resolver.event_by_evid(node, &state.evid).ok_or_else(|| {
                            Error::ProvenanceLookup(format!(
                                "event {} not materialized at {node}",
                                state.evid
                            ))
                        })?;
                        state.payload += dpc_common::StorageSize::storage_size(ev);
                        state.event = Some(ev.clone());
                        let (querier, bytes) = (state.querier, state.payload);
                        sim.schedule_local(
                            node,
                            proc,
                            QMsg::Forward {
                                to: querier,
                                bytes,
                                inner: Box::new(QMsg::Done { state }),
                            },
                        );
                    }
                }
            }
            QMsg::Done { state } => {
                debug_assert_eq!(node, state.querier);
                finished = Some(state);
                break;
            }
        }
    }

    let state = finished
        .ok_or_else(|| Error::ProvenanceLookup("query never returned to the querier".into()))?;
    let network_latency = sim.now();
    let event = state.event.expect("set on the tail branch");
    let reexec = SimTime::from_nanos(cost.reexec_per_rule.as_nanos() * state.levels.len() as u64);
    tr.stage(
        "query.reexec",
        querier,
        network_latency,
        network_latency + reexec,
    );
    tr.attr("hops", AttrValue::UInt(state.levels.len() as u64));
    tr.finish(
        network_latency + reexec,
        sim.stats().messages(),
        sim.stats().total_bytes(),
    );
    let tree = reconstruct(delp, fns, &state.levels, &event)?;
    if tree.output() != output {
        return Err(Error::ProvenanceLookup(format!(
            "reconstruction produced {} instead of {output}",
            tree.output()
        )));
    }
    Ok(SimulatedQuery {
        tree,
        latency: (network_latency - tr.base) + reexec,
        messages: sim.stats().messages(),
        bytes: sim.stats().total_bytes(),
    })
}

/// Execute the Basic chain query (Section 4) for `output` as simulated
/// messages. Identical traveling-query shape to
/// [`simulate_query_advanced`], except the input event is referenced by
/// its `vid` in the chain tail's `VIDS` column (Table 2) instead of by
/// `evid`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_query_basic(
    net: &Network,
    rec: &crate::basic::BasicRecorder,
    resolver: &dyn TupleResolver,
    delp: &Delp,
    fns: &FnRegistry,
    cost: QueryCostModel,
    output: &Tuple,
    trace: Option<&QueryTrace>,
) -> Result<SimulatedQuery> {
    let querier = output.loc()?;
    let prov = rec
        .prov_row(querier, &output.vid())
        .ok_or_else(|| Error::ProvenanceLookup(format!("no prov row for {output} at {querier}")))?
        .clone();
    let (rloc, rid) = (
        prov.rloc.expect("basic prov rows reference a rule"),
        prov.rid.expect("basic prov rows reference a rule"),
    );

    let mut sim: Sim<QMsg> = Sim::new(net.clone());
    let tr = QTracer::start(trace, &mut sim, querier);
    tr.attr("scheme", AttrValue::Str("basic".into()));
    tr.stage(
        "query.lookup",
        querier,
        sim.now(),
        sim.now() + cost.per_row_proc,
    );
    let state = State {
        querier,
        evid: EvId::of_bytes(b"basic-unused"),
        levels: Vec::new(),
        event: None,
        payload: 0,
    };
    sim.schedule_local(
        querier,
        cost.per_row_proc,
        QMsg::Forward {
            to: rloc,
            bytes: REQUEST_BYTES,
            inner: Box::new(QMsg::Step { rid, state }),
        },
    );

    let mut finished: Option<State> = None;
    while let Some(d) = sim.pop() {
        let node = d.dst;
        match d.msg {
            QMsg::Forward { to, bytes, inner } => {
                if to == node {
                    sim.schedule_local(node, SimTime::ZERO, *inner);
                } else {
                    sim.send_routed_traced(node, to, bytes, *inner, tr.root)?;
                }
            }
            QMsg::Step { rid, mut state } => {
                let step_at = sim.now();
                let row = rec
                    .rule_exec(node, &rid)
                    .ok_or_else(|| {
                        Error::ProvenanceLookup(format!("no ruleExec row {rid} at {node}"))
                    })?
                    .clone();
                // On the chain tail the first vid is the input event.
                let (event_vid, slow_vids): (Option<dpc_common::Vid>, &[dpc_common::Vid]) =
                    if row.next.is_none() {
                        let (first, rest) = row.vids.split_first().ok_or_else(|| {
                            Error::ProvenanceLookup(format!("chain tail {rid} lacks its event vid"))
                        })?;
                        (Some(*first), rest)
                    } else {
                        (None, &row.vids[..])
                    };
                let mut fetched = row.size_bytes(true);
                let mut slow = Vec::with_capacity(slow_vids.len());
                for v in slow_vids {
                    let t = resolver.tuple_by_vid(node, v).ok_or_else(|| {
                        Error::ProvenanceLookup(format!("slow tuple {v} missing at {node}"))
                    })?;
                    fetched += dpc_common::StorageSize::storage_size(t);
                    slow.push(t.clone());
                }
                let rows = 1 + slow.len();
                state.levels.push(ChainLevel {
                    rule: row.rule.clone(),
                    slow,
                });
                state.payload += fetched;
                let proc = SimTime::from_nanos(cost.per_row_proc.as_nanos() * rows as u64);
                tr.fetch(node, step_at, step_at + proc, rows, fetched);
                match row.next {
                    Some((nloc, nrid)) => {
                        let bytes = REQUEST_BYTES + state.payload;
                        sim.schedule_local(
                            node,
                            proc,
                            QMsg::Forward {
                                to: nloc,
                                bytes,
                                inner: Box::new(QMsg::Step { rid: nrid, state }),
                            },
                        );
                    }
                    None => {
                        let ev_vid = event_vid.expect("set on the tail branch");
                        let ev = resolver.tuple_by_vid(node, &ev_vid).ok_or_else(|| {
                            Error::ProvenanceLookup(format!(
                                "event tuple {ev_vid} missing at {node}"
                            ))
                        })?;
                        state.payload += dpc_common::StorageSize::storage_size(ev);
                        state.event = Some(ev.clone());
                        let (querier, bytes) = (state.querier, state.payload);
                        sim.schedule_local(
                            node,
                            proc,
                            QMsg::Forward {
                                to: querier,
                                bytes,
                                inner: Box::new(QMsg::Done { state }),
                            },
                        );
                    }
                }
            }
            QMsg::Done { state } => {
                debug_assert_eq!(node, state.querier);
                finished = Some(state);
                break;
            }
        }
    }

    let state = finished
        .ok_or_else(|| Error::ProvenanceLookup("query never returned to the querier".into()))?;
    let network_latency = sim.now();
    let event = state.event.expect("set on the tail branch");
    let reexec = SimTime::from_nanos(cost.reexec_per_rule.as_nanos() * state.levels.len() as u64);
    tr.stage(
        "query.reexec",
        querier,
        network_latency,
        network_latency + reexec,
    );
    tr.attr("hops", AttrValue::UInt(state.levels.len() as u64));
    tr.finish(
        network_latency + reexec,
        sim.stats().messages(),
        sim.stats().total_bytes(),
    );
    let tree = reconstruct(delp, fns, &state.levels, &event)?;
    if tree.output() != output {
        return Err(Error::ProvenanceLookup(format!(
            "reconstruction produced {} instead of {output}",
            tree.output()
        )));
    }
    Ok(SimulatedQuery {
        tree,
        latency: (network_latency - tr.base) + reexec,
        messages: sim.stats().messages(),
        bytes: sim.stats().total_bytes(),
    })
}

/// A fetched child: its content, the deriving rule execution (if any),
/// and the serialized size of what was shipped.
type FetchedChild = (Tuple, Option<(NodeId, Rid)>, usize);

/// Messages of the querier-driven ExSPAN protocol.
#[derive(Debug, Clone)]
enum EMsg {
    /// Fetch the ruleExec row `rid` plus all its children's prov rows and
    /// contents; reply to `reply_to`.
    Req { rid: Rid, reply_to: NodeId },
    /// One level's worth of entries, shipped back to the querier.
    Resp {
        rule: String,
        slow: Vec<Tuple>,
        /// The event child: its content, and its deriving rule execution
        /// if it is itself derived.
        event: Tuple,
        event_deriv: Option<(NodeId, Rid)>,
    },
    /// Local processing done; send `inner` to `to`.
    Send {
        to: NodeId,
        bytes: usize,
        inner: Box<EMsg>,
    },
}

/// Execute ExSPAN's querier-driven recursive query for `output` as
/// simulated messages: one request/response round trip per derivation
/// level, with every level's intermediate tuple content shipped back —
/// the mechanical version of the Figure 12 baseline.
pub fn simulate_query_exspan(
    net: &Network,
    rec: &crate::exspan::ExspanRecorder,
    resolver: &dyn TupleResolver,
    cost: QueryCostModel,
    output: &Tuple,
    trace: Option<&QueryTrace>,
) -> Result<SimulatedQuery> {
    let querier = output.loc()?;
    let prov = rec
        .prov_row(querier, &output.vid())
        .ok_or_else(|| Error::ProvenanceLookup(format!("no prov row for {output} at {querier}")))?
        .clone();
    let (Some(rid0), Some(rloc0)) = (prov.rid, prov.rloc) else {
        return Err(Error::ProvenanceLookup(format!(
            "{output} is a base tuple, not a derived output"
        )));
    };

    let mut sim: Sim<EMsg> = Sim::new(net.clone());
    let tr = QTracer::start(trace, &mut sim, querier);
    tr.attr("scheme", AttrValue::Str("exspan".into()));
    tr.stage(
        "query.lookup",
        querier,
        sim.now(),
        sim.now() + SimTime::from_nanos(cost.per_row_proc.as_nanos() * 2),
    );
    // The local prov+content lookup, then the first request departs.
    sim.schedule_local(
        querier,
        SimTime::from_nanos(cost.per_row_proc.as_nanos() * 2),
        EMsg::Send {
            to: rloc0,
            bytes: REQUEST_BYTES,
            inner: Box::new(EMsg::Req {
                rid: rid0,
                reply_to: querier,
            }),
        },
    );

    // Collected levels, root-first: (rule, derived tuple, slow tuples).
    let mut levels: Vec<(String, Tuple, Vec<Tuple>)> = Vec::new();
    let mut cur_output = output.clone();
    let mut leaf_event: Option<Tuple> = None;

    while let Some(d) = sim.pop() {
        let node = d.dst;
        match d.msg {
            EMsg::Send { to, bytes, inner } => {
                if to == node {
                    sim.schedule_local(node, SimTime::ZERO, *inner);
                } else {
                    sim.send_routed_traced(node, to, bytes, *inner, tr.root)?;
                }
            }
            EMsg::Req { rid, reply_to } => {
                let req_at = sim.now();
                let re = rec
                    .rule_exec(node, &rid)
                    .ok_or_else(|| {
                        Error::ProvenanceLookup(format!("no ruleExec row {rid} at {node}"))
                    })?
                    .clone();
                let mut bytes = re.size_bytes(false);
                let mut rows = 1usize;
                let fetch = |vid: &dpc_common::Vid| -> Result<FetchedChild> {
                    let p = rec.prov_row(node, vid).ok_or_else(|| {
                        Error::ProvenanceLookup(format!("no prov row for child {vid} at {node}"))
                    })?;
                    let t = resolver.tuple_by_vid(node, vid).ok_or_else(|| {
                        Error::ProvenanceLookup(format!("child content {vid} missing at {node}"))
                    })?;
                    let sz = dpc_common::StorageSize::storage_size(p)
                        + dpc_common::StorageSize::storage_size(t);
                    let deriv = match (p.rid, p.rloc) {
                        (Some(r), Some(l)) => Some((l, r)),
                        _ => None,
                    };
                    Ok((t.clone(), deriv, sz))
                };
                let first = re.vids.first().ok_or_else(|| {
                    Error::ProvenanceLookup(format!("ruleExec {rid} has no children"))
                })?;
                let (event, event_deriv, sz) = fetch(first)?;
                bytes += sz;
                rows += 2;
                let mut slow = Vec::with_capacity(re.vids.len() - 1);
                for v in &re.vids[1..] {
                    let (t, deriv, sz) = fetch(v)?;
                    if deriv.is_some() {
                        return Err(Error::ProvenanceLookup(format!(
                            "slow child {v} of {rid} is unexpectedly derived"
                        )));
                    }
                    bytes += sz;
                    rows += 2;
                    slow.push(t);
                }
                let proc = SimTime::from_nanos(cost.per_row_proc.as_nanos() * rows as u64);
                tr.fetch(node, req_at, req_at + proc, rows, bytes);
                sim.schedule_local(
                    node,
                    proc,
                    EMsg::Send {
                        to: reply_to,
                        bytes,
                        inner: Box::new(EMsg::Resp {
                            rule: re.rule.clone(),
                            slow,
                            event,
                            event_deriv,
                        }),
                    },
                );
            }
            EMsg::Resp {
                rule,
                slow,
                event,
                event_deriv,
            } => {
                debug_assert_eq!(node, querier);
                levels.push((rule, cur_output.clone(), slow));
                cur_output = event.clone();
                match event_deriv {
                    Some((next_loc, next_rid)) => {
                        sim.send_routed_traced(
                            querier,
                            next_loc,
                            REQUEST_BYTES,
                            EMsg::Req {
                                rid: next_rid,
                                reply_to: querier,
                            },
                            tr.root,
                        )?;
                    }
                    None => {
                        leaf_event = Some(event);
                        break;
                    }
                }
            }
        }
    }

    let event = leaf_event
        .ok_or_else(|| Error::ProvenanceLookup("query never reached a base event".into()))?;
    tr.attr("hops", AttrValue::UInt(levels.len() as u64));
    tr.finish(sim.now(), sim.stats().messages(), sim.stats().total_bytes());
    // Fold the levels (root-first) into the tree, leaf up.
    let (rule, out_t, slow) = levels.pop().expect("at least one level");
    let mut tree = ProvTree::Leaf {
        rule,
        output: out_t,
        event,
        slow,
    };
    while let Some((rule, out_t, slow)) = levels.pop() {
        tree = ProvTree::Node {
            rule,
            output: out_t,
            child: Box::new(tree),
            slow,
        };
    }
    if tree.output() != output {
        return Err(Error::ProvenanceLookup(format!(
            "assembled {} instead of {output}",
            tree.output()
        )));
    }
    Ok(SimulatedQuery {
        tree,
        latency: sim.now() - tr.base,
        messages: sim.stats().messages(),
        bytes: sim.stats().total_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advanced::AdvancedRecorder;
    use crate::query::{query_advanced, QueryCtx};
    use crate::reference::GroundTruthRecorder;
    use dpc_apps::forwarding;
    use dpc_engine::{Runtime, TeeRecorder};
    use dpc_ndlog::{equivalence_keys, programs};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn setup(len: usize) -> Runtime<TeeRecorder<AdvancedRecorder, GroundTruthRecorder>> {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let net = topo::line(len, Link::STUB_STUB);
        let rec = TeeRecorder::new(AdvancedRecorder::new(len, keys), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(net, rec);
        let dst = n(len as u32 - 1);
        forwarding::install_routes_for_pairs(&mut rt, &[(n(0), dst)]).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), dst, forwarding::payload(1)))
            .unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn simulated_query_returns_the_ground_truth_tree() {
        let rt = setup(5);
        let out = rt.outputs()[0].clone();
        let res = simulate_query_advanced(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            &out.tuple,
            &out.evid,
            None,
        )
        .unwrap();
        let truth = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&res.tree, truth);
        assert!(res.messages > 0);
        assert!(res.bytes > 0);
    }

    #[test]
    fn simulated_latency_validates_the_analytic_model() {
        let rt = setup(7);
        let out = rt.outputs()[0].clone();
        let cost = QueryCostModel::default();
        let simulated = simulate_query_advanced(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            cost,
            &out.tuple,
            &out.evid,
            None,
        )
        .unwrap();
        let mut ctx = QueryCtx::from_runtime(&rt);
        ctx.cost = cost;
        let analytic = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid)
            .unwrap()
            .latency;
        let ratio = simulated.latency.as_secs_f64() / analytic.as_secs_f64();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "simulated {} vs analytic {} (ratio {ratio:.2})",
            simulated.latency,
            analytic
        );
    }

    fn setup_exspan(
        len: usize,
    ) -> Runtime<TeeRecorder<crate::ExspanRecorder, GroundTruthRecorder>> {
        let net = topo::line(len, Link::STUB_STUB);
        let rec = TeeRecorder::new(crate::ExspanRecorder::new(len), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(net, rec);
        let dst = n(len as u32 - 1);
        forwarding::install_routes_for_pairs(&mut rt, &[(n(0), dst)]).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), dst, forwarding::payload(1)))
            .unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn simulated_exspan_query_returns_ground_truth() {
        let rt = setup_exspan(5);
        let out = rt.outputs()[0].clone();
        let res = simulate_query_exspan(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            QueryCostModel::default(),
            &out.tuple,
            None,
        )
        .unwrap();
        let truth = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&res.tree, truth);
    }

    #[test]
    fn simulated_exspan_validates_its_analytic_model() {
        let rt = setup_exspan(7);
        let out = rt.outputs()[0].clone();
        let cost = QueryCostModel::default();
        let simulated = simulate_query_exspan(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            cost,
            &out.tuple,
            None,
        )
        .unwrap();
        let mut ctx = QueryCtx::from_runtime(&rt);
        ctx.cost = cost;
        let analytic = crate::query::query_exspan(&ctx, &rt.recorder().primary, &out.tuple)
            .unwrap()
            .latency;
        let ratio = simulated.latency.as_secs_f64() / analytic.as_secs_f64();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "simulated {} vs analytic {} (ratio {ratio:.2})",
            simulated.latency,
            analytic
        );
    }

    #[test]
    fn figure12_gap_reproduces_mechanically() {
        // The simulated protocols themselves — not the analytic model —
        // show ExSPAN's querier-driven rounds losing to the traveling
        // chain query on a long path.
        let len = 9;
        let rt_e = setup_exspan(len);
        let out_e = rt_e.outputs()[0].clone();
        let exspan = simulate_query_exspan(
            rt_e.net(),
            &rt_e.recorder().primary,
            &rt_e,
            QueryCostModel::default(),
            &out_e.tuple,
            None,
        )
        .unwrap();

        let rt_a = setup(len);
        let out_a = rt_a.outputs()[0].clone();
        let advanced = simulate_query_advanced(
            rt_a.net(),
            &rt_a.recorder().primary,
            &rt_a,
            rt_a.delp(),
            rt_a.fns(),
            QueryCostModel::default(),
            &out_a.tuple,
            &out_a.evid,
            None,
        )
        .unwrap();

        let ratio = exspan.latency.as_secs_f64() / advanced.latency.as_secs_f64();
        assert!(
            ratio > 2.0,
            "exspan {} vs advanced {} (ratio {ratio:.2}) — expected the Figure 12 gap",
            exspan.latency,
            advanced.latency
        );
        // ExSPAN also ships more bytes (the intermediate tuple contents).
        assert!(exspan.bytes > advanced.bytes);
    }

    #[test]
    fn simulated_basic_query_matches_ground_truth_and_advanced_latency() {
        let len = 6;
        let net = topo::line(len, Link::STUB_STUB);
        let rec = TeeRecorder::new(crate::BasicRecorder::new(len), GroundTruthRecorder::new());
        let mut rt = forwarding::make_runtime(net, rec);
        let dst = n(len as u32 - 1);
        forwarding::install_routes_for_pairs(&mut rt, &[(n(0), dst)]).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), dst, forwarding::payload(1)))
            .unwrap();
        rt.run().unwrap();
        let out = rt.outputs()[0].clone();
        let res = simulate_query_basic(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            &out.tuple,
            None,
        )
        .unwrap();
        let truth = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&res.tree, truth);

        // Basic and Advanced walk the same chain shape: latencies agree
        // closely on the same workload.
        let rt_a = setup(len);
        let out_a = rt_a.outputs()[0].clone();
        let adv = simulate_query_advanced(
            rt_a.net(),
            &rt_a.recorder().primary,
            &rt_a,
            rt_a.delp(),
            rt_a.fns(),
            QueryCostModel::default(),
            &out_a.tuple,
            &out_a.evid,
            None,
        )
        .unwrap();
        let ratio = res.latency.as_secs_f64() / adv.latency.as_secs_f64();
        assert!((0.8..=1.3).contains(&ratio), "basic/advanced ratio {ratio}");
    }

    #[test]
    fn traced_query_breakdown_covers_root_exactly() {
        let rt = setup(6);
        let out = rt.outputs()[0].clone();
        let tel = dpc_telemetry::Telemetry::handle();
        tel.set_span_sampling(1);
        let qt = QueryTrace {
            telemetry: tel.clone(),
            start: SimTime::ZERO,
        };
        let res = simulate_query_advanced(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            &out.tuple,
            &out.evid,
            Some(&qt),
        )
        .unwrap();
        let spans = tel.spans();
        assert_eq!(tel.open_span_count(), 0);
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        assert_eq!(by_trace.len(), 1);
        let tree = by_trace.values().next().unwrap();
        dpc_telemetry::check_well_formed(tree).unwrap();
        let root = tree.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.name, "query");
        // The root covers exactly the reported latency.
        assert_eq!(root.duration_ns(), res.latency.as_nanos());
        // Critical path: all four categories are exercised and the
        // components sum to the root duration exactly.
        let bd = dpc_telemetry::critical_path(tree).unwrap();
        assert_eq!(bd.total(), root.duration_ns());
        assert!(bd.network > 0, "{bd:?}");
        assert!(bd.join > 0, "reexec time: {bd:?}");
        assert!(bd.equivalence > 0, "initial eq lookup: {bd:?}");
        assert!(bd.storage > 0, "per-hop fetches: {bd:?}");
    }

    #[test]
    fn traced_queries_offset_on_a_shared_timeline() {
        let rt = setup(4);
        let out = rt.outputs()[0].clone();
        let tel = dpc_telemetry::Telemetry::handle();
        tel.set_span_sampling(1);
        let mut cursor = SimTime::ZERO;
        let mut latencies = Vec::new();
        for _ in 0..2 {
            let qt = QueryTrace {
                telemetry: tel.clone(),
                start: cursor,
            };
            let res = simulate_query_advanced(
                rt.net(),
                &rt.recorder().primary,
                &rt,
                rt.delp(),
                rt.fns(),
                QueryCostModel::default(),
                &out.tuple,
                &out.evid,
                Some(&qt),
            )
            .unwrap();
            cursor += res.latency;
            latencies.push(res.latency);
        }
        // Offsetting must not change the measured latency.
        assert_eq!(latencies[0], latencies[1]);
        let spans = tel.spans();
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        assert_eq!(by_trace.len(), 2);
        let mut roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
        roots.sort_by_key(|s| s.start_ns);
        // The second query's trace begins where the first ended.
        assert_eq!(roots[0].start_ns, 0);
        assert_eq!(roots[1].start_ns, roots[0].end_ns.unwrap());
    }

    #[test]
    fn traced_exspan_query_is_well_formed() {
        let rt = setup_exspan(5);
        let out = rt.outputs()[0].clone();
        let tel = dpc_telemetry::Telemetry::handle();
        tel.set_span_sampling(1);
        let qt = QueryTrace {
            telemetry: tel.clone(),
            start: SimTime::ZERO,
        };
        let res = simulate_query_exspan(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            QueryCostModel::default(),
            &out.tuple,
            Some(&qt),
        )
        .unwrap();
        let spans = tel.spans();
        let by_trace = dpc_telemetry::spans_by_trace(&spans);
        let tree = by_trace.values().next().unwrap();
        dpc_telemetry::check_well_formed(tree).unwrap();
        let root = tree.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.duration_ns(), res.latency.as_nanos());
        let bd = dpc_telemetry::critical_path(tree).unwrap();
        assert_eq!(bd.total(), root.duration_ns());
        // Querier-driven rounds: network dominates on a 5-node line.
        assert!(bd.network > bd.storage, "{bd:?}");
    }

    #[test]
    fn unknown_output_errors() {
        let rt = setup(3);
        let bogus = Tuple::new("recv", vec![dpc_common::Value::Addr(n(2))]);
        let err = simulate_query_advanced(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            &bogus,
            &rt.outputs()[0].evid,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no prov row"), "{err}");
    }

    #[test]
    fn message_count_tracks_chain_length() {
        // Chain of k rule executions on a line: forward hops + the return,
        // all routed over adjacent links.
        let rt = setup(6); // 5 hops: r1 x5? (line of 6: 5 r1 + 1 r2)
        let out = rt.outputs()[0].clone();
        let res = simulate_query_advanced(
            rt.net(),
            &rt.recorder().primary,
            &rt,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            &out.tuple,
            &out.evid,
            None,
        )
        .unwrap();
        // Forward: querier(n5) -> n5 (local) is free; chain walks n5 ->
        // n4 -> ... -> n0 (5 link messages); return n0 -> n5 (5 hops).
        assert_eq!(res.messages, 10);
    }
}
