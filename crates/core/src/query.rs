//! Distributed provenance querying (Sections 2.2, 4 and 5.6) with the
//! latency cost model used for Figure 12.
//!
//! A query starts at the node holding the queried output tuple and walks
//! the distributed provenance tables:
//!
//! * **ExSPAN**'s recursive query is *querier-driven*: the querier hashes
//!   a tuple to its `vid`, fetches its `prov` row (and the tuple's
//!   content — ExSPAN materializes every intermediate tuple and the
//!   querier retrieves them to present the tree), then uses the returned
//!   `(RID, RLoc)` to fetch the `ruleExec` row, then the children — each
//!   dependent lookup round costs a round trip from the querier
//!   (Section 2.2 walks vid6 → rid3 → vid5 → ... exactly this way).
//! * **Basic** and **Advanced** send a query that *travels* the
//!   `(NLoc, NRID)` chain hop by hop — the chain nodes are the original
//!   forwarding path, so consecutive nodes are neighbors — collecting the
//!   small `ruleExec` rows and leaf tuples, then the querier *re-derives*
//!   the intermediate tuples locally ([`crate::reconstruct`]).
//!
//! This difference — per-level round trips touching large intermediate
//! tuples vs. a single traversal touching small rows — is what produces
//! the ~3x latency gap of Figure 12.
//!
//! The cost model: each remote lookup round costs a querier round trip
//! (ExSPAN) or a hop move (Basic/Advanced) at shortest-path latency, plus
//! per-row processing; fetched bytes ship to the querier at the bottleneck
//! bandwidth; reconstruction costs compute time per re-executed rule.

use dpc_common::{Error, EvId, NodeId, Result, StorageSize, Tuple, Vid};
use dpc_engine::{FnRegistry, ProvRecorder, Runtime};
use dpc_ndlog::Delp;
use dpc_netsim::{Network, SimTime};

use crate::advanced::AdvancedRecorder;
use crate::basic::BasicRecorder;
use crate::exspan::ExspanRecorder;
use crate::reconstruct::{reconstruct, ChainLevel};
use crate::storage::ProvRowAdv;
use crate::storage::RuleExecView;
use crate::tree::ProvTree;

/// Resolves tuple contents at query time: the leaf tuples referenced by
/// `VIDS` columns and the materialized input events referenced by `EVID`.
pub trait TupleResolver {
    /// The input event materialized at `node` under `evid`.
    fn event_by_evid(&self, node: NodeId, evid: &EvId) -> Option<&Tuple>;
    /// Any tuple stored at `node` by content hash.
    fn tuple_by_vid(&self, node: NodeId, vid: &Vid) -> Option<&Tuple>;
}

impl<R: ProvRecorder> TupleResolver for Runtime<R> {
    fn event_by_evid(&self, node: NodeId, evid: &EvId) -> Option<&Tuple> {
        Runtime::event_by_evid(self, node, evid)
    }
    fn tuple_by_vid(&self, node: NodeId, vid: &Vid) -> Option<&Tuple> {
        Runtime::tuple_by_vid(self, node, vid)
    }
}

/// Query-time cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct QueryCostModel {
    /// Processing time per row looked up at a node.
    pub per_row_proc: SimTime,
    /// Compute time per rule re-executed during reconstruction.
    pub reexec_per_rule: SimTime,
}

impl Default for QueryCostModel {
    fn default() -> Self {
        QueryCostModel {
            per_row_proc: SimTime::from_micros(50),
            reexec_per_rule: SimTime::from_micros(20),
        }
    }
}

/// Everything a query needs besides the scheme's tables.
pub struct QueryCtx<'a> {
    /// The network (for latency and bandwidth between nodes).
    pub net: &'a Network,
    /// The deployed program (for reconstruction).
    pub delp: &'a Delp,
    /// User-defined functions (for reconstruction).
    pub fns: &'a FnRegistry,
    /// Tuple content resolution.
    pub resolver: &'a dyn TupleResolver,
    /// Cost parameters.
    pub cost: QueryCostModel,
}

impl<'a> QueryCtx<'a> {
    /// Build a context borrowing everything from a finished runtime.
    pub fn from_runtime<R: ProvRecorder>(rt: &'a Runtime<R>) -> QueryCtx<'a> {
        QueryCtx {
            net: rt.net(),
            delp: rt.delp(),
            fns: rt.fns(),
            resolver: rt,
            cost: QueryCostModel::default(),
        }
    }
}

/// The result of one provenance query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The reconstructed full provenance tree.
    pub tree: ProvTree,
    /// End-to-end query latency under the cost model.
    pub latency: SimTime,
    /// Rows and tuple contents fetched.
    pub fetches: usize,
    /// Total bytes shipped back to the querier.
    pub bytes: usize,
}

/// Walk-state shared by the three query algorithms.
struct Walker<'a> {
    ctx: &'a QueryCtx<'a>,
    querier: NodeId,
    cur: NodeId,
    latency: SimTime,
    transfer: SimTime,
    bytes: usize,
    fetches: usize,
}

impl<'a> Walker<'a> {
    fn new(ctx: &'a QueryCtx<'a>, querier: NodeId) -> Walker<'a> {
        Walker {
            ctx,
            querier,
            cur: querier,
            latency: SimTime::ZERO,
            transfer: SimTime::ZERO,
            bytes: 0,
            fetches: 0,
        }
    }

    /// Move the query cursor to `node`.
    fn move_to(&mut self, node: NodeId) -> Result<()> {
        if node != self.cur {
            self.latency += self.ctx.net.path_latency(self.cur, node)?;
            self.cur = node;
        }
        Ok(())
    }

    /// One querier-driven lookup round at `node`: a round trip from the
    /// querier plus per-item processing and response shipping. Items known
    /// upfront batch into a single round; dependent lookups need their own
    /// round. This is ExSPAN's query pattern.
    fn round(&mut self, node: NodeId, item_bytes: &[usize]) -> Result<()> {
        let one_way = self.ctx.net.path_latency(self.querier, node)?;
        self.latency += one_way + one_way;
        for &bytes in item_bytes {
            self.latency += self.ctx.cost.per_row_proc;
            self.bytes += bytes;
            self.fetches += 1;
            if node != self.querier {
                let bps = self.ctx.net.path_bottleneck_bps(self.querier, node)?;
                let ns = (bytes as u128 * 8 * 1_000_000_000 / bps as u128) as u64;
                self.latency += SimTime::from_nanos(ns);
            }
        }
        Ok(())
    }

    /// Account one row/content fetch of `bytes` at the cursor.
    fn fetch(&mut self, bytes: usize) -> Result<()> {
        self.latency += self.ctx.cost.per_row_proc;
        self.bytes += bytes;
        self.fetches += 1;
        if self.cur != self.querier {
            let bps = self.ctx.net.path_bottleneck_bps(self.querier, self.cur)?;
            let ns = (bytes as u128 * 8 * 1_000_000_000 / bps as u128) as u64;
            self.transfer += SimTime::from_nanos(ns);
        }
        Ok(())
    }

    /// Return to the querier and account the response shipping.
    fn finish(&mut self) -> Result<()> {
        self.latency += self.ctx.net.path_latency(self.cur, self.querier)?;
        self.cur = self.querier;
        self.latency += self.transfer;
        Ok(())
    }

    fn into_result(self, tree: ProvTree) -> QueryResult {
        QueryResult {
            tree,
            latency: self.latency,
            fetches: self.fetches,
            bytes: self.bytes,
        }
    }
}

fn view_size(v: &RuleExecView) -> usize {
    4 + 20 + (4 + v.rule.len()) + 4 + v.vids.len() * 20 + v.next.storage_size()
}

enum Walked {
    Derived(ProvTree),
    Base(Tuple),
}

/// Query an ExSPAN-maintained provenance tree for `output`.
pub fn query_exspan(
    ctx: &QueryCtx<'_>,
    rec: &ExspanRecorder,
    output: &Tuple,
) -> Result<QueryResult> {
    let querier = output.loc()?;
    let mut w = Walker::new(ctx, querier);
    let walked = walk_exspan(ctx, rec, &mut w, output.vid(), querier)?;
    match walked {
        Walked::Derived(tree) => Ok(w.into_result(tree)),
        Walked::Base(t) => Err(Error::ProvenanceLookup(format!(
            "{t} is a base tuple, not a derived output"
        ))),
    }
}

fn walk_exspan(
    ctx: &QueryCtx<'_>,
    rec: &ExspanRecorder,
    w: &mut Walker<'_>,
    vid: Vid,
    loc: NodeId,
) -> Result<Walked> {
    // Round at `loc`: the tuple's prov row plus its content — ExSPAN
    // materializes every tuple and the querier retrieves it to present
    // the tree. (For the output tuple this round is local to the querier.)
    let prov = rec
        .prov_row(loc, &vid)
        .ok_or_else(|| Error::ProvenanceLookup(format!("no prov row for {vid} at {loc}")))?
        .clone();
    let tuple = ctx
        .resolver
        .tuple_by_vid(loc, &vid)
        .ok_or_else(|| {
            Error::ProvenanceLookup(format!("tuple content for {vid} missing at {loc}"))
        })?
        .clone();
    w.round(loc, &[prov.storage_size(), tuple.storage_size()])?;
    match descend_exspan(ctx, rec, w, tuple, &prov)? {
        Some(tree) => Ok(Walked::Derived(tree)),
        None => {
            let t = ctx
                .resolver
                .tuple_by_vid(loc, &vid)
                .expect("fetched above")
                .clone();
            Ok(Walked::Base(t))
        }
    }
}

/// Expand one derived tuple level by level. Per level, a single batched
/// round at the deriving node fetches the `ruleExec` row together with
/// every child's prov row and content (all local to that node); only the
/// event child's own derivation requires descending further. Returns
/// `None` when `prov` marks a base tuple.
fn descend_exspan(
    ctx: &QueryCtx<'_>,
    rec: &ExspanRecorder,
    w: &mut Walker<'_>,
    tuple: Tuple,
    prov: &crate::storage::ProvRow,
) -> Result<Option<ProvTree>> {
    let (Some(rid), Some(rloc)) = (prov.rid, prov.rloc) else {
        return Ok(None);
    };
    let re = rec
        .rule_exec(rloc, &rid)
        .ok_or_else(|| Error::ProvenanceLookup(format!("no ruleExec row {rid} at {rloc}")))?
        .clone();
    if re.vids.is_empty() {
        return Err(Error::ProvenanceLookup(format!(
            "ruleExec {rid} has no children"
        )));
    }

    // Batched round at rloc: ruleExec row + every child's prov row and
    // content (the children of a rule execution all live at rloc).
    let mut items = vec![re.size_bytes(false)];
    let mut child_provs = Vec::with_capacity(re.vids.len());
    let mut child_tuples = Vec::with_capacity(re.vids.len());
    for v in &re.vids {
        let p = rec
            .prov_row(rloc, v)
            .ok_or_else(|| Error::ProvenanceLookup(format!("no prov row for child {v} at {rloc}")))?
            .clone();
        let t = ctx.resolver.tuple_by_vid(rloc, v).ok_or_else(|| {
            Error::ProvenanceLookup(format!("child tuple content {v} missing at {rloc}"))
        })?;
        items.push(p.storage_size());
        items.push(t.storage_size());
        child_provs.push(p);
        child_tuples.push(t.clone());
    }
    w.round(rloc, &items)?;

    // Children after the first are the slow-changing leaves.
    for (v, p) in re.vids[1..].iter().zip(&child_provs[1..]) {
        if p.rid.is_some() {
            return Err(Error::ProvenanceLookup(format!(
                "slow child {v} of {rid} is unexpectedly derived"
            )));
        }
    }
    let slow: Vec<Tuple> = child_tuples[1..].to_vec();

    // The event child may itself be derived: descend.
    let event_tuple = child_tuples[0].clone();
    let tree = match descend_exspan(ctx, rec, w, event_tuple.clone(), &child_provs[0])? {
        Some(child) => ProvTree::Node {
            rule: re.rule.clone(),
            output: tuple,
            child: Box::new(child),
            slow,
        },
        None => ProvTree::Leaf {
            rule: re.rule.clone(),
            output: tuple,
            event: event_tuple,
            slow,
        },
    };
    Ok(Some(tree))
}

/// Query a Basic-maintained provenance tree for `output`.
pub fn query_basic(ctx: &QueryCtx<'_>, rec: &BasicRecorder, output: &Tuple) -> Result<QueryResult> {
    let querier = output.loc()?;
    let mut w = Walker::new(ctx, querier);
    let prov = rec
        .prov_row(querier, &output.vid())
        .ok_or_else(|| Error::ProvenanceLookup(format!("no prov row for {output} at {querier}")))?
        .clone();
    w.fetch(prov.storage_size())?;
    let (mut loc, mut rid) = (
        prov.rloc.expect("basic prov rows always reference a rule"),
        prov.rid.expect("basic prov rows always reference a rule"),
    );

    // Step 1: fetch the optimized chain.
    let mut chain = Vec::new();
    let event;
    loop {
        w.move_to(loc)?;
        let row = rec
            .rule_exec(loc, &rid)
            .ok_or_else(|| Error::ProvenanceLookup(format!("no ruleExec row {rid} at {loc}")))?
            .clone();
        w.fetch(row.size_bytes(true))?;
        // On the chain tail the first vid is the input event.
        let (event_vid, slow_vids) = if row.next.is_none() {
            let Some((first, rest)) = row.vids.split_first() else {
                return Err(Error::ProvenanceLookup(format!(
                    "chain tail {rid} lacks its event vid"
                )));
            };
            (Some(*first), rest)
        } else {
            (None, &row.vids[..])
        };
        let mut slow = Vec::with_capacity(slow_vids.len());
        for v in slow_vids {
            let t = ctx.resolver.tuple_by_vid(loc, v).ok_or_else(|| {
                Error::ProvenanceLookup(format!("slow tuple {v} missing at {loc}"))
            })?;
            w.fetch(t.storage_size())?;
            slow.push(t.clone());
        }
        chain.push(ChainLevel {
            rule: row.rule.clone(),
            slow,
        });
        match row.next {
            Some((nloc, nrid)) => {
                loc = nloc;
                rid = nrid;
            }
            None => {
                let ev_vid = event_vid.expect("set on the tail branch");
                let ev = ctx.resolver.tuple_by_vid(loc, &ev_vid).ok_or_else(|| {
                    Error::ProvenanceLookup(format!("event tuple {ev_vid} missing at {loc}"))
                })?;
                w.fetch(ev.storage_size())?;
                event = ev.clone();
                break;
            }
        }
    }
    w.finish()?;

    // Step 2: recompute the intermediate provenance nodes locally.
    w.latency += SimTime::from_nanos(ctx.cost.reexec_per_rule.as_nanos() * chain.len() as u64);
    let tree = reconstruct(ctx.delp, ctx.fns, &chain, &event)?;
    if tree.output() != output {
        return Err(Error::ProvenanceLookup(format!(
            "reconstruction produced {} instead of {output}",
            tree.output()
        )));
    }
    Ok(w.into_result(tree))
}

/// Storage interface the Advanced query walks: implemented by
/// [`AdvancedRecorder`] and by the cross-program recorder
/// ([`crate::crossprog::CrossProgramRecorder`]).
pub trait AdvancedStore {
    /// All `prov` rows for one output tuple and execution (`GET_PROV`).
    fn lookup_prov(&self, loc: NodeId, vid: &Vid, evid: &EvId) -> Vec<ProvRowAdv>;
    /// Resolve one rule-execution provenance node.
    fn lookup_rule_exec(
        &self,
        loc: NodeId,
        rid: &dpc_common::Rid,
    ) -> Option<crate::storage::RuleExecView>;
}

impl AdvancedStore for AdvancedRecorder {
    fn lookup_prov(&self, loc: NodeId, vid: &Vid, evid: &EvId) -> Vec<ProvRowAdv> {
        self.prov_rows(loc, vid, evid).cloned().collect()
    }
    fn lookup_rule_exec(
        &self,
        loc: NodeId,
        rid: &dpc_common::Rid,
    ) -> Option<crate::storage::RuleExecView> {
        self.rule_exec(loc, rid)
    }
}

/// Query an Advanced-maintained provenance tree for `output` derived by the
/// execution identified by `evid` (Section 5.6).
///
/// An execution may have stored several derivations (`GET_PROV` returns a
/// list; Appendix E); each is walked and reconstructed in turn, and the
/// one reproducing `output` is returned.
pub fn query_advanced<S: AdvancedStore>(
    ctx: &QueryCtx<'_>,
    rec: &S,
    output: &Tuple,
    evid: &EvId,
) -> Result<QueryResult> {
    let querier = output.loc()?;
    let mut w = Walker::new(ctx, querier);
    let provs: Vec<_> = rec.lookup_prov(querier, &output.vid(), evid);
    if provs.is_empty() {
        return Err(Error::ProvenanceLookup(format!(
            "no prov row for {output} / {evid} at {querier}"
        )));
    }
    let mut tree = None;
    for prov in &provs {
        w.fetch(prov.storage_size())?;
        let (chain, tail_loc) = walk_chain_advanced(ctx, rec, &mut w, prov.rloc, prov.rid)?;
        // The event peculiar to this execution, materialized at the input
        // node (the chain tail).
        let event = ctx
            .resolver
            .event_by_evid(tail_loc, evid)
            .ok_or_else(|| {
                Error::ProvenanceLookup(format!("event {evid} not materialized at {tail_loc}"))
            })?
            .clone();
        w.fetch(event.storage_size())?;
        // TRANSFORM_TO_D: rebuild the full tree for *this* event.
        w.latency += SimTime::from_nanos(ctx.cost.reexec_per_rule.as_nanos() * chain.len() as u64);
        let candidate = reconstruct(ctx.delp, ctx.fns, &chain, &event)?;
        if candidate.output() == output {
            tree = Some(candidate);
            break;
        }
        // A sibling derivation of the same execution (e.g. a rule that
        // joined several slow rows); keep trying.
        w.cur = querier;
    }
    w.finish()?;
    match tree {
        Some(tree) => Ok(w.into_result(tree)),
        None => Err(Error::ProvenanceLookup(format!(
            "none of the {} stored derivations reproduces {output}",
            provs.len()
        ))),
    }
}

/// The full `QUERY` of Appendix E (Figure 18): return *every* derivation
/// of `output` by the execution `evid` — the set `M`. Multiple
/// derivations arise when a rule joined several slow rows that produced
/// the same head tuple.
pub fn query_advanced_all<S: AdvancedStore>(
    ctx: &QueryCtx<'_>,
    rec: &S,
    output: &Tuple,
    evid: &EvId,
) -> Result<Vec<QueryResult>> {
    let querier = output.loc()?;
    let provs: Vec<_> = rec.lookup_prov(querier, &output.vid(), evid);
    if provs.is_empty() {
        return Err(Error::ProvenanceLookup(format!(
            "no prov row for {output} / {evid} at {querier}"
        )));
    }
    let mut results = Vec::new();
    for prov in &provs {
        let mut w = Walker::new(ctx, querier);
        w.fetch(prov.storage_size())?;
        let (chain, tail_loc) = walk_chain_advanced(ctx, rec, &mut w, prov.rloc, prov.rid)?;
        let event = ctx
            .resolver
            .event_by_evid(tail_loc, evid)
            .ok_or_else(|| {
                Error::ProvenanceLookup(format!("event {evid} not materialized at {tail_loc}"))
            })?
            .clone();
        w.fetch(event.storage_size())?;
        w.finish()?;
        w.latency += SimTime::from_nanos(ctx.cost.reexec_per_rule.as_nanos() * chain.len() as u64);
        let tree = reconstruct(ctx.delp, ctx.fns, &chain, &event)?;
        if tree.output() == output {
            results.push(w.into_result(tree));
        }
        // Non-matching reconstructions belong to sibling outputs of the
        // same compressed execution (e.g. other DHCP pool addresses).
    }
    if results.is_empty() {
        return Err(Error::ProvenanceLookup(format!(
            "none of the {} stored derivations reproduces {output}",
            provs.len()
        )));
    }
    Ok(results)
}

/// QR (Appendix E): recursive fetch along `(NLoc, NRID)`. Returns the
/// chain root-first plus the tail node (where the input event entered).
fn walk_chain_advanced<S: AdvancedStore>(
    ctx: &QueryCtx<'_>,
    rec: &S,
    w: &mut Walker<'_>,
    mut loc: NodeId,
    mut rid: dpc_common::Rid,
) -> Result<(Vec<ChainLevel>, NodeId)> {
    let mut chain = Vec::new();
    loop {
        w.move_to(loc)?;
        let view = rec
            .lookup_rule_exec(loc, &rid)
            .ok_or_else(|| Error::ProvenanceLookup(format!("no ruleExec node {rid} at {loc}")))?;
        w.fetch(view_size(&view))?;
        let mut slow = Vec::with_capacity(view.vids.len());
        for v in &view.vids {
            let t = ctx.resolver.tuple_by_vid(loc, v).ok_or_else(|| {
                Error::ProvenanceLookup(format!("slow tuple {v} missing at {loc}"))
            })?;
            w.fetch(t.storage_size())?;
            slow.push(t.clone());
        }
        chain.push(ChainLevel {
            rule: view.rule.clone(),
            slow,
        });
        match view.next {
            Some((nloc, nrid)) => {
                loc = nloc;
                rid = nrid;
            }
            None => return Ok((chain, loc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::GroundTruthRecorder;
    use dpc_common::Value;
    use dpc_engine::TeeRecorder;
    use dpc_ndlog::{equivalence_keys, programs};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    fn setup<R: ProvRecorder>(k: usize, rec: R, payloads: &[&str]) -> Runtime<R> {
        let net = topo::line(k, Link::STUB_STUB);
        let mut rt = Runtime::new(programs::packet_forwarding(), net, rec);
        for i in 0..k as u32 - 1 {
            rt.install(route(i, k as u32 - 1, i + 1)).unwrap();
        }
        for p in payloads {
            rt.inject(packet(0, 0, k as u32 - 1, p)).unwrap();
        }
        rt.run().unwrap();
        rt
    }

    #[test]
    fn exspan_query_returns_ground_truth() {
        let rec = TeeRecorder::new(ExspanRecorder::new(4), GroundTruthRecorder::new());
        let rt = setup(4, rec, &["data"]);
        let ctx = QueryCtx::from_runtime(&rt);
        let out = rt.outputs()[0].clone();
        let res = query_exspan(&ctx, &rt.recorder().primary, &out.tuple).unwrap();
        let truth = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&res.tree, truth);
        assert!(res.latency > SimTime::ZERO);
        assert!(res.fetches > 0);
    }

    #[test]
    fn basic_query_returns_ground_truth() {
        let rec = TeeRecorder::new(BasicRecorder::new(4), GroundTruthRecorder::new());
        let rt = setup(4, rec, &["data"]);
        let ctx = QueryCtx::from_runtime(&rt);
        let out = rt.outputs()[0].clone();
        let res = query_basic(&ctx, &rt.recorder().primary, &out.tuple).unwrap();
        let truth = rt
            .recorder()
            .shadow
            .tree_for(&out.tuple, &out.evid)
            .unwrap();
        assert_eq!(&res.tree, truth);
    }

    #[test]
    fn advanced_query_returns_ground_truth_for_both_class_members() {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rec = TeeRecorder::new(AdvancedRecorder::new(4, keys), GroundTruthRecorder::new());
        let rt = setup(4, rec, &["data", "url"]);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let res = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
            let truth = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&res.tree, truth, "output {}", out.tuple);
        }
    }

    #[test]
    fn advanced_query_works_with_inter_class_layout() {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rec = TeeRecorder::new(
            AdvancedRecorder::with_inter_class(4, keys),
            GroundTruthRecorder::new(),
        );
        let rt = setup(4, rec, &["data", "url"]);
        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let res = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
            let truth = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&res.tree, truth);
        }
    }

    #[test]
    fn basic_and_advanced_undercut_exspan_latency() {
        // Large payload so ExSPAN's intermediate-tuple fetches dominate.
        let payload = "x".repeat(500);
        let payloads = [payload.as_str()];

        let rt_e = setup(6, ExspanRecorder::new(6), &payloads);
        let rt_b = setup(6, BasicRecorder::new(6), &payloads);
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rt_a = setup(6, AdvancedRecorder::new(6, keys), &payloads);

        let out_e = rt_e.outputs()[0].clone();
        let le = query_exspan(
            &QueryCtx::from_runtime(&rt_e),
            rt_e.recorder(),
            &out_e.tuple,
        )
        .unwrap()
        .latency;
        let out_b = rt_b.outputs()[0].clone();
        let lb = query_basic(
            &QueryCtx::from_runtime(&rt_b),
            rt_b.recorder(),
            &out_b.tuple,
        )
        .unwrap()
        .latency;
        let out_a = rt_a.outputs()[0].clone();
        let la = query_advanced(
            &QueryCtx::from_runtime(&rt_a),
            rt_a.recorder(),
            &out_a.tuple,
            &out_a.evid,
        )
        .unwrap()
        .latency;

        assert!(lb < le, "basic {lb} should undercut exspan {le}");
        assert!(la < le, "advanced {la} should undercut exspan {le}");
    }

    #[test]
    fn query_all_returns_every_derivation() {
        // A program where one event derives the same output through two
        // different slow rows: out(@X) ignores the slow row's payload.
        let src = r#"
            r1 mid(@X, K) :- e(@X, K), s(@X, K, K).
            r2 out(@X, K) :- mid(@X, K), t(@X, K).
        "#;
        let delp = dpc_ndlog::Delp::new(dpc_ndlog::parse_program(src).unwrap()).unwrap();
        let keys = dpc_ndlog::equivalence_keys(&delp);
        let rec = TeeRecorder::new(
            AdvancedRecorder::new(1, keys),
            crate::GroundTruthRecorder::new(),
        );
        let mut rt = dpc_engine::Runtime::new(delp, dpc_netsim::Network::with_nodes(1), rec);
        // Two distinct `t` rows joining the same mid tuple -> two
        // derivations of the same `out` tuple.
        let t1 = Tuple::new("t", vec![Value::Addr(n(0)), Value::Int(1)]);
        rt.install(Tuple::new(
            "s",
            vec![Value::Addr(n(0)), Value::Int(1), Value::Int(1)],
        ))
        .unwrap();
        rt.install(t1).unwrap();
        rt.inject(Tuple::new("e", vec![Value::Addr(n(0)), Value::Int(1)]))
            .unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        let out = rt.outputs()[0].clone();
        let ctx = QueryCtx::from_runtime(&rt);
        let all =
            super::query_advanced_all(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].tree.output(), &out.tuple);
    }

    #[test]
    fn query_all_returns_multiple_trees_for_multi_derivations() {
        // Same head from two different slow rows: head omits the joined
        // attribute that differs.
        let src = r#"
            r1 out(@X, K) :- e(@X, K), s(@X, V).
        "#;
        let delp = dpc_ndlog::Delp::new(dpc_ndlog::parse_program(src).unwrap()).unwrap();
        let keys = dpc_ndlog::equivalence_keys(&delp);
        let mut rt = dpc_engine::Runtime::new(
            delp,
            dpc_netsim::Network::with_nodes(1),
            AdvancedRecorder::new(1, keys),
        );
        rt.install(Tuple::new("s", vec![Value::Addr(n(0)), Value::Int(7)]))
            .unwrap();
        rt.install(Tuple::new("s", vec![Value::Addr(n(0)), Value::Int(8)]))
            .unwrap();
        rt.inject(Tuple::new("e", vec![Value::Addr(n(0)), Value::Int(1)]))
            .unwrap();
        rt.run().unwrap();
        // The same out tuple derives twice (once per s row).
        assert_eq!(rt.outputs().len(), 2);
        assert_eq!(rt.outputs()[0].tuple, rt.outputs()[1].tuple);
        let out = rt.outputs()[0].clone();
        let ctx = QueryCtx::from_runtime(&rt);
        let all = super::query_advanced_all(&ctx, rt.recorder(), &out.tuple, &out.evid).unwrap();
        assert_eq!(all.len(), 2, "both derivations are returned (the set M)");
        assert_ne!(all[0].tree, all[1].tree);
        assert!(all.iter().all(|r| r.tree.output() == &out.tuple));
        // They differ exactly in the slow tuple used.
        let slows: std::collections::BTreeSet<_> =
            all.iter().map(|r| r.tree.slow()[0].clone()).collect();
        assert_eq!(slows.len(), 2);
    }

    #[test]
    fn query_for_unknown_tuple_errors() {
        let rt = setup(3, ExspanRecorder::new(3), &["data"]);
        let ctx = QueryCtx::from_runtime(&rt);
        let bogus = Tuple::new("recv", vec![Value::Addr(n(2)), Value::str("nope")]);
        assert!(query_exspan(&ctx, rt.recorder(), &bogus).is_err());
    }

    #[test]
    fn advanced_query_requires_matching_evid() {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rt = setup(3, AdvancedRecorder::new(3, keys), &["data"]);
        let ctx = QueryCtx::from_runtime(&rt);
        let out = rt.outputs()[0].clone();
        let wrong = EvId::of_bytes(b"other");
        assert!(query_advanced(&ctx, rt.recorder(), &out.tuple, &wrong).is_err());
    }

    #[test]
    fn querying_base_tuple_via_exspan_errors() {
        let rt = setup(3, ExspanRecorder::new(3), &["data"]);
        let ctx = QueryCtx::from_runtime(&rt);
        let err = query_exspan(&ctx, rt.recorder(), &route(0, 2, 1)).unwrap_err();
        assert!(err.to_string().contains("base tuple"), "{err}");
    }
}
