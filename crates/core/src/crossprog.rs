//! Cross-program provenance compression — the paper's stated future work
//! (Section 8): "we plan to explore the possibility of compressing
//! provenance trees *across* programs that share execution rules."
//!
//! Most deployments run several protocols concurrently; when two DELPs
//! contain the same rule (say, the forwarding rule `r1`), their rule
//! executions over the same slow-changing state are identical and need
//! only one concrete copy. [`SharedNodeStore`] is a Section 5.4-style
//! `ruleExecNode`/`ruleExecLink` store shared by several
//! [`CrossProgramRecorder`]s — one per program — so concrete nodes dedupe
//! across programs while each program keeps its own equivalence-class
//! state (`htequi`, `hmap`) and `prov` table.
//!
//! Correctness requirement: rule labels must be globally unique across
//! the program set *except* for genuinely shared rules (same head, same
//! body) — the concrete-node id hashes the label and the joined slow
//! tuples, so a label collision between different rules would alias their
//! provenance.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dpc_common::{EqKeyHash, EvId, NodeId, Rid, Tuple, Vid};
use dpc_engine::{ProvMeta, ProvRecorder, Stage};
use dpc_ndlog::{EquivKeys, Rule};
use std::sync::Mutex;

use crate::advanced::{advanced_rid, node_rid, ADVANCED_META_BYTES};
use crate::query::AdvancedStore;
use crate::storage::{InterClassTables, ProvRowAdv, ProvTableAdv, RuleExecRow, RuleExecView};

/// The rule-execution store shared across programs: per-node
/// `ruleExecNode`/`ruleExecLink` tables behind a lock (the simulation is
/// single-threaded; the lock makes sharing explicit and keeps the handle
/// `Send`).
#[derive(Debug, Clone)]
pub struct SharedNodeStore {
    inner: Arc<Mutex<Vec<InterClassTables>>>,
}

impl SharedNodeStore {
    /// A store for a network of `n` nodes.
    pub fn new(n: usize) -> SharedNodeStore {
        SharedNodeStore {
            inner: Arc::new(Mutex::new(
                (0..n).map(|_| InterClassTables::default()).collect(),
            )),
        }
    }

    /// Serialized size of the shared tables at `node`. Shared across all
    /// participating programs — count it once, not per program.
    pub fn storage_at(&self, node: NodeId) -> usize {
        self.inner.lock().unwrap()[node.index()].bytes()
    }

    /// Total shared storage across all nodes.
    pub fn total_storage(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(InterClassTables::bytes)
            .sum()
    }

    /// Concrete node rows at `node`.
    pub fn node_rows(&self, node: NodeId) -> usize {
        self.inner.lock().unwrap()[node.index()].node_rows()
    }

    /// Link rows at `node`.
    pub fn link_rows(&self, node: NodeId) -> usize {
        self.inner.lock().unwrap()[node.index()].link_rows()
    }

    fn insert(
        &self,
        node: NodeId,
        nrid: Rid,
        row: RuleExecRow,
        chain_rid: Rid,
        next: Option<(NodeId, Rid)>,
    ) {
        self.inner.lock().unwrap()[node.index()].insert(nrid, row, chain_rid, next);
    }

    fn get(&self, node: NodeId, chain_rid: &Rid) -> Option<RuleExecView> {
        self.inner.lock().unwrap().get(node.index())?.get(chain_rid)
    }
}

/// Per-node, per-program state.
#[derive(Debug)]
struct Node {
    htequi: HashSet<EqKeyHash>,
    hmap: HashMap<EqKeyHash, (EvId, Vec<(NodeId, Rid)>)>,
    prov: ProvTableAdv,
}

/// An Advanced-style recorder whose concrete rule-execution nodes live in
/// a [`SharedNodeStore`] shared with other programs.
#[derive(Debug)]
pub struct CrossProgramRecorder {
    keys: EquivKeys,
    store: SharedNodeStore,
    nodes: Vec<Node>,
    hmap_misses: u64,
}

impl CrossProgramRecorder {
    /// Create a recorder for one program over `store`'s network.
    pub fn new(keys: EquivKeys, store: SharedNodeStore) -> CrossProgramRecorder {
        let n = store.inner.lock().unwrap().len();
        CrossProgramRecorder {
            keys,
            store,
            nodes: (0..n)
                .map(|_| Node {
                    htequi: HashSet::new(),
                    hmap: HashMap::new(),
                    prov: ProvTableAdv::default(),
                })
                .collect(),
            hmap_misses: 0,
        }
    }

    /// The shared store handle.
    pub fn store(&self) -> &SharedNodeStore {
        &self.store
    }

    /// `hmap` misses (see `AdvancedRecorder::hmap_misses`).
    pub fn hmap_misses(&self) -> u64 {
        self.hmap_misses
    }

    /// This program's `prov`-table bytes at `node` (excludes the shared
    /// store, which is counted once via [`SharedNodeStore::storage_at`]).
    pub fn prov_storage_at(&self, node: NodeId) -> usize {
        self.nodes[node.index()].prov.bytes()
    }
}

impl ProvRecorder for CrossProgramRecorder {
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta) {
        let kh = self
            .keys
            .hash(event)
            .expect("runtime validated the input event relation");
        let fresh = self.nodes[node.index()].htequi.insert(kh);
        meta.exist_flag = !fresh;
        meta.eq_hash = Some(kh);
        meta.wire_bytes = ADVANCED_META_BYTES;
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        _event: &Tuple,
        slow: &[Tuple],
        _head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        let mut out = meta.clone();
        out.stage = Stage::Derived;
        out.wire_bytes = ADVANCED_META_BYTES;
        if meta.exist_flag {
            return out;
        }
        let slow_vids: Vec<Vid> = slow.iter().map(Tuple::vid).collect();
        let rid = advanced_rid(&rule.label, &slow_vids, meta.prev);
        let nrid = node_rid(&rule.label, &slow_vids);
        self.store.insert(
            node,
            nrid,
            RuleExecRow {
                rloc: node,
                rid,
                rule: rule.label.clone(),
                vids: slow_vids,
                next: None,
            },
            rid,
            meta.prev,
        );
        out.prev = Some((node, rid));
        out
    }

    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta) {
        let kh = meta.eq_hash.expect("cross-program meta carries eq_hash");
        let evid = meta.evid.expect("every execution carries its evid");
        let state = &mut self.nodes[node.index()];
        let references: Vec<(NodeId, Rid)> = if meta.exist_flag {
            match state.hmap.get(&kh) {
                Some((_, rs)) => rs.clone(),
                None => {
                    self.hmap_misses += 1;
                    return;
                }
            }
        } else {
            let r = meta
                .prev
                .expect("uncompressed executions carry their chain head");
            match state.hmap.get_mut(&kh) {
                Some((e, refs)) if *e == evid => {
                    if !refs.contains(&r) {
                        refs.push(r);
                    }
                }
                _ => {
                    state.hmap.insert(kh, (evid, vec![r]));
                }
            }
            vec![r]
        };
        for (rloc, rid) in references {
            state.prov.insert(ProvRowAdv {
                loc: node,
                vid: output.vid(),
                rloc,
                rid,
                evid,
            });
        }
    }

    fn on_sig(&mut self, node: NodeId) {
        self.nodes[node.index()].htequi.clear();
    }

    fn storage_at(&self, node: NodeId) -> usize {
        // Per-program prov rows plus this node's share of the store. When
        // reporting combined storage across programs, use
        // `prov_storage_at` + one `SharedNodeStore::storage_at` instead,
        // so the shared tables are not double-counted.
        self.nodes[node.index()].prov.bytes() + self.store.storage_at(node)
    }
}

impl AdvancedStore for CrossProgramRecorder {
    fn lookup_prov(&self, loc: NodeId, vid: &Vid, evid: &EvId) -> Vec<ProvRowAdv> {
        self.nodes
            .get(loc.index())
            .map(|n| n.prov.get_all(vid, evid).cloned().collect())
            .unwrap_or_default()
    }

    fn lookup_rule_exec(&self, loc: NodeId, rid: &Rid) -> Option<RuleExecView> {
        self.store.get(loc, rid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advanced::AdvancedRecorder;
    use crate::query::{query_advanced, QueryCtx};
    use crate::reference::GroundTruthRecorder;
    use dpc_apps::forwarding;
    use dpc_engine::{Runtime, TeeRecorder};
    use dpc_ndlog::{equivalence_keys, parse_program, Delp};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A second program sharing the forwarding rule `r1` but logging
    /// instead of receiving.
    const MIRROR: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r9 logged(@L, S, D, DT) :- packet(@L, S, D, DT), D == L.
    "#;

    fn mirror() -> Delp {
        Delp::new(parse_program(MIRROR).unwrap()).unwrap()
    }

    fn setup<R: ProvRecorder>(delp: Delp, rec: R) -> Runtime<R> {
        let net = topo::line(4, Link::STUB_STUB);
        let mut rt = Runtime::new(delp, net, rec);
        for i in 0..3u32 {
            rt.install(forwarding::route(n(i), n(3), n(i + 1))).unwrap();
        }
        rt
    }

    #[test]
    fn shared_rules_dedupe_across_programs() {
        let store = SharedNodeStore::new(4);
        let keys_a = equivalence_keys(&dpc_ndlog::programs::packet_forwarding());
        let keys_b = equivalence_keys(&mirror());
        let mut rt_a = setup(
            dpc_ndlog::programs::packet_forwarding(),
            CrossProgramRecorder::new(keys_a, store.clone()),
        );
        let mut rt_b = setup(mirror(), CrossProgramRecorder::new(keys_b, store.clone()));

        rt_a.inject(forwarding::packet(n(0), n(0), n(3), "a"))
            .unwrap();
        rt_a.run().unwrap();
        let after_a = store.total_storage();
        let nodes_after_a: usize = (0..4).map(|i| store.node_rows(n(i))).sum();

        rt_b.inject(forwarding::packet(n(0), n(0), n(3), "b"))
            .unwrap();
        rt_b.run().unwrap();
        let after_b = store.total_storage();
        let nodes_after_b: usize = (0..4).map(|i| store.node_rows(n(i))).sum();

        // Program B added its chain links, but the three r1 concrete nodes
        // were already there: only r9's node is new.
        assert_eq!(nodes_after_b, nodes_after_a + 1);
        // The growth is link rows + one node row, well under a full tree.
        assert!(
            after_b - after_a < after_a,
            "store grew {after_a} -> {after_b}"
        );
    }

    #[test]
    fn cross_program_outputs_remain_queryable() {
        let store = SharedNodeStore::new(4);
        let keys_a = equivalence_keys(&dpc_ndlog::programs::packet_forwarding());
        let keys_b = equivalence_keys(&mirror());
        let mut rt_a = setup(
            dpc_ndlog::programs::packet_forwarding(),
            TeeRecorder::new(
                CrossProgramRecorder::new(keys_a, store.clone()),
                GroundTruthRecorder::new(),
            ),
        );
        let mut rt_b = setup(
            mirror(),
            TeeRecorder::new(
                CrossProgramRecorder::new(keys_b, store),
                GroundTruthRecorder::new(),
            ),
        );
        rt_a.inject(forwarding::packet(n(0), n(0), n(3), "a"))
            .unwrap();
        rt_a.run().unwrap();
        rt_b.inject(forwarding::packet(n(1), n(1), n(3), "b"))
            .unwrap();
        rt_b.run().unwrap();

        for rt in [&rt_a, &rt_b] {
            let ctx = QueryCtx::from_runtime(rt);
            for out in rt.outputs() {
                let got =
                    query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
                let want = rt
                    .recorder()
                    .shadow
                    .tree_for(&out.tuple, &out.evid)
                    .unwrap();
                assert_eq!(&got.tree, want);
            }
        }
    }

    #[test]
    fn combined_storage_beats_independent_recorders() {
        // Two programs sharing r1: cross-program store vs two independent
        // inter-class recorders.
        let keys_a = equivalence_keys(&dpc_ndlog::programs::packet_forwarding());
        let keys_b = equivalence_keys(&mirror());

        // Independent.
        let mut ind_a = setup(
            dpc_ndlog::programs::packet_forwarding(),
            AdvancedRecorder::with_inter_class(4, keys_a.clone()),
        );
        let mut ind_b = setup(
            mirror(),
            AdvancedRecorder::with_inter_class(4, keys_b.clone()),
        );
        // Shared.
        let store = SharedNodeStore::new(4);
        let mut sh_a = setup(
            dpc_ndlog::programs::packet_forwarding(),
            CrossProgramRecorder::new(keys_a, store.clone()),
        );
        let mut sh_b = setup(mirror(), CrossProgramRecorder::new(keys_b, store.clone()));

        for s in 0..3u32 {
            let p = forwarding::packet(n(s), n(s), n(3), "x");
            ind_a.inject(p.clone()).unwrap();
            ind_a.run().unwrap();
            ind_b.inject(p.clone()).unwrap();
            ind_b.run().unwrap();
            sh_a.inject(p.clone()).unwrap();
            sh_a.run().unwrap();
            sh_b.inject(p).unwrap();
            sh_b.run().unwrap();
        }

        let independent: usize = (0..4)
            .map(|i| ind_a.recorder().storage_at(n(i)) + ind_b.recorder().storage_at(n(i)))
            .sum();
        let shared: usize = store.total_storage()
            + (0..4)
                .map(|i| {
                    sh_a.recorder().prov_storage_at(n(i)) + sh_b.recorder().prov_storage_at(n(i))
                })
                .sum::<usize>();
        assert!(
            shared < independent,
            "shared {shared} should undercut independent {independent}"
        );
    }

    #[test]
    fn store_handles_share_state() {
        let store = SharedNodeStore::new(2);
        let handle = store.clone();
        store.insert(
            n(0),
            Rid::of_bytes(b"node"),
            RuleExecRow {
                rloc: n(0),
                rid: Rid::of_bytes(b"chain"),
                rule: "r1".into(),
                vids: vec![],
                next: None,
            },
            Rid::of_bytes(b"chain"),
            None,
        );
        assert_eq!(handle.node_rows(n(0)), 1);
        assert!(handle.get(n(0), &Rid::of_bytes(b"chain")).is_some());
        assert!(handle.get(n(1), &Rid::of_bytes(b"chain")).is_none());
        assert_eq!(store.total_storage(), handle.total_storage());
    }
}
