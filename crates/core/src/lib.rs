#![warn(missing_docs)]

//! Distributed provenance compression — the paper's core contribution.
//!
//! Three provenance maintenance schemes plug into the `dpc-engine` runtime
//! through its `ProvRecorder` hooks:
//!
//! * [`ExspanRecorder`] — the uncompressed ExSPAN baseline (Section 2.2):
//!   a `prov` row for every tuple and a `ruleExec` row for every rule
//!   firing, as in Table 1.
//! * [`BasicRecorder`] — the basic storage optimization (Section 4):
//!   intermediate event tuples are dropped from the provenance tables and
//!   the `ruleExec` rows are chained with `NLoc`/`NRID` columns (Table 2);
//!   queries re-derive the intermediate tuples bottom-up.
//! * [`AdvancedRecorder`] — equivalence-based compression (Section 5):
//!   input events are grouped into equivalence classes by their
//!   equivalence-key valuation; only the first execution of a class
//!   materializes the shared tree, subsequent executions store a single
//!   small `prov` row associating their output tuple (and `evid`) with the
//!   shared tree (Table 3). Optionally, rule-execution *nodes* are shared
//!   across classes via the `ruleExecNode`/`ruleExecLink` split of
//!   Section 5.4.
//!
//! [`GroundTruthRecorder`] captures full provenance trees directly from the
//! execution — the oracle against which the correctness theorems
//! (Theorem 3, Theorem 5) are tested.
//!
//! The [`query`] module implements the distributed recursive querying of
//! Section 5.6 over the simulated network, including the latency cost
//! model used for Figure 12, and [`reconstruct`] rebuilds full provenance
//! trees (`TRANSFORM_TO_D`, Appendix E) by re-executing rules bottom-up.

pub mod advanced;
pub mod basic;
pub mod crossprog;
pub mod distquery;
pub mod dump;
pub mod exspan;
pub mod query;
pub mod reconstruct;
pub mod reference;
pub mod replay;
pub mod scheme;
pub mod selfhost;
pub mod storage;
pub mod tree;

pub use advanced::AdvancedRecorder;
pub use basic::BasicRecorder;
pub use crossprog::{CrossProgramRecorder, SharedNodeStore};
pub use distquery::{
    simulate_query_advanced, simulate_query_basic, simulate_query_exspan, QueryTrace,
    SimulatedQuery,
};
pub use exspan::ExspanRecorder;
pub use query::{
    query_advanced, query_advanced_all, query_basic, query_exspan, AdvancedStore, QueryCostModel,
    QueryCtx, QueryResult, TupleResolver,
};
pub use reference::GroundTruthRecorder;
pub use replay::{ReplayLog, ReplayOp, ReplayableRuntime};
pub use scheme::Scheme;
pub use selfhost::{
    extend_input_event, extend_input_event_advanced, register_advanced_fns, register_provenance_fns,
};
pub use storage::{ProvRow, ProvRowAdv, RuleExecRow, RuleExecView};
pub use tree::ProvTree;
