//! Provenance table rows and per-node tables.
//!
//! The storage model follows ExSPAN's distributed relational layout: every
//! node holds a `prov` table and a `ruleExec` table; the columns depend on
//! the maintenance scheme (Tables 1, 2, 3 of the paper). Each table tracks
//! the byte size of its binary serialization incrementally, so storage
//! measurements are O(1) at snapshot time.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use dpc_common::{EvId, NodeId, Rid, StorageSize, Vid};

/// A `prov` row in the ExSPAN / Basic layout:
/// `(Loc, VID, RID, RLoc)` with NULLable rule reference (Table 1, Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvRow {
    /// Node where the tuple lives.
    pub loc: NodeId,
    /// Content hash of the tuple.
    pub vid: Vid,
    /// Rule execution that derived it (`None` for base tuples).
    pub rid: Option<Rid>,
    /// Node where that rule executed.
    pub rloc: Option<NodeId>,
}

impl StorageSize for ProvRow {
    fn storage_size(&self) -> usize {
        self.loc.storage_size()
            + self.vid.storage_size()
            + self.rid.storage_size()
            + self.rloc.storage_size()
    }
}

/// A `prov` row in the Advanced layout:
/// `(Loc, VID, RLoc, RID, EVID)` (Table 3) — the association of one output
/// tuple (and the event peculiar to its execution) with the shared tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvRowAdv {
    /// Node where the output tuple lives.
    pub loc: NodeId,
    /// Content hash of the output tuple.
    pub vid: Vid,
    /// Location of the shared tree's root-closest rule execution.
    pub rloc: NodeId,
    /// Id of that rule execution.
    pub rid: Rid,
    /// Id of the input event peculiar to this execution.
    pub evid: EvId,
}

impl StorageSize for ProvRowAdv {
    fn storage_size(&self) -> usize {
        self.loc.storage_size()
            + self.vid.storage_size()
            + self.rloc.storage_size()
            + self.rid.storage_size()
            + self.evid.storage_size()
    }
}

/// A `ruleExec` row. ExSPAN uses `(RLoc, RID, R, VIDS)`; Basic and
/// Advanced add the `(NLoc, NRID)` chain columns (Table 2, Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleExecRow {
    /// Node where the rule executed.
    pub rloc: NodeId,
    /// Rule-execution id.
    pub rid: Rid,
    /// Rule label.
    pub rule: String,
    /// Child tuple vids. ExSPAN: event vid first, then slow vids.
    /// Basic: slow vids (plus the input event vid on the chain tail).
    /// Advanced: slow vids only.
    pub vids: Vec<Vid>,
    /// `(NLoc, NRID)`: the next provenance node toward the input event;
    /// `None` on the chain tail (and unused/absent in ExSPAN).
    pub next: Option<(NodeId, Rid)>,
}

impl RuleExecRow {
    /// Serialized size with or without the `NLoc`/`NRID` columns.
    pub fn size_bytes(&self, with_links: bool) -> usize {
        let base = self.rloc.storage_size()
            + self.rid.storage_size()
            + self.rule.storage_size()
            + 4
            + self.vids.len() * 20;
        if with_links {
            base + self.next.storage_size()
        } else {
            base
        }
    }
}

/// A resolved view of one rule-execution provenance node, uniform across
/// the plain `ruleExec` layout and the Section 5.4 node/link split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleExecView {
    /// Rule label.
    pub rule: String,
    /// Child tuple vids (scheme-dependent, see [`RuleExecRow::vids`]).
    pub vids: Vec<Vid>,
    /// Next chain reference toward the input event.
    pub next: Option<(NodeId, Rid)>,
}

/// One node's `prov` table (ExSPAN / Basic layout), with incremental size
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct ProvTable {
    rows: HashMap<Vid, ProvRow>,
    bytes: usize,
}

impl ProvTable {
    /// Insert a row if its `vid` is new; returns whether it was inserted.
    pub fn insert(&mut self, row: ProvRow) -> bool {
        match self.rows.entry(row.vid) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                self.bytes += row.storage_size();
                v.insert(row);
                true
            }
        }
    }

    /// Look up by tuple vid.
    pub fn get(&self, vid: &Vid) -> Option<&ProvRow> {
        self.rows.get(vid)
    }

    /// Iterate all rows (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &ProvRow> {
        self.rows.values()
    }

    /// Serialized size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// One node's `prov` table in the Advanced layout, keyed by
/// `(vid, evid, rid)` — one row per output tuple per execution per
/// derivation (an execution can have several derivations when a rule
/// joined several slow rows; QUERY returns the whole set, Appendix E).
#[derive(Debug, Clone, Default)]
pub struct ProvTableAdv {
    rows: HashMap<(Vid, EvId, Rid), ProvRowAdv>,
    bytes: usize,
}

impl ProvTableAdv {
    /// Insert a row if `(vid, evid, rid)` is new.
    pub fn insert(&mut self, row: ProvRowAdv) -> bool {
        match self.rows.entry((row.vid, row.evid, row.rid)) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                self.bytes += row.storage_size();
                v.insert(row);
                true
            }
        }
    }

    /// All rows for an output tuple vid and execution evid — the
    /// `GET_PROV` lookup of Appendix E.
    pub fn get_all<'a>(
        &'a self,
        vid: &'a Vid,
        evid: &'a EvId,
    ) -> impl Iterator<Item = &'a ProvRowAdv> {
        self.rows
            .iter()
            .filter(move |((v, e, _), _)| v == vid && e == evid)
            .map(|(_, r)| r)
    }

    /// The unique row for `(vid, evid)` when the execution had a single
    /// derivation (the common case).
    pub fn get<'a>(&'a self, vid: &'a Vid, evid: &'a EvId) -> Option<&'a ProvRowAdv> {
        let mut it = self.get_all(vid, evid);
        let first = it.next();
        if it.next().is_some() {
            None // ambiguous: callers must use get_all
        } else {
            first
        }
    }

    /// Iterate all rows (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &ProvRowAdv> {
        self.rows.values()
    }

    /// All rows for an output tuple vid (any execution).
    pub fn rows_for_vid<'a>(&'a self, vid: &'a Vid) -> impl Iterator<Item = &'a ProvRowAdv> {
        self.rows
            .iter()
            .filter(move |((v, _, _), _)| v == vid)
            .map(|(_, r)| r)
    }

    /// Serialized size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// One node's `ruleExec` table.
#[derive(Debug, Clone)]
pub struct RuleExecTable {
    rows: HashMap<Rid, RuleExecRow>,
    bytes: usize,
    with_links: bool,
}

impl RuleExecTable {
    /// Create a table; `with_links` selects whether rows carry (and are
    /// charged for) the `NLoc`/`NRID` columns.
    pub fn new(with_links: bool) -> RuleExecTable {
        RuleExecTable {
            rows: HashMap::new(),
            bytes: 0,
            with_links,
        }
    }

    /// Insert a row if its `rid` is new.
    pub fn insert(&mut self, row: RuleExecRow) -> bool {
        match self.rows.entry(row.rid) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                self.bytes += row.size_bytes(self.with_links);
                v.insert(row);
                true
            }
        }
    }

    /// Look up by rule-execution id.
    pub fn get(&self, rid: &Rid) -> Option<&RuleExecRow> {
        self.rows.get(rid)
    }

    /// Iterate all rows (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &RuleExecRow> {
        self.rows.values()
    }

    /// Serialized size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The Section 5.4 split tables: concrete rule-execution nodes shared
/// across provenance trees (`ruleExecNode`) plus per-tree parent-child
/// links (`ruleExecLink`).
#[derive(Debug, Clone, Default)]
pub struct InterClassTables {
    /// Concrete nodes keyed by the chain-independent node id.
    nodes: HashMap<Rid, RuleExecRow>,
    node_bytes: usize,
    /// Links keyed by the chain-dependent rid: `(node_rid, next)`.
    links: HashMap<Rid, (Rid, Option<(NodeId, Rid)>)>,
    link_bytes: usize,
}

impl InterClassTables {
    /// Insert the concrete node row (idempotent; this is where cross-class
    /// sharing happens) and the per-tree link row. Returns the node-row
    /// bytes *saved* by sharing: the row's serialized size when an equal
    /// concrete node already existed, 0 when this insert materialized it.
    pub fn insert(
        &mut self,
        node_rid: Rid,
        node_row: RuleExecRow,
        chain_rid: Rid,
        next: Option<(NodeId, Rid)>,
    ) -> usize {
        let saved = match self.nodes.entry(node_rid) {
            Entry::Vacant(v) => {
                // Node row: (RLoc, RID, R, VIDS) — never carries links.
                self.node_bytes += node_row.size_bytes(false);
                v.insert(node_row);
                0
            }
            Entry::Occupied(_) => node_row.size_bytes(false),
        };
        if let Entry::Vacant(v) = self.links.entry(chain_rid) {
            // Link row: (RLoc, RID, NLoc, NRID) as in Table 4 — in the
            // paper's layout the link table is scoped per tree, so the
            // stored RID is the concrete node id and tree identity is
            // implicit. Our in-memory key is a chain-dependent rid (which
            // encodes the tree suffix); it maps 1:1 onto the per-tree rows,
            // so we charge the Table 4 row width.
            self.link_bytes += 4 + 20 + next.storage_size();
            v.insert((node_rid, next));
        }
        saved
    }

    /// Resolve a chain rid to a full view (join of link and node rows).
    pub fn get(&self, chain_rid: &Rid) -> Option<RuleExecView> {
        let (node_rid, next) = self.links.get(chain_rid)?;
        let node = self.nodes.get(node_rid)?;
        Some(RuleExecView {
            rule: node.rule.clone(),
            vids: node.vids.clone(),
            next: *next,
        })
    }

    /// Serialized size of both tables.
    pub fn bytes(&self) -> usize {
        self.node_bytes + self.link_bytes
    }

    /// Number of concrete node rows.
    pub fn node_rows(&self) -> usize {
        self.nodes.len()
    }

    /// Number of link rows.
    pub fn link_rows(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::{Tuple, Value};

    fn vid(n: u8) -> Vid {
        Vid::of_bytes(&[n])
    }
    fn rid(n: u8) -> Rid {
        Rid::of_bytes(&[n])
    }
    fn evid(n: u8) -> EvId {
        EvId::of_bytes(&[n])
    }

    #[test]
    fn prov_row_sizes() {
        let full = ProvRow {
            loc: NodeId(1),
            vid: vid(1),
            rid: Some(rid(1)),
            rloc: Some(NodeId(2)),
        };
        // 4 + 20 + (1+20) + (1+4)
        assert_eq!(full.storage_size(), 50);
        let base = ProvRow {
            loc: NodeId(1),
            vid: vid(1),
            rid: None,
            rloc: None,
        };
        assert_eq!(base.storage_size(), 26);
        let adv = ProvRowAdv {
            loc: NodeId(1),
            vid: vid(1),
            rloc: NodeId(2),
            rid: rid(1),
            evid: evid(1),
        };
        // 4 + 20 + 4 + 20 + 20
        assert_eq!(adv.storage_size(), 68);
    }

    #[test]
    fn rule_exec_row_sizes() {
        let row = RuleExecRow {
            rloc: NodeId(1),
            rid: rid(1),
            rule: "r1".into(),
            vids: vec![vid(1), vid(2)],
            next: Some((NodeId(2), rid(2))),
        };
        // base: 4 + 20 + (4+2) + 4 + 40 = 74
        assert_eq!(row.size_bytes(false), 74);
        // with links: + (1 + 24) = 99
        assert_eq!(row.size_bytes(true), 99);
        let tail = RuleExecRow { next: None, ..row };
        assert_eq!(tail.size_bytes(true), 75);
    }

    #[test]
    fn prov_table_dedups_and_counts_bytes() {
        let mut t = ProvTable::default();
        let row = ProvRow {
            loc: NodeId(0),
            vid: vid(1),
            rid: None,
            rloc: None,
        };
        assert!(t.insert(row.clone()));
        assert!(!t.insert(row.clone()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.bytes(), row.storage_size());
        assert_eq!(t.get(&vid(1)), Some(&row));
        assert_eq!(t.get(&vid(9)), None);
    }

    #[test]
    fn adv_table_keys_by_vid_and_evid() {
        let mut t = ProvTableAdv::default();
        let mk = |e: u8| ProvRowAdv {
            loc: NodeId(0),
            vid: vid(1),
            rloc: NodeId(0),
            rid: rid(1),
            evid: evid(e),
        };
        assert!(t.insert(mk(1)));
        assert!(t.insert(mk(2))); // same vid, different execution
        assert!(!t.insert(mk(1)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows_for_vid(&vid(1)).count(), 2);
        assert!(t.get(&vid(1), &evid(1)).is_some());
        assert!(t.get(&vid(1), &evid(3)).is_none());
    }

    #[test]
    fn rule_exec_table_respects_link_mode() {
        let row = RuleExecRow {
            rloc: NodeId(0),
            rid: rid(1),
            rule: "r1".into(),
            vids: vec![vid(1)],
            next: None,
        };
        let mut no_links = RuleExecTable::new(false);
        no_links.insert(row.clone());
        let mut links = RuleExecTable::new(true);
        links.insert(row.clone());
        assert_eq!(no_links.bytes() + 1, links.bytes()); // NULL next = 1 byte
        assert!(!links.insert(row));
    }

    #[test]
    fn interclass_shares_node_rows() {
        let mut t = InterClassTables::default();
        let node_row = RuleExecRow {
            rloc: NodeId(0),
            rid: rid(10),
            rule: "r1".into(),
            vids: vec![vid(1)],
            next: None,
        };
        // Two different chains referencing the same concrete node.
        t.insert(rid(10), node_row.clone(), rid(1), Some((NodeId(1), rid(2))));
        let before = t.bytes();
        t.insert(rid(10), node_row.clone(), rid(3), None);
        let after = t.bytes();
        assert_eq!(t.node_rows(), 1);
        assert_eq!(t.link_rows(), 2);
        // Second insert only added a link row, cheaper than a node row.
        assert!(after - before < node_row.size_bytes(false));

        let v1 = t.get(&rid(1)).unwrap();
        assert_eq!(v1.next, Some((NodeId(1), rid(2))));
        let v3 = t.get(&rid(3)).unwrap();
        assert_eq!(v3.next, None);
        assert_eq!(v1.rule, v3.rule);
        assert!(t.get(&rid(9)).is_none());
    }

    #[test]
    fn interclass_link_and_node_insert_idempotent() {
        let mut t = InterClassTables::default();
        let node_row = RuleExecRow {
            rloc: NodeId(0),
            rid: rid(10),
            rule: "r1".into(),
            vids: vec![],
            next: None,
        };
        t.insert(rid(10), node_row.clone(), rid(1), None);
        let bytes = t.bytes();
        t.insert(rid(10), node_row, rid(1), None);
        assert_eq!(t.bytes(), bytes);
    }

    // Sanity: tuple storage sizes referenced in the paper discussion — a
    // packet with a 500-char payload dominates the meta overhead.
    #[test]
    fn payload_dominates_meta() {
        let pkt = Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(0)),
                Value::Addr(NodeId(0)),
                Value::Addr(NodeId(1)),
                Value::str("x".repeat(500)),
            ],
        );
        assert!(pkt.storage_size() > 500);
    }
}
