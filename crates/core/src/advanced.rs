//! Equivalence-based online compression (Section 5.3) with optional
//! inter-equivalence-class compression (Section 5.4).
//!
//! Execution of an input event proceeds in three stages:
//!
//! 1. **Equivalence keys checking** — the input node hashes the event's
//!    equivalence-key valuation and checks its `htequi` set; a repeat sets
//!    `existFlag = true`, which travels with the event.
//! 2. **Online provenance maintenance** — nodes insert chained `ruleExec`
//!    rows only when `existFlag` is `false`.
//! 3. **Output tuple provenance maintenance** — the output node associates
//!    the output tuple with the shared tree through `hmap` and stores a
//!    small `prov` row carrying the execution's `evid` (Table 3).
//!
//! A `sig` broadcast (Section 5.5) clears `htequi`, forcing the next event
//! of every class to re-materialize its tree against the updated
//! slow-changing state.
//!
//! Rule-execution ids are chained — `rid = sha1(rule, slow vids, prev rid)`
//! — so `(RLoc, RID)` uniquely determines a row (the uniqueness property
//! Lemma 6 relies on) even when the same rule joins the same slow tuples at
//! the same node within different equivalence classes. The paper's Table 3
//! abbreviates the hash inputs; the chained form is the general-case
//! version.

use std::collections::{HashMap, HashSet};

use dpc_common::{EqKeyHash, EvId, NodeId, Rid, Sha1, Tuple, Vid};
use dpc_engine::{ProvMeta, ProvRecorder, Stage};
use dpc_ndlog::{EquivKeys, Rule};
use dpc_telemetry::TelemetryHandle;

use crate::storage::{
    InterClassTables, ProvRowAdv, ProvTableAdv, RuleExecRow, RuleExecTable, RuleExecView,
};

/// Wire overhead Advanced tags onto each shipped tuple: `existFlag` (1) +
/// `evid` (20) + equivalence-key hash (20) + chain reference (25).
pub const ADVANCED_META_BYTES: usize = 66;

/// Compute the chained Advanced rule-execution id.
pub fn advanced_rid(rule: &str, slow_vids: &[Vid], prev: Option<(NodeId, Rid)>) -> Rid {
    let mut h = Sha1::new();
    h.update(b"A");
    h.update(rule.as_bytes());
    for v in slow_vids {
        h.update(&v.0 .0);
    }
    if let Some((loc, rid)) = prev {
        h.update(&loc.0.to_be_bytes());
        h.update(&rid.0 .0);
    }
    Rid(h.finish())
}

/// Compute the chain-independent node id used by the Section 5.4 split.
pub fn node_rid(rule: &str, slow_vids: &[Vid]) -> Rid {
    let mut h = Sha1::new();
    h.update(b"N");
    h.update(rule.as_bytes());
    for v in slow_vids {
        h.update(&v.0 .0);
    }
    Rid(h.finish())
}

/// Per-node Advanced state.
#[derive(Debug)]
struct Node {
    /// Stage 1: equivalence-key values seen at this (input) node.
    htequi: HashSet<EqKeyHash>,
    /// Stage 3: shared-tree references at this (output) node, tagged with
    /// the execution that materialized them. An equivalence class usually
    /// has one shared tree; an execution whose rules joined several slow
    /// rows contributes one tree per derivation (QUERY returns the whole
    /// set, Appendix E). A re-materialization after a `sig` (a *different*
    /// execution) replaces the references, so post-update outputs attach
    /// to the post-update tree.
    hmap: HashMap<EqKeyHash, (EvId, Vec<(NodeId, Rid)>)>,
    prov: ProvTableAdv,
    /// Plain layout (Section 5.3).
    rule_exec: RuleExecTable,
    /// Split layout (Section 5.4), used when `inter_class` is on.
    inter: InterClassTables,
}

/// The equivalence-based compression recorder.
#[derive(Debug)]
pub struct AdvancedRecorder {
    keys: EquivKeys,
    nodes: Vec<Node>,
    inter_class: bool,
    hmap_misses: u64,
    telemetry: Option<TelemetryHandle>,
}

impl AdvancedRecorder {
    /// Create a recorder for `n` nodes using the given equivalence keys
    /// (from static analysis) and the intra-class layout of Section 5.3.
    pub fn new(n: usize, keys: EquivKeys) -> AdvancedRecorder {
        Self::with_mode(n, keys, false)
    }

    /// As [`AdvancedRecorder::new`] but with the Section 5.4
    /// `ruleExecNode`/`ruleExecLink` split enabled.
    pub fn with_inter_class(n: usize, keys: EquivKeys) -> AdvancedRecorder {
        Self::with_mode(n, keys, true)
    }

    fn with_mode(n: usize, keys: EquivKeys, inter_class: bool) -> AdvancedRecorder {
        AdvancedRecorder {
            keys,
            nodes: (0..n)
                .map(|_| Node {
                    htequi: HashSet::new(),
                    hmap: HashMap::new(),
                    prov: ProvTableAdv::default(),
                    rule_exec: RuleExecTable::new(true),
                    inter: InterClassTables::default(),
                })
                .collect(),
            inter_class,
            hmap_misses: 0,
            telemetry: None,
        }
    }

    /// Push the per-table gauges for `node` to the attached telemetry.
    fn report_tables(&self, node: NodeId) {
        let Some(t) = &self.telemetry else { return };
        let (prov, re) = self.row_counts(node);
        t.gauge("recorder.prov_rows", Some(node.0), prov as i64);
        t.gauge("recorder.rule_exec_rows", Some(node.0), re as i64);
        t.gauge(
            "recorder.storage_bytes",
            Some(node.0),
            self.storage_at(node) as i64,
        );
        let n = &self.nodes[node.index()];
        t.gauge(
            "recorder.htequi_classes",
            Some(node.0),
            n.htequi.len() as i64,
        );
        t.gauge("recorder.hmap_entries", Some(node.0), n.hmap.len() as i64);
    }

    /// The equivalence keys in use.
    pub fn keys(&self) -> &EquivKeys {
        &self.keys
    }

    /// Is the Section 5.4 split layout active?
    pub fn inter_class(&self) -> bool {
        self.inter_class
    }

    /// Times an `existFlag = true` execution found no `hmap` entry at its
    /// output node (out-of-order arrival; Section 5.6 assumes all updates
    /// are processed before querying, and FIFO links keep this at zero).
    pub fn hmap_misses(&self) -> u64 {
        self.hmap_misses
    }

    /// The Advanced `prov` row for one output tuple and execution, when
    /// the execution stored a single derivation (the common case).
    pub fn prov_row<'a>(
        &'a self,
        loc: NodeId,
        vid: &'a Vid,
        evid: &'a EvId,
    ) -> Option<&'a ProvRowAdv> {
        self.nodes.get(loc.index())?.prov.get(vid, evid)
    }

    /// All `prov` rows for one output tuple and execution — `GET_PROV` of
    /// Appendix E (several rows when the execution had several
    /// derivations).
    pub fn prov_rows<'a>(
        &'a self,
        loc: NodeId,
        vid: &'a Vid,
        evid: &'a dpc_common::EvId,
    ) -> impl Iterator<Item = &'a ProvRowAdv> {
        self.nodes
            .get(loc.index())
            .into_iter()
            .flat_map(move |n| n.prov.get_all(vid, evid))
    }

    /// All `prov` rows for an output tuple vid at `loc`.
    pub fn prov_rows_for_vid<'a>(
        &'a self,
        loc: NodeId,
        vid: &'a Vid,
    ) -> impl Iterator<Item = &'a ProvRowAdv> {
        self.nodes
            .get(loc.index())
            .into_iter()
            .flat_map(move |n| n.prov.rows_for_vid(vid))
    }

    /// Resolve a rule-execution provenance node, uniform across layouts.
    pub fn rule_exec(&self, loc: NodeId, rid: &Rid) -> Option<RuleExecView> {
        let node = self.nodes.get(loc.index())?;
        if self.inter_class {
            node.inter.get(rid)
        } else {
            node.rule_exec.get(rid).map(|r| RuleExecView {
                rule: r.rule.clone(),
                vids: r.vids.clone(),
                next: r.next,
            })
        }
    }

    /// Row counts at `node`: `(prov, ruleExec-or-link rows)`.
    pub fn row_counts(&self, node: NodeId) -> (usize, usize) {
        let n = &self.nodes[node.index()];
        if self.inter_class {
            (n.prov.len(), n.inter.link_rows())
        } else {
            (n.prov.len(), n.rule_exec.len())
        }
    }

    /// Snapshot of the `prov` rows at `node` (unordered).
    pub fn prov_rows_at(&self, node: NodeId) -> Vec<ProvRowAdv> {
        self.nodes[node.index()].prov.iter().cloned().collect()
    }

    /// Snapshot of the `ruleExec` rows at `node` (plain layout; empty when
    /// the inter-class split is active — use the counts instead).
    pub fn rule_exec_rows_at(&self, node: NodeId) -> Vec<RuleExecRow> {
        self.nodes[node.index()].rule_exec.iter().cloned().collect()
    }

    /// Concrete shared node rows at `node` (split layout only).
    pub fn node_row_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].inter.node_rows()
    }

    /// Total storage across all nodes.
    pub fn total_storage(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.storage_at(NodeId(i as u32)))
            .sum()
    }

    /// Size of the auxiliary runtime state (`htequi` + `hmap`) at `node`.
    /// Not part of the paper's storage metric (which serializes only the
    /// provenance tables), exposed for completeness.
    pub fn aux_storage_at(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        let hmap_bytes: usize = n
            .hmap
            .values()
            .map(|(_, refs)| 20 + 20 + refs.len() * 24)
            .sum();
        n.htequi.len() * 20 + hmap_bytes
    }
}

impl ProvRecorder for AdvancedRecorder {
    fn on_input(&mut self, node: NodeId, event: &Tuple, meta: &mut ProvMeta) {
        // Stage 1: equivalence keys checking.
        let kh = self
            .keys
            .hash(event)
            .expect("runtime validated the input event relation");
        let fresh = self.nodes[node.index()].htequi.insert(kh);
        meta.exist_flag = !fresh;
        meta.eq_hash = Some(kh);
        meta.wire_bytes = ADVANCED_META_BYTES;
        if let Some(t) = &self.telemetry {
            let name = if fresh {
                "recorder.htequi_misses"
            } else {
                "recorder.htequi_hits"
            };
            t.count(name, Some(node.0), 1);
        }
    }

    fn on_rule(
        &mut self,
        node: NodeId,
        rule: &Rule,
        _event: &Tuple,
        slow: &[Tuple],
        _head: &Tuple,
        meta: &ProvMeta,
    ) -> ProvMeta {
        let mut out = meta.clone();
        out.stage = Stage::Derived;
        out.wire_bytes = ADVANCED_META_BYTES;
        // Stage 2: maintain provenance only for the first execution of the
        // class.
        if meta.exist_flag {
            return out;
        }
        let slow_vids: Vec<Vid> = slow.iter().map(Tuple::vid).collect();
        let rid = advanced_rid(&rule.label, &slow_vids, meta.prev);
        let row = RuleExecRow {
            rloc: node,
            rid,
            rule: rule.label.clone(),
            vids: slow_vids.clone(),
            next: meta.prev,
        };
        if self.inter_class {
            let nrid = node_rid(&rule.label, &slow_vids);
            let saved = self.nodes[node.index()]
                .inter
                .insert(nrid, row, rid, meta.prev);
            if saved > 0 {
                if let Some(t) = &self.telemetry {
                    t.count(
                        "recorder.interclass_saved_bytes",
                        Some(node.0),
                        saved as u64,
                    );
                }
            }
        } else {
            self.nodes[node.index()].rule_exec.insert(row);
        }
        self.report_tables(node);
        out.prev = Some((node, rid));
        out
    }

    fn on_output(&mut self, node: NodeId, output: &Tuple, meta: &ProvMeta) {
        // Stage 3: associate the output with the shared tree(s).
        let kh = meta.eq_hash.expect("advanced meta always carries eq_hash");
        let evid = meta.evid.expect("every execution carries its evid");
        let state = &mut self.nodes[node.index()];
        let references: Vec<(NodeId, Rid)> = if meta.exist_flag {
            match state.hmap.get(&kh) {
                Some((_, rs)) => rs.clone(),
                None => {
                    // Out-of-order arrival relative to the class's first
                    // execution; with FIFO links this cannot happen.
                    self.hmap_misses += 1;
                    return;
                }
            }
        } else {
            let r = meta
                .prev
                .expect("uncompressed executions carry their chain head");
            match state.hmap.get_mut(&kh) {
                // Another derivation of the same materializing execution:
                // accumulate.
                Some((e, refs)) if *e == evid => {
                    if !refs.contains(&r) {
                        refs.push(r);
                    }
                }
                // First execution of the class, or a re-materialization
                // after a sig: (re)place the reference set.
                _ => {
                    state.hmap.insert(kh, (evid, vec![r]));
                }
            }
            vec![r]
        };
        for (rloc, rid) in references {
            state.prov.insert(ProvRowAdv {
                loc: node,
                vid: output.vid(),
                rloc,
                rid,
                evid,
            });
        }
        self.report_tables(node);
    }

    fn on_sig(&mut self, node: NodeId) {
        // Section 5.5: empty the equivalence-keys hash table so subsequent
        // events re-materialize their trees.
        self.nodes[node.index()].htequi.clear();
    }

    fn storage_at(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        let re = if self.inter_class {
            n.inter.bytes()
        } else {
            n.rule_exec.bytes()
        };
        n.prov.bytes() + re
    }

    fn attach_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::Value;
    use dpc_engine::Runtime;
    use dpc_ndlog::{equivalence_keys, programs};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(src)),
                Value::Addr(n(dst)),
                Value::str(payload),
            ],
        )
    }

    fn route(loc: u32, dst: u32, next: u32) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::Addr(n(loc)),
                Value::Addr(n(dst)),
                Value::Addr(n(next)),
            ],
        )
    }

    fn fwd_keys() -> EquivKeys {
        equivalence_keys(&programs::packet_forwarding())
    }

    fn make_runtime(nodes: usize, inter: bool) -> Runtime<AdvancedRecorder> {
        let net = topo::line(nodes, Link::STUB_STUB);
        let rec = if inter {
            AdvancedRecorder::with_inter_class(nodes, fwd_keys())
        } else {
            AdvancedRecorder::new(nodes, fwd_keys())
        };
        let mut rt = Runtime::new(programs::packet_forwarding(), net, rec);
        for i in 0..nodes as u32 - 1 {
            rt.install(route(i, nodes as u32 - 1, i + 1)).unwrap();
        }
        rt
    }

    /// Figure 6 / Table 3: two packets of the same class.
    #[test]
    fn second_packet_shares_the_tree() {
        let mut rt = make_runtime(3, false);
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.inject(packet(0, 0, 2, "url")).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 2);
        let rec = rt.recorder();
        assert_eq!(rec.hmap_misses(), 0);
        // ruleExec rows: one per node for the first packet only.
        assert_eq!(rec.row_counts(n(0)).1, 1);
        assert_eq!(rec.row_counts(n(1)).1, 1);
        assert_eq!(rec.row_counts(n(2)).1, 1);
        // prov rows: one per packet, both at the output node, pointing at
        // the same shared tree.
        assert_eq!(rec.row_counts(n(2)).0, 2);
        let o1 = &rt.outputs()[0];
        let o2 = &rt.outputs()[1];
        let (v1, v2) = (o1.tuple.vid(), o2.tuple.vid());
        let p1 = rec.prov_row(n(2), &v1, &o1.evid).unwrap();
        let p2 = rec.prov_row(n(2), &v2, &o2.evid).unwrap();
        assert_eq!((p1.rloc, p1.rid), (p2.rloc, p2.rid));
        assert_ne!(p1.evid, p2.evid);
    }

    #[test]
    fn different_class_builds_its_own_tree() {
        let mut rt = make_runtime(4, false);
        // Also give n1 a route so packets can start there.
        rt.inject(packet(0, 0, 3, "a")).unwrap();
        rt.inject(packet(1, 1, 3, "b")).unwrap(); // different (loc, dst) class
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 2);
        let rec = rt.recorder();
        // n1 and n2 each executed r1 for both classes -> 2 rows each; n0
        // only for the first class.
        assert_eq!(rec.row_counts(n(0)).1, 1);
        assert_eq!(rec.row_counts(n(1)).1, 2);
        assert_eq!(rec.row_counts(n(2)).1, 2);
    }

    #[test]
    fn chain_is_walkable() {
        let mut rt = make_runtime(3, false);
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        let rec = rt.recorder();
        let out = &rt.outputs()[0];
        let out_vid = out.tuple.vid();
        let pr = rec.prov_row(n(2), &out_vid, &out.evid).unwrap();
        let v2 = rec.rule_exec(pr.rloc, &pr.rid).unwrap();
        assert_eq!(v2.rule, "r2");
        let (l1, r1) = v2.next.unwrap();
        let v1 = rec.rule_exec(l1, &r1).unwrap();
        assert_eq!(v1.rule, "r1");
        assert_eq!(v1.vids, vec![route(1, 2, 2).vid()]);
        let (l0, r0) = v1.next.unwrap();
        let v0 = rec.rule_exec(l0, &r0).unwrap();
        assert!(v0.next.is_none());
    }

    #[test]
    fn sig_forces_rematerialization() {
        let mut rt = make_runtime(3, false);
        rt.inject_at(packet(0, 0, 2, "one"), dpc_netsim::SimTime::ZERO)
            .unwrap();
        rt.run().unwrap();
        assert_eq!(rt.recorder().row_counts(n(0)).1, 1);
        // A slow update broadcasts sig and clears htequi everywhere.
        rt.update_slow_at(route(1, 0, 0), rt.now()).unwrap();
        rt.run().unwrap();
        rt.inject(packet(0, 0, 2, "two")).unwrap();
        rt.run().unwrap();
        // The second packet re-materialized: the chain rows are identical
        // (same slow tuples), so counts stay, but prov has two rows and no
        // hmap misses occurred.
        let rec = rt.recorder();
        assert_eq!(rec.hmap_misses(), 0);
        assert_eq!(rec.row_counts(n(2)).0, 2);
    }

    #[test]
    fn inter_class_shares_suffix_nodes() {
        // Figure 2 + Section 5.4: a packet from n1 to n2 shares the rule
        // execution nodes rid1/rid2 with the n0->n2 tree.
        let mut rt = make_runtime(3, true);
        rt.inject(packet(0, 0, 2, "ab")).unwrap();
        rt.run().unwrap();
        rt.inject(packet(1, 1, 2, "cd")).unwrap();
        rt.run().unwrap();
        let rec = rt.recorder();
        assert_eq!(rt.outputs().len(), 2);
        // At n1: both classes execute r1 with the same route tuple — one
        // shared concrete node, two link rows.
        assert_eq!(rec.node_row_count(n(1)), 1);
        assert_eq!(rec.row_counts(n(1)).1, 2);
        // At n2: both classes execute r2 (no slow tuples) — shared node.
        assert_eq!(rec.node_row_count(n(2)), 1);
        assert_eq!(rec.row_counts(n(2)).1, 2);
    }

    #[test]
    fn inter_class_stores_less_than_plain_advanced_on_overlap() {
        let mut plain = make_runtime(6, false);
        let mut inter = make_runtime(6, true);
        // Many classes sharing long path suffixes: sources 0..4, dest 5.
        for s in 0..5u32 {
            plain.inject(packet(s, s, 5, "x")).unwrap();
            plain.run().unwrap();
            inter.inject(packet(s, s, 5, "x")).unwrap();
            inter.run().unwrap();
        }
        let p = plain.recorder().total_storage();
        let i = inter.recorder().total_storage();
        assert!(i < p, "inter-class {i} should be below plain {p}");
    }

    #[test]
    fn advanced_meta_constants() {
        // flag + evid + eq-hash + chain ref.
        assert_eq!(ADVANCED_META_BYTES, 1 + 20 + 20 + 25);
    }

    #[test]
    fn chained_rid_disambiguates_contexts() {
        let slow = [Vid::of_bytes(b"route")];
        let tail = advanced_rid("r1", &slow, None);
        let mid = advanced_rid("r1", &slow, Some((n(0), tail)));
        assert_ne!(tail, mid);
        // Same rule+slow at the same node in different classes gets
        // different rids because the chains differ.
        let other = advanced_rid("r1", &slow, Some((n(1), tail)));
        assert_ne!(mid, other);
        // The chain-independent node id is shared.
        assert_eq!(node_rid("r1", &slow), node_rid("r1", &slow));
    }

    #[test]
    fn out_of_order_output_counts_an_hmap_miss() {
        // Drive the recorder hooks directly: an existFlag=true execution
        // whose output arrives before the class's first execution stored
        // its tree must be counted, not panic (the Section 5.6 subtlety).
        use dpc_engine::{ProvMeta, Stage};
        let mut rec = AdvancedRecorder::new(2, fwd_keys());
        let ev = packet(0, 0, 1, "x");
        let mut meta = ProvMeta::input(0, ev.evid());
        meta.stage = Stage::Derived;
        meta.exist_flag = true; // forged: claims the class exists
        meta.eq_hash = Some(fwd_keys().hash(&ev).unwrap());
        let out = Tuple::new(
            "recv",
            vec![
                Value::Addr(n(1)),
                Value::Addr(n(0)),
                Value::Addr(n(1)),
                Value::str("x"),
            ],
        );
        rec.on_output(n(1), &out, &meta);
        assert_eq!(rec.hmap_misses(), 1);
        assert_eq!(rec.row_counts(n(1)).0, 0, "no prov row was stored");
    }

    #[test]
    fn aux_storage_tracks_hash_tables() {
        let mut rt = make_runtime(3, false);
        assert_eq!(rt.recorder().aux_storage_at(n(0)), 0);
        rt.inject(packet(0, 0, 2, "data")).unwrap();
        rt.run().unwrap();
        assert!(rt.recorder().aux_storage_at(n(0)) > 0); // htequi entry
        assert!(rt.recorder().aux_storage_at(n(2)) > 0); // hmap entry
    }
}
