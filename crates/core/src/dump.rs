//! Human-readable dumps of the provenance tables, in the style of the
//! paper's Tables 1-4. Used by examples and debugging sessions; the
//! format is stable enough to assert on in tests.

use dpc_common::NodeId;

use crate::advanced::AdvancedRecorder;
use crate::basic::BasicRecorder;
use crate::exspan::ExspanRecorder;
use crate::storage::{ProvRow, ProvRowAdv, RuleExecRow};

fn fmt_opt_loc(loc: Option<NodeId>) -> String {
    loc.map_or_else(|| "NULL".into(), |l| l.to_string())
}

fn fmt_prov_row(r: &ProvRow) -> String {
    format!(
        "| {:<5} | {:<10} | {:<10} | {:<5} |",
        r.loc.to_string(),
        r.vid.short(),
        r.rid.map_or_else(|| "NULL".into(), |x| x.short()),
        fmt_opt_loc(r.rloc),
    )
}

fn fmt_rule_exec_row(r: &RuleExecRow, with_links: bool) -> String {
    let vids = if r.vids.is_empty() {
        "NULL".to_string()
    } else {
        r.vids
            .iter()
            .map(|v| v.short())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut s = format!(
        "| {:<5} | {:<10} | {:<4} | {:<22} |",
        r.rloc.to_string(),
        r.rid.short(),
        r.rule,
        vids,
    );
    if with_links {
        let (nloc, nrid) = match r.next {
            Some((l, x)) => (l.to_string(), x.short()),
            None => ("NULL".into(), "NULL".into()),
        };
        s.push_str(&format!(" {nloc:<5} | {nrid:<10} |"));
    }
    s
}

fn fmt_adv_prov_row(r: &ProvRowAdv) -> String {
    format!(
        "| {:<5} | {:<10} | {:<5} | {:<10} | {:<10} |",
        r.loc.to_string(),
        r.vid.short(),
        r.rloc.to_string(),
        r.rid.short(),
        r.evid.short(),
    )
}

/// Dump the ExSPAN tables of `nodes` (Table 1 style).
pub fn dump_exspan(rec: &ExspanRecorder, nodes: impl Iterator<Item = NodeId>) -> String {
    let mut out = String::new();
    out.push_str("prov (Loc | VID | RID | RLoc)\n");
    let nodes: Vec<_> = nodes.collect();
    for &n in &nodes {
        let mut rows = rec.prov_rows_at(n);
        rows.sort_by_key(|r| r.vid.short());
        for r in rows {
            out.push_str(&fmt_prov_row(&r));
            out.push('\n');
        }
    }
    out.push_str("ruleExec (RLoc | RID | R | VIDS)\n");
    for &n in &nodes {
        let mut rows = rec.rule_exec_rows_at(n);
        rows.sort_by_key(|r| r.rid.short());
        for r in rows {
            out.push_str(&fmt_rule_exec_row(&r, false));
            out.push('\n');
        }
    }
    out
}

/// Dump the Basic tables of `nodes` (Table 2 style).
pub fn dump_basic(rec: &BasicRecorder, nodes: impl Iterator<Item = NodeId>) -> String {
    let mut out = String::new();
    out.push_str("prov (Loc | VID | RID | RLoc)\n");
    let nodes: Vec<_> = nodes.collect();
    for &n in &nodes {
        let mut rows = rec.prov_rows_at(n);
        rows.sort_by_key(|r| r.vid.short());
        for r in rows {
            out.push_str(&fmt_prov_row(&r));
            out.push('\n');
        }
    }
    out.push_str("ruleExec (RLoc | RID | R | VIDS | NLoc | NRID)\n");
    for &n in &nodes {
        let mut rows = rec.rule_exec_rows_at(n);
        rows.sort_by_key(|r| r.rid.short());
        for r in rows {
            out.push_str(&fmt_rule_exec_row(&r, true));
            out.push('\n');
        }
    }
    out
}

/// Dump the Advanced tables of `nodes` (Table 3 style).
pub fn dump_advanced(rec: &AdvancedRecorder, nodes: impl Iterator<Item = NodeId>) -> String {
    let mut out = String::new();
    out.push_str("prov (Loc | VID | RLoc | RID | EVID)\n");
    let nodes: Vec<_> = nodes.collect();
    for &n in &nodes {
        let mut rows = rec.prov_rows_at(n);
        rows.sort_by_key(|r| (r.vid.short(), r.evid.short()));
        for r in rows {
            out.push_str(&fmt_adv_prov_row(&r));
            out.push('\n');
        }
    }
    out.push_str("ruleExec (RLoc | RID | R | VIDS | NLoc | NRID)\n");
    for &n in &nodes {
        let mut rows = rec.rule_exec_rows_at(n);
        rows.sort_by_key(|r| r.rid.short());
        for r in rows {
            out.push_str(&fmt_rule_exec_row(&r, true));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_apps::forwarding;
    use dpc_engine::Runtime;
    use dpc_ndlog::{equivalence_keys, programs};
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn run<R: dpc_engine::ProvRecorder>(rec: R) -> Runtime<R> {
        let net = topo::line(3, Link::STUB_STUB);
        let mut rt = forwarding::make_runtime(net, rec);
        rt.install(forwarding::route(n(0), n(2), n(1))).unwrap();
        rt.install(forwarding::route(n(1), n(2), n(2))).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), n(2), "data"))
            .unwrap();
        rt.run().unwrap();
        rt
    }

    #[test]
    fn exspan_dump_has_all_rows() {
        let rt = run(ExspanRecorder::new(3));
        let dump = dump_exspan(rt.recorder(), rt.net().nodes());
        // 6 prov rows + 3 ruleExec rows + 2 headers = 11 lines.
        assert_eq!(dump.lines().count(), 11, "{dump}");
        assert!(dump.contains("r1"));
        assert!(dump.contains("r2"));
        assert!(dump.contains("NULL"));
    }

    #[test]
    fn basic_dump_shows_chain_columns() {
        let rt = run(BasicRecorder::new(3));
        let dump = dump_basic(rt.recorder(), rt.net().nodes());
        // 1 prov row + 3 ruleExec rows + 2 headers.
        assert_eq!(dump.lines().count(), 6, "{dump}");
        assert!(dump.contains("NLoc"));
    }

    #[test]
    fn advanced_dump_shows_evid() {
        let keys = equivalence_keys(&programs::packet_forwarding());
        let rt = run(AdvancedRecorder::new(3, keys));
        let dump = dump_advanced(rt.recorder(), rt.net().nodes());
        assert!(dump.contains("EVID"));
        // 1 prov row + 3 ruleExec rows + 2 headers.
        assert_eq!(dump.lines().count(), 6, "{dump}");
    }

    #[test]
    fn dumps_are_deterministic() {
        let a = {
            let rt = run(ExspanRecorder::new(3));
            dump_exspan(rt.recorder(), rt.net().nodes())
        };
        let b = {
            let rt = run(ExspanRecorder::new(3));
            dump_exspan(rt.recorder(), rt.net().nodes())
        };
        assert_eq!(a, b);
    }
}
