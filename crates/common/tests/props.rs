//! Property tests of the data model: canonical-encoding injectivity,
//! hash identity, and storage-size consistency over random tuples.

use dpc_common::{NodeId, StorageSize, Tuple, Value};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..64).prop_map(|n| Value::Addr(NodeId(n))),
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,24}".prop_map(Value::Str), // printable ASCII incl. quotes
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    (
        "[a-z][a-zA-Z0-9_]{0,10}",
        proptest::collection::vec(value(), 0..6),
    )
        .prop_map(|(rel, args)| Tuple::new(rel, args))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equal tuples encode equally; unequal tuples encode differently
    /// (the injectivity `vid` correctness rests on).
    #[test]
    fn encoding_is_injective(a in tuple(), b in tuple()) {
        if a == b {
            prop_assert_eq!(a.encode(), b.encode());
            prop_assert_eq!(a.vid(), b.vid());
            prop_assert_eq!(a.evid(), b.evid());
        } else {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    /// Encoding and hashing are deterministic.
    #[test]
    fn hashing_is_deterministic(t in tuple()) {
        prop_assert_eq!(t.vid(), t.clone().vid());
        prop_assert_eq!(t.encode(), t.clone().encode());
    }

    /// The vid and evid identifier spaces never collide.
    #[test]
    fn vid_and_evid_spaces_are_disjoint(a in tuple(), b in tuple()) {
        prop_assert_ne!(a.vid().0, b.evid().0);
    }

    /// The storage-size model is structural: a tuple's size is the fixed
    /// framing plus its parts, and sizes are positive and deterministic.
    #[test]
    fn storage_size_is_structural(t in tuple()) {
        let parts: usize = t.args().iter().map(StorageSize::storage_size).sum();
        prop_assert_eq!(t.storage_size(), 4 + t.rel().len() + 4 + parts);
        prop_assert!(t.storage_size() >= 8);
    }

    /// Display output parses back to something stable (no panics) and
    /// always carries the `@` location marker.
    #[test]
    fn display_is_stable(t in tuple()) {
        let s1 = t.to_string();
        let s2 = t.to_string();
        prop_assert_eq!(&s1, &s2);
        if t.arity() > 0 {
            prop_assert!(s1.contains('@'));
        }
    }

    /// SHA-1 streaming equals one-shot for arbitrary splits.
    #[test]
    fn sha1_streaming_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = dpc_common::Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), dpc_common::sha1(&data));
    }

    /// Digest hex round trips.
    #[test]
    fn digest_hex_round_trips(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let d = dpc_common::sha1(&data);
        prop_assert_eq!(dpc_common::Digest::from_hex(&d.to_hex()), Some(d));
    }
}
