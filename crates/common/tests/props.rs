//! Randomized tests of the data model: canonical-encoding injectivity,
//! hash identity, and storage-size consistency over random tuples.
//!
//! Driven by the in-tree seeded PRNG (`dpc_common::rng`) — each case
//! derives its own generator from a fixed base seed, so failures
//! reproduce exactly.

use dpc_common::{NodeId, Rng, SeededRng, StorageSize, Tuple, Value};

const CASES: u64 = 256;

fn random_string(rng: &mut SeededRng, max_len: usize) -> String {
    let len = rng.random_range(0..max_len as u64 + 1) as usize;
    // Printable ASCII including quotes and backslashes.
    (0..len)
        .map(|_| (rng.random_range(0x20u32..0x7f) as u8) as char)
        .collect()
}

fn random_value(rng: &mut SeededRng) -> Value {
    match rng.random_range(0..4u32) {
        0 => Value::Addr(NodeId(rng.random_range(0..64u32))),
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Str(random_string(rng, 24)),
        _ => Value::Bool(rng.random_bool(0.5)),
    }
}

fn random_rel(rng: &mut SeededRng) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.random_range(0..26u32) as u8) as char);
    let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    for _ in 0..rng.random_range(0..11u64) {
        s.push(alphabet[rng.random_range(0..alphabet.len())] as char);
    }
    s
}

fn random_tuple(rng: &mut SeededRng) -> Tuple {
    let arity = rng.random_range(0..6u64) as usize;
    let args: Vec<Value> = (0..arity).map(|_| random_value(rng)).collect();
    Tuple::new(random_rel(rng), args)
}

/// Equal tuples encode equally; unequal tuples encode differently
/// (the injectivity `vid` correctness rests on).
#[test]
fn encoding_is_injective() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x1000 + case);
        let a = random_tuple(&mut rng);
        // Half the cases compare against an identical clone, half against
        // an independently drawn tuple.
        let b = if case % 2 == 0 {
            a.clone()
        } else {
            random_tuple(&mut rng)
        };
        if a == b {
            assert_eq!(a.encode(), b.encode());
            assert_eq!(a.vid(), b.vid());
            assert_eq!(a.evid(), b.evid());
        } else {
            assert_ne!(a.encode(), b.encode(), "{a} vs {b}");
        }
    }
}

/// Encoding and hashing are deterministic.
#[test]
fn hashing_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x2000 + case);
        let t = random_tuple(&mut rng);
        assert_eq!(t.vid(), t.clone().vid());
        assert_eq!(t.encode(), t.clone().encode());
    }
}

/// The vid and evid identifier spaces never collide.
#[test]
fn vid_and_evid_spaces_are_disjoint() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x3000 + case);
        let a = random_tuple(&mut rng);
        let b = random_tuple(&mut rng);
        assert_ne!(a.vid().0, b.evid().0);
        assert_ne!(a.vid().0, a.evid().0);
    }
}

/// The storage-size model is structural: a tuple's size is the fixed
/// framing plus its parts, and sizes are positive and deterministic.
#[test]
fn storage_size_is_structural() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x4000 + case);
        let t = random_tuple(&mut rng);
        let parts: usize = t.args().iter().map(StorageSize::storage_size).sum();
        assert_eq!(t.storage_size(), 4 + t.rel().len() + 4 + parts);
        assert!(t.storage_size() >= 8);
    }
}

/// Display output is stable across calls and always carries the `@`
/// location marker.
#[test]
fn display_is_stable() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x5000 + case);
        let t = random_tuple(&mut rng);
        let s1 = t.to_string();
        let s2 = t.to_string();
        assert_eq!(s1, s2);
        if t.arity() > 0 {
            assert!(s1.contains('@'), "{s1}");
        }
    }
}

/// SHA-1 streaming equals one-shot for arbitrary splits.
#[test]
fn sha1_streaming_matches_oneshot() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x6000 + case);
        let len = rng.random_range(0..512u64) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let split = rng.random_range(0..len as u64 + 1) as usize;
        let mut h = dpc_common::Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finish(), dpc_common::sha1(&data));
    }
}

/// Digest hex round trips.
#[test]
fn digest_hex_round_trips() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x7000 + case);
        let len = rng.random_range(0..64u64) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let d = dpc_common::sha1(&data);
        assert_eq!(dpc_common::Digest::from_hex(&d.to_hex()), Some(d));
    }
}
