//! Storage-size accounting.
//!
//! The paper measures provenance storage by serializing the per-node
//! relational tables with `boost::serialization` and taking the byte size of
//! the result. We reproduce that with a deterministic size model: every
//! storable type reports the number of bytes its binary serialization would
//! occupy. Sizes are exact functions of the data (no pointers, no
//! allocator slack), so measurements are reproducible across runs and
//! platforms.

/// Types that know the size of their binary serialization.
///
/// The model follows a boost-style binary archive:
/// * fixed-width scalars serialize at their width,
/// * strings and vectors carry a 4-byte length prefix,
/// * enums carry a 1-byte tag,
/// * SHA-1 digests occupy 20 bytes.
pub trait StorageSize {
    /// Size in bytes of the serialized representation.
    fn storage_size(&self) -> usize;
}

impl StorageSize for u8 {
    fn storage_size(&self) -> usize {
        1
    }
}

impl StorageSize for bool {
    fn storage_size(&self) -> usize {
        1
    }
}

impl StorageSize for u32 {
    fn storage_size(&self) -> usize {
        4
    }
}

impl StorageSize for u64 {
    fn storage_size(&self) -> usize {
        8
    }
}

impl StorageSize for i64 {
    fn storage_size(&self) -> usize {
        8
    }
}

impl StorageSize for usize {
    fn storage_size(&self) -> usize {
        8
    }
}

impl StorageSize for String {
    fn storage_size(&self) -> usize {
        4 + self.len()
    }
}

impl StorageSize for str {
    fn storage_size(&self) -> usize {
        4 + self.len()
    }
}

impl StorageSize for crate::hash::Digest {
    fn storage_size(&self) -> usize {
        20
    }
}

impl StorageSize for crate::hash::Vid {
    fn storage_size(&self) -> usize {
        20
    }
}

impl StorageSize for crate::hash::Rid {
    fn storage_size(&self) -> usize {
        20
    }
}

impl StorageSize for crate::hash::EvId {
    fn storage_size(&self) -> usize {
        20
    }
}

impl StorageSize for crate::hash::EqKeyHash {
    fn storage_size(&self) -> usize {
        20
    }
}

impl StorageSize for crate::tuple::NodeId {
    fn storage_size(&self) -> usize {
        4
    }
}

impl<T: StorageSize> StorageSize for Option<T> {
    fn storage_size(&self) -> usize {
        // 1 tag byte; `None` still costs the tag (a NULL marker on disk).
        1 + self.as_ref().map_or(0, StorageSize::storage_size)
    }
}

impl<T: StorageSize> StorageSize for Vec<T> {
    fn storage_size(&self) -> usize {
        4 + self.iter().map(StorageSize::storage_size).sum::<usize>()
    }
}

impl<T: StorageSize> StorageSize for [T] {
    fn storage_size(&self) -> usize {
        4 + self.iter().map(StorageSize::storage_size).sum::<usize>()
    }
}

impl<A: StorageSize, B: StorageSize> StorageSize for (A, B) {
    fn storage_size(&self) -> usize {
        self.0.storage_size() + self.1.storage_size()
    }
}

impl<T: StorageSize + ?Sized> StorageSize for &T {
    fn storage_size(&self) -> usize {
        (*self).storage_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha1;
    use crate::tuple::NodeId;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1u8.storage_size(), 1);
        assert_eq!(true.storage_size(), 1);
        assert_eq!(1u32.storage_size(), 4);
        assert_eq!(1u64.storage_size(), 8);
        assert_eq!((-1i64).storage_size(), 8);
        assert_eq!(1usize.storage_size(), 8);
    }

    #[test]
    fn string_and_vec_sizes() {
        assert_eq!("abc".storage_size(), 7);
        assert_eq!(String::from("abc").storage_size(), 7);
        assert_eq!(vec![1u32, 2, 3].storage_size(), 4 + 12);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.storage_size(), 4);
    }

    #[test]
    fn option_sizes() {
        let some: Option<u32> = Some(1);
        let none: Option<u32> = None;
        assert_eq!(some.storage_size(), 5);
        assert_eq!(none.storage_size(), 1);
    }

    #[test]
    fn digest_and_node_sizes() {
        assert_eq!(sha1(b"x").storage_size(), 20);
        assert_eq!(NodeId(9).storage_size(), 4);
        assert_eq!((NodeId(1), sha1(b"x")).storage_size(), 24);
    }
}
