//! In-tree deterministic pseudo-random number generation.
//!
//! The workspace builds with zero external dependencies, so the topology,
//! workload and randomized-test code draw from this module instead of the
//! `rand` crate. The generator is xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 — the standard pairing: SplitMix64 spreads a single
//! `u64` seed into a well-mixed 256-bit state, and xoshiro256++ has no
//! known low-dimensional artifacts at the scales we sample.
//!
//! Determinism contract: the same seed produces the same stream on every
//! platform and in every build profile. Experiments key their entire
//! run off one `--seed` value, so this contract is what makes figures
//! reproducible.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both for seeding [`SeededRng`] and as a tiny standalone mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The sampling interface the workspace programs against.
///
/// Implemented by [`SeededRng`]; generic call sites take `&mut impl Rng`
/// exactly as they previously took `&mut impl rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[0, bound)`. Panics when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased, and one
    /// multiplication in the common case.
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0) is empty");
        // widening multiply: map the 64-bit stream onto [0, bound)
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value from `range`, e.g. `rng.random_range(0..n)`.
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types [`Rng::random_range`] can sample uniformly from a half-open range.
pub trait RangeSample: Copy {
    /// A uniform sample from `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.bounded(span) as Self
            }
        }
    )*};
}
impl_range_sample!(u32, u64, usize);

impl RangeSample for i64 {
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(rng.bounded(span) as i64)
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// xoshiro256++ with SplitMix64 seeding: the workspace's concrete PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> SeededRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SeededRng { s }
    }
}

impl Rng for SeededRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::seed_from_u64(1);
        let mut b = SeededRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut rng = SeededRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.bounded(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn random_range_supports_workspace_types() {
        let mut rng = SeededRng::seed_from_u64(3);
        for _ in 0..100 {
            let u: usize = rng.random_range(5..15);
            assert!((5..15).contains(&u));
            let w: u32 = rng.random_range(0..3);
            assert!(w < 3);
            let i: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn random_f64_is_unit_interval_and_uniformish() {
        let mut rng = SeededRng::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SeededRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0)); // random_f64() < 1.0 always holds
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the public-domain SplitMix64 sources:
        // seed 0 produces 0xE220A8397B1DCDAF first.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
    }
}
