//! Dynamically typed attribute values for NDlog tuples.

use std::fmt;

use crate::size::StorageSize;
use crate::tuple::NodeId;

/// A single attribute value inside a [`crate::Tuple`].
///
/// NDlog is dynamically typed; the four variants here cover everything the
/// paper's applications need: node addresses (location specifiers and
/// next-hop attributes), integers, strings (URLs, payloads, domain names)
/// and booleans (results of user-defined predicates).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A node address, e.g. the `@L` location specifier.
    Addr(NodeId),
    /// A 64-bit signed integer.
    Int(i64),
    /// A string (URL, payload, domain name, ...).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The node id if this value is an address.
    pub fn as_addr(&self) -> Option<NodeId> {
        match self {
            Value::Addr(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Canonical byte encoding used for content hashing (`vid` computation).
    ///
    /// The encoding is injective: a one-byte type tag followed by a
    /// fixed-width or length-prefixed payload, so distinct values can never
    /// encode to the same bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Addr(n) => {
                out.push(0);
                out.extend_from_slice(&n.0.to_be_bytes());
            }
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(3);
                out.push(*b as u8);
            }
        }
    }
}

impl StorageSize for Value {
    fn storage_size(&self) -> usize {
        // Mirrors a boost-style binary archive: 1 tag byte plus payload.
        1 + match self {
            Value::Addr(_) => 4,
            Value::Int(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bool(_) => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Addr(n) => write!(f, "{n}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<NodeId> for Value {
    fn from(n: NodeId) -> Self {
        Value::Addr(n)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Addr(NodeId(3)).as_addr(), Some(NodeId(3)));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_addr(), None);
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn encoding_is_injective_across_types() {
        let vals = [
            Value::Addr(NodeId(1)),
            Value::Int(1),
            Value::str("1"),
            Value::Bool(true),
            Value::Int(256),
            Value::str(""),
            Value::str("\0\0\0\0"),
        ];
        let mut encodings = Vec::new();
        for v in &vals {
            let mut buf = Vec::new();
            v.encode_into(&mut buf);
            encodings.push(buf);
        }
        for i in 0..encodings.len() {
            for j in i + 1..encodings.len() {
                assert_ne!(encodings[i], encodings[j], "{:?} vs {:?}", vals[i], vals[j]);
            }
        }
    }

    #[test]
    fn string_length_prefix_prevents_concat_ambiguity() {
        // ("ab","c") and ("a","bc") must encode differently when concatenated.
        let mut e1 = Vec::new();
        Value::str("ab").encode_into(&mut e1);
        Value::str("c").encode_into(&mut e1);
        let mut e2 = Vec::new();
        Value::str("a").encode_into(&mut e2);
        Value::str("bc").encode_into(&mut e2);
        assert_ne!(e1, e2);
    }

    #[test]
    fn storage_sizes() {
        assert_eq!(Value::Addr(NodeId(0)).storage_size(), 5);
        assert_eq!(Value::Int(0).storage_size(), 9);
        assert_eq!(Value::str("abcd").storage_size(), 9);
        assert_eq!(Value::Bool(false).storage_size(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Addr(NodeId(2)).to_string(), "n2");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
