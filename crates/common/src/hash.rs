//! SHA-1 (RFC 3174) and the typed digests of the provenance model.
//!
//! The paper (and ExSPAN before it) identifies provenance nodes by SHA-1
//! hashes: a tuple's `vid` is `sha1(tuple)`, a rule execution's `rid` is
//! `sha1(rule + loc + child vids)`, and the event peculiar to one execution
//! is identified by its `evid`. We reproduce that scheme with a from-scratch
//! SHA-1 so the workspace has no external digest dependency; the
//! implementation is validated against the RFC 3174 / FIPS 180-1 test
//! vectors in this module's tests.
//!
//! The typed wrappers ([`Vid`], [`Rid`], [`EvId`], [`EqKeyHash`]) exist so
//! that the storage layer cannot accidentally mix identifier spaces — a bug
//! class that is otherwise easy to hit when everything is `[u8; 20]`.

use std::fmt;

/// A raw 160-bit SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Render the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// A short (8 hex char) prefix, handy for human-readable table dumps.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Parse a 40-character hex string back into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.as_bytes();
        if s.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for (i, pair) in s.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// The all-zero digest, used as a sentinel in a few table dumps.
    pub const ZERO: Digest = Digest([0; 20]);
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming SHA-1 hasher.
///
/// ```
/// use dpc_common::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finish().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a hasher in its initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut data = data;
        // Fill a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.process_block(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalize and return the digest. Consumes the hasher.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.len * 8;
        // Padding: 0x80 then zeros until 8 bytes remain in the block, then
        // the big-endian 64-bit bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not count toward `len`, but we have
        // already captured bit_len, so plain update is fine.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of a byte slice.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finish()
}

macro_rules! typed_digest {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub Digest);

        impl $name {
            /// Hash arbitrary bytes into this identifier space. A single
            /// domain-separation byte keeps the spaces disjoint even for
            /// identical payloads.
            pub fn of_bytes(data: &[u8]) -> Self {
                let mut h = Sha1::new();
                h.update(&[$tag]);
                h.update(data);
                $name(h.finish())
            }

            /// Lowercase-hex rendering of the digest.
            pub fn to_hex(&self) -> String {
                self.0.to_hex()
            }

            /// Short hex prefix for table dumps.
            pub fn short(&self) -> String {
                self.0.short()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0.short())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0.short())
            }
        }
    };
}

typed_digest!(
    /// Identifier of a tuple (`vid` in the paper): `sha1(tuple)`.
    Vid,
    b'V'
);
typed_digest!(
    /// Identifier of a rule execution (`rid` in the paper).
    Rid,
    b'R'
);
typed_digest!(
    /// Identifier of the input event peculiar to one execution (`evid`).
    EvId,
    b'E'
);
typed_digest!(
    /// Hash of an input event's equivalence-key valuation — the value
    /// stored in the `htequi` set and used as the `hmap` key (Section 5.3).
    EqKeyHash,
    b'K'
);

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn rfc3174_vector_abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc3174_vector_two_blocks() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn rfc3174_vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for b in data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finish(), sha1(data));
    }

    #[test]
    fn typed_digests_are_domain_separated() {
        let v = Vid::of_bytes(b"same payload");
        let r = Rid::of_bytes(b"same payload");
        let e = EvId::of_bytes(b"same payload");
        let k = EqKeyHash::of_bytes(b"same payload");
        assert_ne!(v.0, r.0);
        assert_ne!(v.0, e.0);
        assert_ne!(r.0, e.0);
        assert_ne!(k.0, v.0);
    }

    #[test]
    fn digest_rendering() {
        let d = sha1(b"abc");
        assert_eq!(d.short(), "a9993e36");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest(a9993e36"));
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(40));
    }

    #[test]
    fn from_hex_round_trips() {
        let d = sha1(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(
            Digest::from_hex("da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            Some(sha1(b""))
        );
        assert_eq!(Digest::from_hex("tooshort"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(40)), None);
        assert_eq!(Digest::from_hex(&"0".repeat(41)), None);
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 byte padding boundaries exercise the
        // two-block padding path.
        let known = [
            (55usize, true),
            (56, true),
            (57, true),
            (63, true),
            (64, true),
            (65, true),
        ];
        for (len, _) in known {
            let data = vec![0x61u8; len];
            let d1 = sha1(&data);
            // Re-hash via streaming to double check internal consistency.
            let mut h = Sha1::new();
            h.update(&data);
            assert_eq!(h.finish(), d1, "len {len}");
        }
    }
}
