//! Workspace-wide error type.
//!
//! Every fallible public operation in the workspace returns [`Result`]. The
//! variants are deliberately coarse: this is a simulation/research library,
//! so the interesting distinction is *which subsystem* rejected the input,
//! not a deep taxonomy of causes.

use std::fmt;

/// Errors produced anywhere in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// NDlog source text failed to lex or parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A structurally valid NDlog program violated the DELP restrictions
    /// (Definition 1 of the paper).
    InvalidDelp(String),
    /// A tuple did not match the schema the operation required (wrong arity,
    /// missing location specifier, wrong value type).
    Schema(String),
    /// A lookup against provenance storage failed (unknown vid/rid, broken
    /// NLoc/NRID chain, missing event tuple).
    ProvenanceLookup(String),
    /// The simulated network rejected an operation (unknown node, no such
    /// link, disconnected pair).
    Network(String),
    /// A runtime evaluation error (unbound variable, type error in an
    /// arithmetic atom, unknown user-defined function).
    Eval(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::InvalidDelp(msg) => write!(f, "not a valid DELP: {msg}"),
            Error::Schema(msg) => write!(f, "schema violation: {msg}"),
            Error::ProvenanceLookup(msg) => write!(f, "provenance lookup failed: {msg}"),
            Error::Network(msg) => write!(f, "network error: {msg}"),
            Error::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Parse {
            line: 3,
            col: 7,
            msg: "expected ':-'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected ':-'");
        assert!(Error::InvalidDelp("x".into()).to_string().contains("DELP"));
        assert!(Error::Eval("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&Error::Network("down".into()));
    }
}
