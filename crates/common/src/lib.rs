#![warn(missing_docs)]

//! Shared data model for the distributed-provenance-compression workspace.
//!
//! This crate holds the vocabulary types every other crate speaks:
//!
//! * [`Value`] — the dynamically typed attribute values that flow through
//!   NDlog tuples (node addresses, integers, strings, booleans).
//! * [`Tuple`] — a relation instance, i.e. a relation name plus a vector of
//!   values whose first attribute is the *location specifier* (`@`-attribute
//!   in NDlog surface syntax).
//! * [`NodeId`] — identity of a node in the simulated distributed system.
//! * [`sha1`] — a from-scratch SHA-1 implementation (RFC 3174) used to derive
//!   the content-addressed `vid`/`rid`/`evid` identifiers of the provenance
//!   model, exactly as ExSPAN and the paper do.
//! * [`Digest`], [`Vid`], [`Rid`], [`EvId`], [`EqKeyHash`] — typed digests so
//!   a tuple id can never be confused with a rule-execution id.
//! * [`StorageSize`] — the byte-size model standing in for the paper's
//!   `boost::serialization` measurement of provenance table storage.

pub mod error;
pub mod hash;
pub mod rng;
pub mod size;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use hash::{sha1, Digest, EqKeyHash, EvId, Rid, Sha1, Vid};
pub use rng::{Rng, SeededRng};
pub use size::StorageSize;
pub use tuple::{NodeId, RelName, Tuple};
pub use value::Value;
