//! Tuples, relation names and node identities.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::error::{Error, Result};
use crate::hash::{EvId, Vid};
use crate::size::StorageSize;
use crate::value::Value;

/// Identity of a node in the distributed system.
///
/// Nodes are dense small integers; the `Display` form (`n0`, `n1`, ...)
/// matches the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The integer index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An interned relation name.
///
/// Relation names are shared between many tuples, rules, and provenance
/// rows; `Arc<str>` keeps clones cheap (a refcount bump) without pulling in
/// an interning table.
pub type RelName = Arc<str>;

/// An instance of a relation: the relation name plus its attribute values.
///
/// By NDlog convention the first attribute is the *location specifier*: the
/// node at which the tuple lives (written `@L` in surface syntax).
///
/// The payload lives behind an `Arc`, so cloning a tuple is a refcount
/// bump. The canonical SHA-1 identities (`vid`/`evid`) are computed once on
/// first use and cached inside the shared payload, so every clone — and
/// every recorder that re-derives an id from the same tuple — pays the
/// hash cost at most once.
#[derive(Clone)]
pub struct Tuple {
    inner: Arc<TupleInner>,
}

struct TupleInner {
    rel: RelName,
    args: Vec<Value>,
    ids: OnceLock<TupleIds>,
}

/// Lazily computed content-addressed identities (see [`Tuple::vid`]).
struct TupleIds {
    vid: Vid,
    evid: EvId,
}

impl Tuple {
    /// Build a tuple. The first argument should be the location specifier.
    pub fn new(rel: impl AsRef<str>, args: Vec<Value>) -> Tuple {
        Tuple::from_rel(Arc::from(rel.as_ref()), args)
    }

    /// Build a tuple from an already-interned relation name.
    pub fn from_rel(rel: RelName, args: Vec<Value>) -> Tuple {
        Tuple {
            inner: Arc::new(TupleInner {
                rel,
                args,
                ids: OnceLock::new(),
            }),
        }
    }

    /// The relation this tuple belongs to.
    pub fn rel(&self) -> &str {
        &self.inner.rel
    }

    /// The interned relation name (cheap to clone).
    pub fn rel_name(&self) -> &RelName {
        &self.inner.rel
    }

    /// All attribute values, location specifier first.
    pub fn args(&self) -> &[Value] {
        &self.inner.args
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.args.len()
    }

    /// The location specifier — the node this tuple lives at.
    ///
    /// Errors if the tuple has no attributes or the first attribute is not
    /// an address.
    pub fn loc(&self) -> Result<NodeId> {
        self.inner
            .args
            .first()
            .and_then(Value::as_addr)
            .ok_or_else(|| Error::Schema(format!("tuple {self} has no location specifier")))
    }

    /// Canonical byte encoding of the whole tuple, used for `vid`/`evid`
    /// computation. Injective: relation name is length-prefixed and each
    /// value uses its own injective encoding.
    pub fn encode(&self) -> Vec<u8> {
        let rel = &self.inner.rel;
        let args = &self.inner.args;
        let mut out = Vec::with_capacity(16 + rel.len() + args.len() * 12);
        out.extend_from_slice(&(rel.len() as u32).to_be_bytes());
        out.extend_from_slice(rel.as_bytes());
        out.extend_from_slice(&(args.len() as u32).to_be_bytes());
        for a in args {
            a.encode_into(&mut out);
        }
        out
    }

    fn ids(&self) -> &TupleIds {
        self.inner.ids.get_or_init(|| {
            let enc = self.encode();
            TupleIds {
                vid: Vid::of_bytes(&enc),
                evid: EvId::of_bytes(&enc),
            }
        })
    }

    /// The content-addressed tuple id: `vid = sha1(tuple)`. Computed once
    /// per tuple payload; clones share the cached digest.
    pub fn vid(&self) -> Vid {
        self.ids().vid
    }

    /// The event id used when this tuple is an input event: `evid`.
    /// Cached alongside [`Tuple::vid`].
    pub fn evid(&self) -> EvId {
        self.ids().evid
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.rel == other.inner.rel && self.inner.args == other.inner.args)
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.rel.hash(state);
        self.inner.args.hash(state);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.inner
            .rel
            .cmp(&other.inner.rel)
            .then_with(|| self.inner.args.cmp(&other.inner.args))
    }
}

impl StorageSize for Tuple {
    fn storage_size(&self) -> usize {
        4 + self.inner.rel.len()
            + 4
            + self
                .inner
                .args
                .iter()
                .map(StorageSize::storage_size)
                .sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.inner.rel)?;
        for (i, a) in self.inner.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == 0 {
                write!(f, "@{a}")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Shorthand macro for constructing tuples in tests and examples:
/// `tuple!["packet", n(1), n(1), n(3), "data"]`.
#[macro_export]
macro_rules! tuple {
    ($rel:expr $(, $arg:expr)* $(,)?) => {
        $crate::Tuple::new($rel, vec![$($crate::Value::from($arg)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(3)),
                Value::str("data"),
            ],
        )
    }

    #[test]
    fn loc_is_first_attribute() {
        assert_eq!(pkt().loc().unwrap(), NodeId(1));
    }

    #[test]
    fn loc_errors_without_address() {
        let t = Tuple::new("x", vec![Value::Int(3)]);
        assert!(t.loc().is_err());
        let empty = Tuple::new("x", vec![]);
        assert!(empty.loc().is_err());
    }

    #[test]
    fn vid_is_content_addressed() {
        let a = pkt();
        let b = pkt();
        assert_eq!(a.vid(), b.vid());
        let c = Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(3)),
                Value::str("url"),
            ],
        );
        assert_ne!(a.vid(), c.vid());
    }

    #[test]
    fn vid_depends_on_relation_name() {
        let a = Tuple::new("recv", vec![Value::Int(1)]);
        let b = Tuple::new("sent", vec![Value::Int(1)]);
        assert_ne!(a.vid(), b.vid());
    }

    #[test]
    fn vid_and_evid_are_distinct_spaces() {
        let t = pkt();
        assert_ne!(t.vid().0, t.evid().0);
    }

    #[test]
    fn encode_rel_name_boundary_is_unambiguous() {
        // rel "ab" + first arg str "c..." vs rel "a" + args starting "bc"
        let a = Tuple::new("ab", vec![Value::str("c")]);
        let b = Tuple::new("a", vec![Value::str("bc")]);
        assert_ne!(a.encode(), b.encode());
        assert_ne!(a.vid(), b.vid());
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(pkt().to_string(), "packet(@n1, n1, n3, \"data\")");
    }

    #[test]
    fn storage_size_sums_parts() {
        let t = pkt();
        // 4 + 6 ("packet") + 4 + (5 + 5 + 5 + (1+4+4))
        assert_eq!(t.storage_size(), 4 + 6 + 4 + 5 + 5 + 5 + 9);
    }

    #[test]
    fn clones_share_payload_and_digest_cache() {
        let a = pkt();
        let vid = a.vid(); // forces the cache
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(b.inner.ids.get().is_some(), "clone shares the cached ids");
        assert_eq!(b.vid(), vid);
        assert_eq!(b.evid(), a.evid());
    }

    #[test]
    fn equality_hash_and_order_follow_content() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = pkt();
        let b = pkt(); // separate allocation, same content
        assert!(!Arc::ptr_eq(&a.inner, &b.inner));
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let hash = |t: &Tuple| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        // Ordering is (rel, args) lexicographic, as with the derived impl.
        let c = Tuple::new("aaa", vec![Value::Int(1)]);
        assert!(c < a);
        let d = Tuple::new("packet", vec![Value::Addr(NodeId(0))]);
        assert!(d < a);
    }

    #[test]
    fn tuple_macro() {
        let t = tuple!["recv", NodeId(3), NodeId(1), NodeId(3), "data"];
        assert_eq!(t.rel(), "recv");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.loc().unwrap(), NodeId(3));
    }
}
