//! Tuples, relation names and node identities.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::hash::{EvId, Vid};
use crate::size::StorageSize;
use crate::value::Value;

/// Identity of a node in the distributed system.
///
/// Nodes are dense small integers; the `Display` form (`n0`, `n1`, ...)
/// matches the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The integer index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An interned relation name.
///
/// Relation names are shared between many tuples, rules, and provenance
/// rows; `Arc<str>` keeps clones cheap (a refcount bump) without pulling in
/// an interning table.
pub type RelName = Arc<str>;

/// An instance of a relation: the relation name plus its attribute values.
///
/// By NDlog convention the first attribute is the *location specifier*: the
/// node at which the tuple lives (written `@L` in surface syntax).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    rel: RelName,
    args: Vec<Value>,
}

impl Tuple {
    /// Build a tuple. The first argument should be the location specifier.
    pub fn new(rel: impl AsRef<str>, args: Vec<Value>) -> Tuple {
        Tuple {
            rel: Arc::from(rel.as_ref()),
            args,
        }
    }

    /// Build a tuple from an already-interned relation name.
    pub fn from_rel(rel: RelName, args: Vec<Value>) -> Tuple {
        Tuple { rel, args }
    }

    /// The relation this tuple belongs to.
    pub fn rel(&self) -> &str {
        &self.rel
    }

    /// The interned relation name (cheap to clone).
    pub fn rel_name(&self) -> &RelName {
        &self.rel
    }

    /// All attribute values, location specifier first.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The location specifier — the node this tuple lives at.
    ///
    /// Errors if the tuple has no attributes or the first attribute is not
    /// an address.
    pub fn loc(&self) -> Result<NodeId> {
        self.args
            .first()
            .and_then(Value::as_addr)
            .ok_or_else(|| Error::Schema(format!("tuple {self} has no location specifier")))
    }

    /// Canonical byte encoding of the whole tuple, used for `vid`/`evid`
    /// computation. Injective: relation name is length-prefixed and each
    /// value uses its own injective encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.rel.len() + self.args.len() * 12);
        out.extend_from_slice(&(self.rel.len() as u32).to_be_bytes());
        out.extend_from_slice(self.rel.as_bytes());
        out.extend_from_slice(&(self.args.len() as u32).to_be_bytes());
        for a in &self.args {
            a.encode_into(&mut out);
        }
        out
    }

    /// The content-addressed tuple id: `vid = sha1(tuple)`.
    pub fn vid(&self) -> Vid {
        Vid::of_bytes(&self.encode())
    }

    /// The event id used when this tuple is an input event: `evid`.
    pub fn evid(&self) -> EvId {
        EvId::of_bytes(&self.encode())
    }
}

impl StorageSize for Tuple {
    fn storage_size(&self) -> usize {
        4 + self.rel.len()
            + 4
            + self
                .args
                .iter()
                .map(StorageSize::storage_size)
                .sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == 0 {
                write!(f, "@{a}")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Shorthand macro for constructing tuples in tests and examples:
/// `tuple!["packet", n(1), n(1), n(3), "data"]`.
#[macro_export]
macro_rules! tuple {
    ($rel:expr $(, $arg:expr)* $(,)?) => {
        $crate::Tuple::new($rel, vec![$($crate::Value::from($arg)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(3)),
                Value::str("data"),
            ],
        )
    }

    #[test]
    fn loc_is_first_attribute() {
        assert_eq!(pkt().loc().unwrap(), NodeId(1));
    }

    #[test]
    fn loc_errors_without_address() {
        let t = Tuple::new("x", vec![Value::Int(3)]);
        assert!(t.loc().is_err());
        let empty = Tuple::new("x", vec![]);
        assert!(empty.loc().is_err());
    }

    #[test]
    fn vid_is_content_addressed() {
        let a = pkt();
        let b = pkt();
        assert_eq!(a.vid(), b.vid());
        let c = Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(3)),
                Value::str("url"),
            ],
        );
        assert_ne!(a.vid(), c.vid());
    }

    #[test]
    fn vid_depends_on_relation_name() {
        let a = Tuple::new("recv", vec![Value::Int(1)]);
        let b = Tuple::new("sent", vec![Value::Int(1)]);
        assert_ne!(a.vid(), b.vid());
    }

    #[test]
    fn vid_and_evid_are_distinct_spaces() {
        let t = pkt();
        assert_ne!(t.vid().0, t.evid().0);
    }

    #[test]
    fn encode_rel_name_boundary_is_unambiguous() {
        // rel "ab" + first arg str "c..." vs rel "a" + args starting "bc"
        let a = Tuple::new("ab", vec![Value::str("c")]);
        let b = Tuple::new("a", vec![Value::str("bc")]);
        assert_ne!(a.encode(), b.encode());
        assert_ne!(a.vid(), b.vid());
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(pkt().to_string(), "packet(@n1, n1, n3, \"data\")");
    }

    #[test]
    fn storage_size_sums_parts() {
        let t = pkt();
        // 4 + 6 ("packet") + 4 + (5 + 5 + 5 + (1+4+4))
        assert_eq!(t.storage_size(), 4 + 6 + 4 + 5 + 5 + 5 + 9);
    }

    #[test]
    fn tuple_macro() {
        let t = tuple!["recv", NodeId(3), NodeId(1), NodeId(3), "data"];
        assert_eq!(t.rel(), "recv");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.loc().unwrap(), NodeId(3));
    }
}
