//! Fixed-rate event schedules.

use dpc_netsim::SimTime;

/// A fixed-rate schedule: `count` events at `rate` events/second starting
/// at `start`, evenly spaced.
#[derive(Debug, Clone)]
pub struct Schedule {
    start: SimTime,
    interval: SimTime,
    count: usize,
}

impl Schedule {
    /// Events at `rate` per second for `duration`, starting at `start`.
    pub fn per_second(start: SimTime, rate: f64, duration: SimTime) -> Schedule {
        assert!(rate > 0.0, "rate must be positive");
        let interval = SimTime::from_secs_f64(1.0 / rate);
        let count = (duration.as_secs_f64() * rate).floor() as usize;
        Schedule {
            start,
            interval,
            count,
        }
    }

    /// Exactly `count` events spaced by `interval`.
    pub fn fixed(start: SimTime, interval: SimTime, count: usize) -> Schedule {
        Schedule {
            start,
            interval,
            count,
        }
    }

    /// Number of events in the schedule.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The injection time of event `i`.
    pub fn time_of(&self, i: usize) -> SimTime {
        SimTime::from_nanos(self.start.as_nanos() + self.interval.as_nanos() * i as u64)
    }

    /// Iterate `(index, time)` over the schedule.
    pub fn iter(&self) -> impl Iterator<Item = (usize, SimTime)> + '_ {
        (0..self.count).map(move |i| (i, self.time_of(i)))
    }

    /// Interleave the schedules of `n` independent sources round-robin,
    /// giving the aggregate arrival sequence (used when several pairs share
    /// one global rate).
    pub fn round_robin(sources: usize, total: &Schedule) -> Vec<(usize, SimTime)> {
        assert!(sources > 0, "need at least one source");
        total.iter().map(|(i, t)| (i % sources, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_spacing() {
        let s = Schedule::per_second(SimTime::ZERO, 100.0, SimTime::from_secs(2));
        assert_eq!(s.len(), 200);
        assert_eq!(s.time_of(0), SimTime::ZERO);
        assert_eq!(s.time_of(1), SimTime::from_millis(10));
        assert_eq!(s.time_of(100), SimTime::from_secs(1));
    }

    #[test]
    fn start_offset_applies() {
        let s = Schedule::per_second(SimTime::from_secs(5), 10.0, SimTime::from_secs(1));
        assert_eq!(s.time_of(0), SimTime::from_secs(5));
        assert_eq!(
            s.time_of(5),
            SimTime::from_secs(5) + SimTime::from_millis(500)
        );
    }

    #[test]
    fn iter_yields_all_events() {
        let s = Schedule::fixed(SimTime::ZERO, SimTime::from_millis(1), 5);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v.len(), 5);
        assert_eq!(v[4], (4, SimTime::from_millis(4)));
    }

    #[test]
    fn round_robin_cycles_sources() {
        let s = Schedule::fixed(SimTime::ZERO, SimTime::from_millis(1), 6);
        let rr = Schedule::round_robin(3, &s);
        let srcs: Vec<_> = rr.iter().map(|(i, _)| *i).collect();
        assert_eq!(srcs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::per_second(SimTime::ZERO, 10.0, SimTime::ZERO);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        Schedule::per_second(SimTime::ZERO, 0.0, SimTime::from_secs(1));
    }
}
