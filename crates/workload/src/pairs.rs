//! Random communicating-pair selection.

use dpc_common::NodeId;
use dpc_common::Rng;

/// Select `k` distinct ordered `(source, destination)` pairs from
/// `candidates`, with `source != destination`.
///
/// Panics if `candidates` has fewer than two nodes or cannot supply `k`
/// distinct pairs.
pub fn random_pairs(rng: &mut impl Rng, candidates: &[NodeId], k: usize) -> Vec<(NodeId, NodeId)> {
    assert!(
        candidates.len() >= 2,
        "need at least two candidate nodes, got {}",
        candidates.len()
    );
    let max_pairs = candidates.len() * (candidates.len() - 1);
    assert!(
        k <= max_pairs,
        "cannot draw {k} distinct pairs from {} candidates",
        candidates.len()
    );
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let s = candidates[rng.random_range(0..candidates.len())];
        let d = candidates[rng.random_range(0..candidates.len())];
        if s != d && chosen.insert((s, d)) {
            out.push((s, d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::SeededRng;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn pairs_are_distinct_and_non_reflexive() {
        let mut rng = SeededRng::seed_from_u64(1);
        let ps = random_pairs(&mut rng, &nodes(20), 100);
        assert_eq!(ps.len(), 100);
        let set: std::collections::HashSet<_> = ps.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(ps.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_pairs(&mut SeededRng::seed_from_u64(7), &nodes(10), 5);
        let b = random_pairs(&mut SeededRng::seed_from_u64(7), &nodes(10), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn exhausting_the_pair_space_works() {
        let mut rng = SeededRng::seed_from_u64(2);
        let ps = random_pairs(&mut rng, &nodes(3), 6); // 3*2 = all pairs
        assert_eq!(ps.len(), 6);
    }

    #[test]
    #[should_panic(expected = "distinct pairs")]
    fn too_many_pairs_panics() {
        let mut rng = SeededRng::seed_from_u64(3);
        random_pairs(&mut rng, &nodes(3), 7);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_candidate_panics() {
        let mut rng = SeededRng::seed_from_u64(4);
        random_pairs(&mut rng, &nodes(1), 1);
    }
}
