//! Zipfian sampling.
//!
//! DNS request popularity follows a Zipf distribution (Jung et al., cited
//! by the paper in Section 6.2). Implemented via a precomputed CDF and
//! binary search — no external distribution crate needed.

use dpc_common::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be positive; `s = 1.0` is the
    /// classic Zipf law.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(s >= 0.0 && s.is_finite(), "invalid exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the distribution over zero elements? (Never true: `new` checks.)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random_f64();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaNs"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::SeededRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(38, 1.0);
        let total: f64 = (0..38).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(10, 1.0);
        for k in 1..10 {
            assert!(z.pmf(0) > z.pmf(k));
        }
        // Classic Zipf: p(0)/p(1) = 2.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(5, 1.0);
        let mut rng = SeededRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn single_element_always_samples_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SeededRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_distribution_panics() {
        Zipf::new(0, 1.0);
    }
}
