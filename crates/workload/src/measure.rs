//! Measurement helpers: CDFs, rates and unit conversions for the figure
//! harnesses.

use dpc_netsim::SimTime;

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the CDF empty?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 <= q <= 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// `(value, fraction)` points suitable for plotting/printing, one per
    /// sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

/// Convert a byte count over a duration to megabits per second — the unit
/// of the paper's storage-growth figures.
pub fn mbps(bytes: usize, duration: SimTime) -> f64 {
    let secs = duration.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        bytes as f64 * 8.0 / 1_000_000.0 / secs
    }
}

/// Convert bytes to megabytes.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.fraction_at(2.0) - 0.5).abs() < 1e-12);
        assert!((c.fraction_at(0.5) - 0.0).abs() < 1e-12);
        assert!((c.fraction_at(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.max(), 4.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty CDF")]
    fn quantile_of_empty_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }

    #[test]
    fn unit_conversions() {
        // 1 MB over 8 seconds = 1 Mbps.
        assert!((mbps(1_000_000, SimTime::from_secs(8)) - 1.0).abs() < 1e-12);
        assert_eq!(mbps(100, SimTime::ZERO), 0.0);
        assert!((mb(2_500_000) - 2.5).abs() < 1e-12);
    }
}
