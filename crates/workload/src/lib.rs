#![warn(missing_docs)]

//! Workload generation and measurement helpers for the evaluation harness.
//!
//! * [`pairs`] — random communicating-pair selection (Section 6.1).
//! * [`stream`] — fixed-rate event schedules (packets/second,
//!   requests/second).
//! * [`zipf`] — the Zipfian URL popularity distribution of Section 6.2.
//! * [`measure`] — CDFs, growth rates and unit conversions used when
//!   printing the paper's figures.

pub mod measure;
pub mod pairs;
pub mod stream;
pub mod zipf;

pub use measure::{mb, mbps, Cdf};
pub use pairs::random_pairs;
pub use stream::Schedule;
pub use zipf::Zipf;
