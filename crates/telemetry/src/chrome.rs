//! Chrome trace-event export, loadable in Perfetto (`ui.perfetto.dev`)
//! and `chrome://tracing`.
//!
//! Spans serialize as *complete* events (`"ph":"X"`): one object per
//! finished span with `ts`/`dur` in microseconds of simulated time,
//! `pid` = the node the span ran at (each simulated node renders as one
//! process) and `tid` = a small per-trace index (each sampled trace
//! renders as one thread row inside every node it touched). Metadata
//! events name the processes so the Perfetto track list reads
//! `node 0`, `node 1`, …
//!
//! Field order is fixed (`name`, `cat`, `ph`, `ts`, `dur`, `pid`, `tid`,
//! `args`) and pinned by a golden test so Perfetto compatibility cannot
//! silently rot.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::span::{categorize, AttrValue, SpanRecord, TraceId};

fn attr_json(v: &AttrValue) -> Json {
    match v {
        AttrValue::Str(s) => Json::Str(s.clone()),
        AttrValue::UInt(u) => Json::UInt(*u),
        AttrValue::Int(i) => Json::Int(*i),
    }
}

/// Microseconds as a float with nanosecond precision, the unit of the
/// trace-event `ts`/`dur` fields.
fn micros(ns: u64) -> Json {
    Json::Float(ns as f64 / 1000.0)
}

/// Serialize finished spans as one Chrome trace-event JSON document.
/// Open spans are skipped (ending them is the caller's job — see
/// `Telemetry::close_open_spans`). Events are ordered by start time,
/// ties by span id, so the output is deterministic.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    // Stable small thread ids: traces numbered 1.. in TraceId order.
    let mut tids: BTreeMap<TraceId, u64> = BTreeMap::new();
    for s in spans {
        let next = tids.len() as u64 + 1;
        tids.entry(s.trace).or_insert(next);
    }

    let mut ordered: Vec<&SpanRecord> = spans.iter().filter(|s| s.end_ns.is_some()).collect();
    ordered.sort_by_key(|s| (s.start_ns, s.id));

    let mut events = Vec::new();
    // Process-name metadata first, one per node seen.
    let mut pids: Vec<u64> = ordered
        .iter()
        .map(|s| s.node.map_or(0, u64::from))
        .collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        events.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(pid)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("node {pid}")))]),
            ),
        ]));
    }

    for s in ordered {
        let mut args: Vec<(String, Json)> = vec![
            ("trace".to_string(), Json::Str(s.trace.to_string())),
            ("span".to_string(), Json::UInt(s.id.0)),
        ];
        if let Some(p) = s.parent {
            args.push(("parent".to_string(), Json::UInt(p.0)));
        }
        for (k, v) in &s.attrs {
            args.push((k.to_string(), attr_json(v)));
        }
        events.push(Json::obj([
            ("name", Json::Str(s.name.into())),
            ("cat", Json::Str(categorize(s.name).name().into())),
            ("ph", Json::Str("X".into())),
            ("ts", micros(s.start_ns)),
            ("dur", micros(s.duration_ns())),
            ("pid", Json::UInt(s.node.map_or(0, u64::from))),
            ("tid", Json::UInt(tids[&s.trace])),
            ("args", Json::Obj(args)),
        ]));
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        node: u32,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            node: Some(node),
            start_ns: start,
            end_ns: Some(end),
            attrs: Vec::new(),
        }
    }

    /// The golden test: field order, `ph`/`ts`/`dur`/`pid`/`tid`
    /// semantics and the metadata header are pinned byte-for-byte.
    #[test]
    fn chrome_export_golden() {
        let mut hop = span(7, 2, Some(1), "net.hop", 3, 1_500, 4_000);
        hop.attrs.push(("link", AttrValue::Str("3->4".to_string())));
        hop.attrs.push(("bytes", AttrValue::UInt(528)));
        let spans = vec![span(7, 1, None, "query", 0, 0, 10_000), hop];
        let rendered = chrome_trace(&spans).to_string();
        assert_eq!(
            rendered,
            "{\"traceEvents\":[\
             {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"node 0\"}},\
             {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"args\":{\"name\":\"node 3\"}},\
             {\"name\":\"query\",\"cat\":\"other\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\
              \"pid\":0,\"tid\":1,\"args\":{\"trace\":\"t7\",\"span\":1}},\
             {\"name\":\"net.hop\",\"cat\":\"network\",\"ph\":\"X\",\"ts\":1.5,\"dur\":2.5,\
              \"pid\":3,\"tid\":1,\"args\":{\"trace\":\"t7\",\"span\":2,\"parent\":1,\
              \"link\":\"3->4\",\"bytes\":528}}\
             ],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn open_spans_are_skipped_and_order_is_deterministic() {
        let mut open = span(1, 3, Some(1), "net.hop", 0, 5, 0);
        open.end_ns = None;
        let spans = vec![
            span(1, 2, Some(1), "b", 0, 10, 20),
            span(1, 1, None, "a", 0, 0, 30),
            open,
        ];
        let json = chrome_trace(&spans).to_string();
        // Events sorted by start: "a" (ts 0) precedes "b" (ts 10); the
        // open span is absent.
        let a_pos = json.find("\"name\":\"a\"").unwrap();
        let b_pos = json.find("\"name\":\"b\"").unwrap();
        assert!(a_pos < b_pos);
        assert!(!json.contains("net.hop"));
    }

    #[test]
    fn distinct_traces_get_distinct_tids() {
        let spans = vec![
            span(9, 1, None, "a", 0, 0, 1),
            span(4, 2, None, "b", 0, 0, 1),
        ];
        let json = chrome_trace(&spans).to_string();
        // TraceId order: t4 -> tid 1? No: tids assigned in encounter order
        // over the span slice (9 first), pinned here to stay deterministic.
        assert!(json.contains("\"trace\":\"t9\",\"span\":1"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
    }
}
