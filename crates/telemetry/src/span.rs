//! Causal span tracing on the simulated clock.
//!
//! A *span* is a named interval of simulated time attributed to one node:
//! a rule firing, one link hop, a provenance-query fetch. Spans link to a
//! parent span and share a [`TraceId`], so every sampled execution or
//! query forms a tree whose root covers the whole operation and whose
//! leaves explain where the time went. Contexts are tiny `Copy` values
//! ([`SpanContext`]) attached to every simulated message, so causality
//! survives `Sim::send`/`send_routed` hops, queueing and loss.
//!
//! The registry side lives on [`crate::Telemetry`] (`span_root`,
//! `span_child`, `span_end`, …); this module holds the data model plus
//! the pure analyses over finished traces:
//!
//! * [`check_well_formed`] — single closed root, no dangling parents.
//! * [`critical_path`] — attribute every instant of the root span to a
//!   [`Category`] (network / join / equivalence / storage) by the
//!   innermost covering span; the components sum to the root duration
//!   exactly.
//! * [`duration_histograms`] — per-(name, rule/link/scheme) latency
//!   histograms over finished spans.

use std::collections::BTreeMap;
use std::fmt;

use crate::Histogram;

/// Identifies one trace: all spans of one execution or one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one span within the registry (unique across traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The propagated trace context: attached to every simulated message so
/// the receiver's spans parent to the sender's. `Copy` and 17 bytes —
/// cheap enough to ride every envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span new children should parent to.
    pub span: SpanId,
    /// Head-based sampling decision, made once at the root and inherited
    /// by every descendant. Unsampled contexts make all span calls no-ops.
    pub sampled: bool,
}

impl SpanContext {
    /// The absent context: not sampled, all ids zero. Propagating it is
    /// free and records nothing.
    pub const NONE: SpanContext = SpanContext {
        trace: TraceId(0),
        span: SpanId(0),
        sampled: false,
    };
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (rule label, link name, scheme).
    Str(String),
    /// An unsigned counter-like attribute (bytes, rows).
    UInt(u64),
    /// A signed attribute.
    Int(i64),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::UInt(u) => write!(f, "{u}"),
            AttrValue::Int(i) => write!(f, "{i}"),
        }
    }
}

/// One recorded span. `end_ns` is `None` while the span is open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span, `None` for the trace root.
    pub parent: Option<SpanId>,
    /// Span name (stable, used for categorization and export).
    pub name: &'static str,
    /// The node the span ran at, if node-local.
    pub node: Option<u32>,
    /// Start, simulated nanoseconds.
    pub start_ns: u64,
    /// End, simulated nanoseconds (`None` while open).
    pub end_ns: Option<u64>,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Duration in nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .map(|e| e.saturating_sub(self.start_ns))
            .unwrap_or(0)
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Latency categories of the critical-path analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Time on the wire or queued behind it (`net.*` spans).
    Network,
    /// Join/re-derivation work (rule firings, query re-execution).
    Join,
    /// Equivalence-class bookkeeping (`htequi` lookups, `sig` handling).
    Equivalence,
    /// Provenance-table reads and writes.
    Storage,
    /// Anything else (roots, structural spans).
    Other,
}

impl Category {
    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Category::Network => "network",
            Category::Join => "join",
            Category::Equivalence => "equivalence",
            Category::Storage => "storage",
            Category::Other => "other",
        }
    }
}

/// Map a span name to its latency category. The mapping is explicit (not
/// substring-based) so renaming a span is a conscious, test-visible
/// change.
pub fn categorize(name: &str) -> Category {
    if name.starts_with("net.") {
        return Category::Network;
    }
    match name {
        "engine.rule" | "engine.eval" | "query.reexec" => Category::Join,
        "engine.eq" | "engine.sig" | "query.eq_lookup" => Category::Equivalence,
        "engine.event" | "query.fetch" | "query.lookup" => Category::Storage,
        _ => Category::Other,
    }
}

/// Nanoseconds of one trace's root span attributed to each category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Network time.
    pub network: u64,
    /// Join/re-execution time.
    pub join: u64,
    /// Equivalence-lookup time.
    pub equivalence: u64,
    /// Storage time.
    pub storage: u64,
    /// Unattributed time.
    pub other: u64,
}

impl Breakdown {
    /// Sum of all components — equals the root span duration by
    /// construction.
    pub fn total(&self) -> u64 {
        self.network + self.join + self.equivalence + self.storage + self.other
    }

    /// Percentage of one component against the total (0 when empty).
    pub fn pct(&self, ns: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            ns as f64 * 100.0 / t as f64
        }
    }

    /// `(name, nanos)` pairs in stable order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("network", self.network),
            ("join", self.join),
            ("equivalence", self.equivalence),
            ("storage", self.storage),
            ("other", self.other),
        ]
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, o: &Breakdown) {
        self.network += o.network;
        self.join += o.join;
        self.equivalence += o.equivalence;
        self.storage += o.storage;
        self.other += o.other;
    }

    fn slot(&mut self, c: Category) -> &mut u64 {
        match c {
            Category::Network => &mut self.network,
            Category::Join => &mut self.join,
            Category::Equivalence => &mut self.equivalence,
            Category::Storage => &mut self.storage,
            Category::Other => &mut self.other,
        }
    }
}

/// Group spans by trace, in trace-id order.
pub fn spans_by_trace(spans: &[SpanRecord]) -> BTreeMap<TraceId, Vec<&SpanRecord>> {
    let mut map: BTreeMap<TraceId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        map.entry(s.trace).or_default().push(s);
    }
    map
}

/// Check that one trace's spans form a well-formed tree: exactly one
/// root, the root is closed, every parent id resolves within the trace,
/// every span is closed, and no child starts before its parent.
pub fn check_well_formed(trace: &[&SpanRecord]) -> Result<(), String> {
    let roots: Vec<_> = trace.iter().filter(|s| s.parent.is_none()).collect();
    if roots.len() != 1 {
        return Err(format!("expected exactly one root, found {}", roots.len()));
    }
    let root = roots[0];
    if root.end_ns.is_none() {
        return Err(format!(
            "root span {} ({}) never closed",
            root.id, root.name
        ));
    }
    let by_id: BTreeMap<SpanId, &&SpanRecord> = trace.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != trace.len() {
        return Err("duplicate span ids within the trace".into());
    }
    for s in trace {
        if s.end_ns.is_none() {
            return Err(format!("span {} ({}) never closed", s.id, s.name));
        }
        if let Some(p) = s.parent {
            let parent = by_id
                .get(&p)
                .ok_or_else(|| format!("span {} ({}) has dangling parent {p}", s.id, s.name))?;
            if s.start_ns < parent.start_ns {
                return Err(format!(
                    "span {} ({}) starts before its parent {} ({})",
                    s.id, s.name, parent.id, parent.name
                ));
            }
        }
    }
    Ok(())
}

/// Critical-path analysis of one trace: every instant of the root span is
/// attributed to the [`Category`] of the *innermost* span covering it
/// (ties broken toward the later-starting span); instants covered only by
/// the root fall into the root's own category. The components therefore
/// sum to the root duration exactly. Returns `None` when the trace has no
/// single closed root.
pub fn critical_path(trace: &[&SpanRecord]) -> Option<Breakdown> {
    let root = {
        let mut roots = trace.iter().filter(|s| s.parent.is_none());
        let r = roots.next()?;
        if roots.next().is_some() {
            return None;
        }
        r
    };
    let root_end = root.end_ns?;
    let root_start = root.start_ns;
    if root_end <= root_start {
        return Some(Breakdown::default());
    }

    // Depth of every span (root = 0), for innermost-wins resolution.
    let by_id: BTreeMap<SpanId, &&SpanRecord> = trace.iter().map(|s| (s.id, s)).collect();
    let depth_of = |s: &SpanRecord| -> u32 {
        let mut d = 0;
        let mut cur = s.parent;
        while let Some(p) = cur {
            d += 1;
            match by_id.get(&p) {
                Some(ps) => cur = ps.parent,
                None => break,
            }
            if d > trace.len() as u32 {
                break; // cycle guard; check_well_formed reports it properly
            }
        }
        d
    };

    // Clipped, closed, non-root spans with their depth.
    let mut clipped: Vec<(u64, u64, u32, u64, Category)> = Vec::new();
    for s in trace {
        if s.id == root.id {
            continue;
        }
        let Some(end) = s.end_ns else { continue };
        let a = s.start_ns.max(root_start);
        let b = end.min(root_end);
        if b > a {
            clipped.push((a, b, depth_of(s), s.start_ns, categorize(s.name)));
        }
    }

    // Boundary sweep.
    let mut bounds: Vec<u64> = vec![root_start, root_end];
    for &(a, b, ..) in &clipped {
        bounds.push(a);
        bounds.push(b);
    }
    bounds.sort_unstable();
    bounds.dedup();

    let root_cat = categorize(root.name);
    let mut out = Breakdown::default();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        // Innermost covering span: max (depth, original start).
        let cat = clipped
            .iter()
            .filter(|&&(ca, cb, ..)| ca <= a && cb >= b)
            .max_by_key(|&&(_, _, depth, start, _)| (depth, start))
            .map(|&(.., cat)| cat)
            .unwrap_or(root_cat);
        *out.slot(cat) += b - a;
    }
    Some(out)
}

/// Aggregate finished spans into duration histograms, keyed by span name,
/// plus one refined key per `rule` / `link` / `scheme` attribute — the
/// per-(scheme, rule, link) latency attribution the run reports print.
pub fn duration_histograms(spans: &[SpanRecord]) -> BTreeMap<String, Histogram> {
    let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
    for s in spans {
        if s.end_ns.is_none() {
            continue;
        }
        let d = s.duration_ns();
        out.entry(s.name.to_string()).or_default().observe(d);
        for key in ["rule", "link", "scheme"] {
            if let Some(v) = s.attr(key) {
                out.entry(format!("{}[{}={}]", s.name, key, v))
                    .or_default()
                    .observe(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start: u64,
        end: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            node: Some(0),
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn well_formed_accepts_a_closed_tree() {
        let spans = [
            span(1, 1, None, "query", 0, Some(100)),
            span(1, 2, Some(1), "net.hop", 10, Some(40)),
            span(1, 3, Some(2), "net.serialize", 10, Some(30)),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        assert!(check_well_formed(&refs).is_ok());
    }

    #[test]
    fn well_formed_rejects_open_root_and_dangling_parent() {
        let open = [span(1, 1, None, "query", 0, None)];
        let refs: Vec<&SpanRecord> = open.iter().collect();
        assert!(check_well_formed(&refs)
            .unwrap_err()
            .contains("never closed"));

        let dangling = [
            span(1, 1, None, "query", 0, Some(10)),
            span(1, 2, Some(9), "net.hop", 1, Some(5)),
        ];
        let refs: Vec<&SpanRecord> = dangling.iter().collect();
        assert!(check_well_formed(&refs)
            .unwrap_err()
            .contains("dangling parent"));

        let two_roots = [
            span(1, 1, None, "query", 0, Some(10)),
            span(1, 2, None, "query", 0, Some(10)),
        ];
        let refs: Vec<&SpanRecord> = two_roots.iter().collect();
        assert!(check_well_formed(&refs)
            .unwrap_err()
            .contains("exactly one root"));
    }

    #[test]
    fn categorize_is_stable() {
        assert_eq!(categorize("net.hop"), Category::Network);
        assert_eq!(categorize("net.serialize"), Category::Network);
        assert_eq!(categorize("engine.rule"), Category::Join);
        assert_eq!(categorize("query.reexec"), Category::Join);
        assert_eq!(categorize("query.eq_lookup"), Category::Equivalence);
        assert_eq!(categorize("query.fetch"), Category::Storage);
        assert_eq!(categorize("query"), Category::Other);
        assert_eq!(categorize("exec"), Category::Other);
    }

    #[test]
    fn critical_path_attributes_innermost_and_sums_to_root() {
        // root [0,100]; lookup [0,10]; hop [10,80] with serialize [10,50]
        // inside it; reexec [80,100]. The serialize sub-span must not be
        // double counted: [10,50] is network (innermost net.serialize),
        // [50,80] network (net.hop), gap-free.
        let spans = [
            span(1, 1, None, "query", 0, Some(100)),
            span(1, 2, Some(1), "query.eq_lookup", 0, Some(10)),
            span(1, 3, Some(1), "net.hop", 10, Some(80)),
            span(1, 4, Some(3), "net.serialize", 10, Some(50)),
            span(1, 5, Some(1), "query.reexec", 80, Some(100)),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        let b = critical_path(&refs).unwrap();
        assert_eq!(b.network, 70);
        assert_eq!(b.equivalence, 10);
        assert_eq!(b.join, 20);
        assert_eq!(b.storage, 0);
        assert_eq!(b.other, 0);
        assert_eq!(b.total(), 100);
        assert!((b.pct(b.network) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_uncovered_time_falls_to_root_category() {
        let spans = [
            span(1, 1, None, "query", 0, Some(50)),
            span(1, 2, Some(1), "net.hop", 0, Some(20)),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        let b = critical_path(&refs).unwrap();
        assert_eq!(b.network, 20);
        assert_eq!(b.other, 30);
        assert_eq!(b.total(), 50);
    }

    #[test]
    fn duration_histograms_key_by_name_and_attr() {
        let mut s1 = span(1, 1, None, "engine.rule", 0, Some(100));
        s1.attrs.push(("rule", AttrValue::Str("r1".into())));
        let mut s2 = span(1, 2, None, "engine.rule", 0, Some(200));
        s2.attrs.push(("rule", AttrValue::Str("r2".into())));
        let open = span(1, 3, None, "engine.rule", 0, None);
        let h = duration_histograms(&[s1, s2, open]);
        assert_eq!(h["engine.rule"].count, 2);
        assert_eq!(h["engine.rule[rule=r1]"].count, 1);
        assert_eq!(h["engine.rule[rule=r1]"].max, 100);
        assert_eq!(h["engine.rule[rule=r2]"].max, 200);
    }

    #[test]
    fn spans_by_trace_groups() {
        let spans = vec![
            span(2, 1, None, "a", 0, Some(1)),
            span(1, 2, None, "b", 0, Some(1)),
            span(2, 3, Some(1), "c", 0, Some(1)),
        ];
        let g = spans_by_trace(&spans);
        assert_eq!(g.len(), 2);
        assert_eq!(g[&TraceId(2)].len(), 2);
        assert_eq!(g[&TraceId(1)].len(), 1);
    }
}
