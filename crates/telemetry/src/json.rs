//! A minimal hand-rolled JSON value type, serializer and parser.
//!
//! The workspace builds offline with zero external dependencies, so the
//! machine-readable benchmark output (`fig* --json`) serializes through
//! this module instead of serde. Only what the telemetry snapshots need:
//! objects, arrays, strings (with full escaping), integers, floats and
//! booleans. Object keys keep insertion order — callers insert in sorted
//! order when determinism matters (the snapshot code does). The parser
//! ([`Json::parse`]) exists so tools can read back their own artifacts
//! (e.g. the `bench-history` regression gate re-reading
//! `BENCH_history.json`); it accepts standard JSON, nothing more.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// An unsigned integer (storage and byte counters exceed `i64` range
    /// only in theory, but keep the type honest).
    UInt(u64),
    /// A float, emitted via Rust's shortest-round-trip formatting;
    /// non-finite values become `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a JSON document. Numbers with a fraction, exponent or minus
    /// sign that overflows parse as [`Json::Float`]; other integers as
    /// [`Json::UInt`] / [`Json::Int`]. Trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; everything else is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\x08'),
                    b'f' => out.push('\x0c'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our own output
                        // (we only \u-escape control characters); reject
                        // rather than mis-decode.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("unsupported \\u{hex} escape"))?;
                        out.push(c);
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing at
                // the next char boundary is safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    let mut float = false;
    if b.get(*pos) == Some(&b'.') {
        float = true;
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| e.to_string())
    } else if let Ok(u) = text.parse::<u64>() {
        Ok(Json::UInt(u))
    } else if let Ok(i) = text.parse::<i64>() {
        Ok(Json::Int(i))
    } else {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| e.to_string())
    }
}

impl fmt::Display for Json {
    /// Serialize to a compact single-line string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
        assert_eq!(Json::Str("héllo".into()).to_string(), "\"héllo\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::obj([
            ("a", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("b", Json::obj([("c", Json::Null)])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":{"c":null}}"#);
    }

    #[test]
    fn parse_round_trips_own_output() {
        let v = Json::obj([
            ("name", Json::Str("a \"b\"\n\\c".into())),
            ("neg", Json::Int(-42)),
            ("big", Json::UInt(u64::MAX)),
            ("pi", Json::Float(3.5)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            (
                "arr",
                Json::Arr(vec![
                    Json::UInt(1),
                    Json::Float(0.25),
                    Json::Str("x".into()),
                ]),
            ),
            ("obj", Json::obj([("k", Json::UInt(7))])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_exponents() {
        let v = Json::parse(" { \"a\" : [ 1e3 , -2.5E-1 , 10 ] } \n").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Float(1000.0));
        assert_eq!(arr[1], Json::Float(-0.25));
        assert_eq!(arr[2], Json::UInt(10));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("-").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"s":"x","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
