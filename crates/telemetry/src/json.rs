//! A minimal hand-rolled JSON value type and serializer.
//!
//! The workspace builds offline with zero external dependencies, so the
//! machine-readable benchmark output (`fig* --json`) serializes through
//! this module instead of serde. Only what the telemetry snapshots need:
//! objects, arrays, strings (with full escaping), integers, floats and
//! booleans. Object keys keep insertion order — callers insert in sorted
//! order when determinism matters (the snapshot code does).

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// An unsigned integer (storage and byte counters exceed `i64` range
    /// only in theory, but keep the type honest).
    UInt(u64),
    /// A float, emitted via Rust's shortest-round-trip formatting;
    /// non-finite values become `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Serialize to a compact single-line string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::UInt(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
        assert_eq!(Json::Str("héllo".into()).to_string(), "\"héllo\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::obj([
            ("a", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("b", Json::obj([("c", Json::Null)])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":{"c":null}}"#);
    }
}
