#![warn(missing_docs)]

//! Telemetry/observability subsystem for the provenance-compression
//! workspace.
//!
//! Every layer of the system — the network simulator, the declarative
//! networking engine, and the provenance recorders — reports into one
//! shared [`Telemetry`] registry:
//!
//! * **Counters, gauges and histograms**, keyed by `(metric, node)`.
//!   Counters are monotone `u64`s (rules fired, bytes sent, `htequi`
//!   hits); gauges are last-write-wins values (DB rows); histograms
//!   aggregate distributions (per-link queueing delay) into count / sum /
//!   min / max plus power-of-two buckets.
//! * **An event-trace ring buffer** of the most recent [`TraceEvent`]s
//!   (rule firings, message sends and drops, recorder stage calls,
//!   equivalence-key hits vs. misses, `sig` broadcasts), bounded so
//!   tracing a million-packet run costs constant memory.
//! * **Periodic snapshots on the simulated clock**: the engine calls
//!   [`Telemetry::maybe_snapshot`] as simulated time advances; each due
//!   tick freezes the registry into a [`Snapshot`] that serializes to one
//!   JSON line (hand-rolled serializer, no serde — the build is
//!   dependency-free).
//!
//! The registry is shared as a [`TelemetryHandle`]
//! (`Arc<Telemetry>` over an internal `std::sync::Mutex`), cheap to clone
//! into the simulator, the runtime and the recorders. All time is plain
//! `u64` nanoseconds of simulated time: this crate sits below
//! `dpc-netsim`, so it cannot (and need not) name `SimTime`.
//!
//! On top of the flat metrics sits **causal span tracing** (the [`span`]
//! module): head-sampled trees of timed spans whose [`SpanContext`] rides
//! every simulated message, with critical-path analysis and a Chrome
//! trace-event export ([`chrome`]) loadable in Perfetto.

pub mod chrome;
pub mod json;
pub mod span;
pub mod timeseries;

/// Well-known counter names emitted by the engine's evaluation hot path.
///
/// Counters are dynamically keyed strings; this module pins down the names
/// shared between the emitting side (`dpc-engine`) and the reading side
/// (`dpc-bench` run records, CI assertions) so they cannot drift apart.
pub mod counters {
    /// Join probes served by a secondary `(relation, positions)` hash
    /// index during compiled-plan evaluation.
    pub const INDEX_HITS: &str = "engine.index_hits";
    /// Join probes that fell back to a full table scan (no bound
    /// positions, or a degenerate index).
    pub const INDEX_MISSES: &str = "engine.index_misses";
    /// Rule plans compiled at runtime construction; emitted once when
    /// telemetry attaches.
    pub const PLANS_COMPILED: &str = "engine.plans_compiled";
    /// Static-analysis warnings accepted at runtime construction (the
    /// program built, but `dpc_ndlog::analyze` flagged W-codes); emitted
    /// once when telemetry attaches.
    pub const LINT_WARNINGS: &str = "engine.lint_warnings";
}

pub use chrome::chrome_trace;
pub use json::Json;
pub use span::{
    check_well_formed, critical_path, duration_histograms, spans_by_trace, AttrValue, Breakdown,
    Category, SpanContext, SpanId, SpanRecord, TraceId,
};
pub use timeseries::{Sampler, Series, SeriesStore, DEFAULT_SERIES_CAPACITY};

use std::collections::BTreeMap;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable shared reference to a [`Telemetry`] registry.
pub type TelemetryHandle = Arc<Telemetry>;

/// What kind of event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A rule fired in the engine.
    RuleFired,
    /// A message entered a link.
    MsgSend,
    /// A message was dropped by loss injection.
    MsgDrop,
    /// Recorder stage 1 (`on_input`) ran.
    Stage1,
    /// Recorder stage 2 (`on_rule`) ran.
    Stage2,
    /// Recorder stage 3 (`on_output`) ran.
    Stage3,
    /// An equivalence-key check hit an existing class (`htequi` hit).
    EqHit,
    /// An equivalence-key check saw a fresh class (`htequi` miss).
    EqMiss,
    /// A `sig` broadcast after a slow-table update.
    Sig,
}

impl TraceKind {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::RuleFired => "rule_fired",
            TraceKind::MsgSend => "msg_send",
            TraceKind::MsgDrop => "msg_drop",
            TraceKind::Stage1 => "stage1",
            TraceKind::Stage2 => "stage2",
            TraceKind::Stage3 => "stage3",
            TraceKind::EqHit => "eq_hit",
            TraceKind::EqMiss => "eq_miss",
            TraceKind::Sig => "sig",
        }
    }
}

/// One entry in the event-trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time, nanoseconds.
    pub at_nanos: u64,
    /// The node the event happened at, if node-local.
    pub node: Option<u32>,
    /// What happened.
    pub kind: TraceKind,
}

/// Aggregated distribution: count/sum/min/max plus power-of-two buckets
/// (bucket `i` counts values `v` with `2^(i-1) <= v < 2^i`; bucket 0
/// counts zeros).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// 65 power-of-two buckets.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 65];
        }
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Metric key: a static metric name plus an optional node scope.
type Key = (&'static str, Option<u32>);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    hists: BTreeMap<Key, Histogram>,
    trace: VecDeque<TraceEvent>,
    trace_cap: usize,
    snapshot_every_nanos: Option<u64>,
    next_snapshot_nanos: u64,
    snapshots: Vec<Snapshot>,
    /// All recorded spans, open ones with `end_ns == None`.
    spans: Vec<SpanRecord>,
    /// Span id -> index into `spans` (open and closed).
    span_index: HashMap<u64, usize>,
    /// Next span/trace id (ids are nonzero; 0 is `SpanContext::NONE`).
    next_span_id: u64,
    /// Head-based sampling period for root spans: 0 = tracing off,
    /// 1 = every root, N = one in N.
    span_sample_every: u64,
    /// Root spans requested so far (sampled or not), drives sampling.
    span_roots_seen: u64,
    /// Hard cap on stored spans: new *roots* are unsampled once reached
    /// (children of already-sampled traces still record, so no sampled
    /// tree is ever truncated mid-way).
    span_cap: usize,
    /// Time-series sampling state (see [`Telemetry::set_timeseries`]);
    /// `None` until enabled.
    sampler: Option<Sampler>,
}

/// A frozen copy of the metrics registry at one simulated instant.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated time of the snapshot, nanoseconds.
    pub at_nanos: u64,
    /// Counter values.
    pub counters: BTreeMap<(String, Option<u32>), u64>,
    /// Gauge values.
    pub gauges: BTreeMap<(String, Option<u32>), i64>,
    /// Derived ratio gauges computed from the counters at freeze time
    /// (e.g. `engine.index_hit_ratio`); only present when their
    /// denominators are nonzero.
    pub derived: BTreeMap<String, f64>,
    /// Histogram aggregates.
    pub hists: BTreeMap<(String, Option<u32>), Histogram>,
}

impl Snapshot {
    /// Serialize as one JSON object (one line of JSON-lines output).
    ///
    /// Schema: `{"type":"snapshot","t_ns":N,"counters":{...},"gauges":
    /// {...},"derived":{...},"hists":{...}}` where each metric map is
    /// keyed `name` for global metrics and `name#<node>` for per-node
    /// ones, in sorted order; `derived` holds the freeze-time ratio
    /// gauges; histogram values are
    /// `{"count":N,"sum":N,"min":N,"max":N,"mean":F}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|((name, node), v)| (render_key(name, *node), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|((name, node), v)| (render_key(name, *node), Json::Int(*v)))
                .collect(),
        );
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|((name, node), h)| {
                    (
                        render_key(name, *node),
                        Json::obj([
                            ("count", Json::UInt(h.count)),
                            ("sum", Json::UInt(h.sum)),
                            ("min", Json::UInt(h.min)),
                            ("max", Json::UInt(h.max)),
                            ("mean", Json::Float(h.mean())),
                        ]),
                    )
                })
                .collect(),
        );
        let derived = Json::Obj(
            self.derived
                .iter()
                .map(|(name, v)| (name.clone(), Json::Float(*v)))
                .collect(),
        );
        Json::obj([
            ("type", Json::Str("snapshot".into())),
            ("t_ns", Json::UInt(self.at_nanos)),
            ("counters", counters),
            ("gauges", gauges),
            ("derived", derived),
            ("hists", hists),
        ])
    }
}

fn render_key(name: &str, node: Option<u32>) -> String {
    match node {
        None => name.to_string(),
        Some(n) => format!("{name}#{n}"),
    }
}

/// The shared metrics registry + trace buffer + snapshotter.
///
/// Construct one per run, wrap it in a [`TelemetryHandle`] with
/// [`Telemetry::handle`] (or `Arc::new`), and hand clones to the
/// simulator, runtime and recorder.
#[derive(Debug)]
pub struct Telemetry {
    inner: Mutex<Inner>,
    /// Lock-free fast path for [`Telemetry::trace`]: mirrors
    /// `trace_cap > 0` so a disabled registry never takes the mutex on
    /// the per-event hot path.
    events_enabled: AtomicBool,
    /// Lock-free fast path for [`Telemetry::span_root`]: mirrors
    /// `span_sample_every > 0`. Unsampled contexts make every child-span
    /// call a no-op without consulting the registry at all.
    spans_enabled: AtomicBool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// Default capacity of the event-trace ring buffer.
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Default hard cap on stored spans (see `Inner::span_cap`).
pub const DEFAULT_SPAN_CAP: usize = 1 << 20;

impl Telemetry {
    /// A registry with the default trace capacity, span tracing disabled,
    /// and no periodic snapshotting (snapshots only on explicit
    /// [`Telemetry::snapshot`]).
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Mutex::new(Inner {
                trace_cap: DEFAULT_TRACE_CAP,
                next_span_id: 1,
                span_cap: DEFAULT_SPAN_CAP,
                ..Inner::default()
            }),
            events_enabled: AtomicBool::new(true),
            spans_enabled: AtomicBool::new(false),
        }
    }

    /// A shareable handle to a fresh registry.
    pub fn handle() -> TelemetryHandle {
        Arc::new(Telemetry::new())
    }

    /// Enable periodic snapshotting every `every_nanos` of simulated
    /// time (drives [`Telemetry::maybe_snapshot`]).
    pub fn set_snapshot_every_nanos(&self, every_nanos: u64) {
        let mut g = self.lock();
        g.snapshot_every_nanos = Some(every_nanos.max(1));
        g.next_snapshot_nanos = every_nanos.max(1);
    }

    /// Resize the trace ring buffer (drops oldest entries if shrinking).
    /// Capacity 0 disables event tracing entirely: subsequent
    /// [`Telemetry::trace`] calls return on a lock-free atomic check.
    pub fn set_trace_capacity(&self, cap: usize) {
        let mut g = self.lock();
        g.trace_cap = cap;
        while g.trace.len() > cap {
            g.trace.pop_front();
        }
        self.events_enabled.store(cap > 0, Ordering::Release);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Add `delta` to counter `(name, node)`.
    pub fn count(&self, name: &'static str, node: Option<u32>, delta: u64) {
        let mut g = self.lock();
        *g.counters.entry((name, node)).or_insert(0) += delta;
    }

    /// Set gauge `(name, node)` to `value`.
    pub fn gauge(&self, name: &'static str, node: Option<u32>, value: i64) {
        self.lock().gauges.insert((name, node), value);
    }

    /// Record `value` into histogram `(name, node)`.
    pub fn observe(&self, name: &'static str, node: Option<u32>, value: u64) {
        self.lock()
            .hists
            .entry((name, node))
            .or_default()
            .observe(value);
    }

    /// Append a trace event (oldest entries fall off past capacity).
    /// When tracing is disabled (`set_trace_capacity(0)`) this returns
    /// without touching the lock.
    pub fn trace(&self, at_nanos: u64, node: Option<u32>, kind: TraceKind) {
        if !self.events_enabled.load(Ordering::Acquire) {
            return;
        }
        let mut g = self.lock();
        if g.trace_cap == 0 {
            return;
        }
        if g.trace.len() == g.trace_cap {
            g.trace.pop_front();
        }
        g.trace.push_back(TraceEvent {
            at_nanos,
            node,
            kind,
        });
    }

    /// The current value of counter `name` summed over all node scopes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Per-node values of counter `name` (global entries excluded).
    pub fn counter_by_node(&self, name: &str) -> BTreeMap<u32, u64> {
        self.lock()
            .counters
            .iter()
            .filter_map(|((n, node), v)| (*n == name).then_some((*node, *v)))
            .filter_map(|(node, v)| node.map(|nd| (nd, v)))
            .collect()
    }

    /// A copy of the trace ring buffer, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.lock().trace.iter().copied().collect()
    }

    /// Take a snapshot now (at simulated time `at_nanos`), regardless of
    /// the periodic schedule, and return a copy of it.
    pub fn snapshot(&self, at_nanos: u64) -> Snapshot {
        let mut g = self.lock();
        let snap = freeze(&g, at_nanos);
        g.snapshots.push(snap.clone());
        snap
    }

    /// Snapshot if periodic snapshotting is enabled and simulated time
    /// has reached the next due tick. Catch-up is single: one snapshot
    /// per call even if multiple periods elapsed (the registry state in
    /// between is gone anyway).
    pub fn maybe_snapshot(&self, now_nanos: u64) {
        let mut g = self.lock();
        let Some(every) = g.snapshot_every_nanos else {
            return;
        };
        if now_nanos < g.next_snapshot_nanos {
            return;
        }
        let snap = freeze(&g, now_nanos);
        g.snapshots.push(snap);
        let periods = now_nanos / every + 1;
        g.next_snapshot_nanos = periods * every;
    }

    /// All snapshots taken so far, oldest first.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.lock().snapshots.clone()
    }

    // --- Causal span tracing -------------------------------------------

    /// Enable head-based span sampling: one in `every` root spans is
    /// sampled (1 = all); 0 disables span tracing entirely. The sampling
    /// decision is made once per root and inherited by the whole tree.
    pub fn set_span_sampling(&self, every: u64) {
        let mut g = self.lock();
        g.span_sample_every = every;
        self.spans_enabled.store(every > 0, Ordering::Release);
    }

    /// Start a root span (a new trace). Applies the sampling decision;
    /// an unsampled root returns [`SpanContext::NONE`] and records
    /// nothing. When tracing is disabled this returns on a lock-free
    /// atomic check.
    pub fn span_root(&self, name: &'static str, node: Option<u32>, at_nanos: u64) -> SpanContext {
        if !self.spans_enabled.load(Ordering::Acquire) {
            return SpanContext::NONE;
        }
        let mut g = self.lock();
        if g.span_sample_every == 0 {
            return SpanContext::NONE;
        }
        let seq = g.span_roots_seen;
        g.span_roots_seen += 1;
        if !seq.is_multiple_of(g.span_sample_every) || g.spans.len() >= g.span_cap {
            return SpanContext::NONE;
        }
        let id = g.next_span_id;
        g.next_span_id += 1;
        let ctx = SpanContext {
            trace: TraceId(id),
            span: SpanId(id),
            sampled: true,
        };
        let idx = g.spans.len();
        g.spans.push(SpanRecord {
            trace: ctx.trace,
            id: ctx.span,
            parent: None,
            name,
            node,
            start_ns: at_nanos,
            end_ns: None,
            attrs: Vec::new(),
        });
        g.span_index.insert(id, idx);
        ctx
    }

    /// Start a child span under `parent`. A no-op (returning
    /// [`SpanContext::NONE`]) when the parent is unsampled.
    pub fn span_child(
        &self,
        name: &'static str,
        node: Option<u32>,
        parent: SpanContext,
        at_nanos: u64,
    ) -> SpanContext {
        if !parent.sampled {
            return SpanContext::NONE;
        }
        let mut g = self.lock();
        let id = g.next_span_id;
        g.next_span_id += 1;
        let ctx = SpanContext {
            trace: parent.trace,
            span: SpanId(id),
            sampled: true,
        };
        let idx = g.spans.len();
        g.spans.push(SpanRecord {
            trace: parent.trace,
            id: ctx.span,
            parent: Some(parent.span),
            name,
            node,
            start_ns: at_nanos,
            end_ns: None,
            attrs: Vec::new(),
        });
        g.span_index.insert(id, idx);
        ctx
    }

    /// End span `ctx` at `at_nanos`. No-op on unsampled contexts or
    /// already-ended spans.
    pub fn span_end(&self, ctx: SpanContext, at_nanos: u64) {
        if !ctx.sampled {
            return;
        }
        let mut g = self.lock();
        if let Some(&idx) = g.span_index.get(&ctx.span.0) {
            let s = &mut g.spans[idx];
            if s.end_ns.is_none() {
                s.end_ns = Some(at_nanos.max(s.start_ns));
            }
        }
    }

    /// End the (open) root span of `trace` at `at_nanos` — used when the
    /// closer only knows the trace it belongs to, not the root's id
    /// (e.g. the engine closing an execution's root at output
    /// derivation).
    pub fn span_end_root(&self, trace: TraceId, at_nanos: u64) {
        if trace.0 == 0 {
            return;
        }
        let mut g = self.lock();
        // Root spans carry the trace id as their span id by construction.
        if let Some(&idx) = g.span_index.get(&trace.0) {
            let s = &mut g.spans[idx];
            if s.parent.is_none() && s.end_ns.is_none() {
                s.end_ns = Some(at_nanos.max(s.start_ns));
            }
        }
    }

    /// Attach a typed attribute to span `ctx` (open or closed).
    pub fn span_attr(&self, ctx: SpanContext, key: &'static str, value: AttrValue) {
        if !ctx.sampled {
            return;
        }
        let mut g = self.lock();
        if let Some(&idx) = g.span_index.get(&ctx.span.0) {
            g.spans[idx].attrs.push((key, value));
        }
    }

    /// Close every still-open span at `at_nanos`. Called when a run
    /// drains: executions killed by message loss can never close their
    /// own roots, and a trace with an open span is not well-formed.
    pub fn close_open_spans(&self, at_nanos: u64) {
        let mut g = self.lock();
        for s in g.spans.iter_mut() {
            if s.end_ns.is_none() {
                s.end_ns = Some(at_nanos.max(s.start_ns));
            }
        }
    }

    /// Number of spans still open.
    pub fn open_span_count(&self) -> usize {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.end_ns.is_none())
            .count()
    }

    /// A copy of every recorded span, in creation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Serialize every snapshot as JSON-lines (one object per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in self.lock().snapshots.iter() {
            out.push_str(&s.to_json().to_string());
            out.push('\n');
        }
        out
    }

    // --- Time-series sampling ------------------------------------------

    /// Enable time-series sampling every `every_nanos` of simulated time
    /// with per-series point capacity `capacity` (see
    /// [`timeseries::Sampler`]). Replaces any existing sampler and its
    /// accumulated series.
    pub fn set_timeseries(&self, every_nanos: u64, capacity: usize) {
        self.lock().sampler = Some(Sampler::new(every_nanos, capacity));
    }

    /// Is time-series sampling enabled?
    pub fn timeseries_enabled(&self) -> bool {
        self.lock().sampler.is_some()
    }

    /// Offer the sampler the current simulated time. If a sampling tick
    /// is due, copies every registry gauge (keyed `name` / `name#node`)
    /// plus the derived ratio gauges into the series store at the aligned
    /// tick timestamp and returns that stamp so callers can record their
    /// own layer-specific series at the same instant. Returns `None` when
    /// sampling is disabled or no tick is due.
    pub fn sample_tick(&self, now_nanos: u64) -> Option<u64> {
        let mut g = self.lock();
        let stamp = g.sampler.as_mut()?.due(now_nanos)?;
        sample_registry(&mut g, stamp);
        Some(stamp)
    }

    /// Sample the registry unconditionally at `now_nanos` (used for the
    /// final drain sample at the end of a run, so the series always end
    /// at the terminal state). Idempotent when it coincides with the last
    /// periodic tick: an equal-timestamp push replaces the last value.
    /// Returns the stamp, or `None` when sampling is disabled.
    pub fn sample_now(&self, now_nanos: u64) -> Option<u64> {
        let mut g = self.lock();
        g.sampler.as_ref()?;
        sample_registry(&mut g, now_nanos);
        Some(now_nanos)
    }

    /// Record one layer-specific sample at `stamp` (no-op when sampling
    /// is disabled). `stamp` should come from [`Telemetry::sample_tick`]
    /// / [`Telemetry::sample_now`] so all series share timestamps.
    pub fn ts_record(&self, stamp: u64, key: &str, value: f64) {
        if let Some(s) = self.lock().sampler.as_mut() {
            s.store_mut().record(key, stamp, value);
        }
    }

    /// Record a batch of layer-specific samples at `stamp` (no-op when
    /// sampling is disabled).
    pub fn ts_record_all(&self, stamp: u64, entries: impl IntoIterator<Item = (String, f64)>) {
        let mut g = self.lock();
        if let Some(s) = g.sampler.as_mut() {
            let store = s.store_mut();
            for (key, value) in entries {
                store.record(&key, stamp, value);
            }
        }
    }

    /// A copy of every recorded series as `(key, points)`, sorted by key.
    pub fn timeseries(&self) -> Vec<(String, Vec<(u64, f64)>)> {
        match self.lock().sampler.as_ref() {
            Some(s) => s
                .store()
                .iter()
                .map(|(k, series)| (k.to_string(), series.points().to_vec()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The points of the series named `key`, if recorded.
    pub fn timeseries_get(&self, key: &str) -> Option<Vec<(u64, f64)>> {
        self.lock()
            .sampler
            .as_ref()?
            .store()
            .get(key)
            .map(|s| s.points().to_vec())
    }

    /// Serialize every series as JSON-lines (see
    /// [`timeseries::SeriesStore::to_json_lines`]); empty when sampling
    /// is disabled.
    pub fn timeseries_json_lines(&self) -> String {
        match self.lock().sampler.as_ref() {
            Some(s) => s.store().to_json_lines(),
            None => String::new(),
        }
    }

    /// Serialize every series as CSV (see
    /// [`timeseries::SeriesStore::to_csv`]); empty when sampling is
    /// disabled.
    pub fn timeseries_csv(&self) -> String {
        match self.lock().sampler.as_ref() {
            Some(s) => s.store().to_csv(),
            None => String::new(),
        }
    }
}

/// Copy every registry gauge plus the derived ratio gauges into the
/// sampler's store at `stamp`. Caller has checked the sampler exists.
fn sample_registry(g: &mut Inner, stamp: u64) {
    let gauges: Vec<(String, f64)> = g
        .gauges
        .iter()
        .map(|(&(n, nd), &v)| (render_key(n, nd), v as f64))
        .collect();
    let derived = derived_from_counters(&g.counters);
    let Some(sampler) = g.sampler.as_mut() else {
        return;
    };
    let store = sampler.store_mut();
    for (key, v) in gauges {
        store.record(&key, stamp, v);
    }
    for (key, v) in derived {
        store.record(&key, stamp, v);
    }
}

fn freeze(g: &Inner, at_nanos: u64) -> Snapshot {
    Snapshot {
        at_nanos,
        counters: g
            .counters
            .iter()
            .map(|(&(n, nd), &v)| ((n.to_string(), nd), v))
            .collect(),
        gauges: g
            .gauges
            .iter()
            .map(|(&(n, nd), &v)| ((n.to_string(), nd), v))
            .collect(),
        derived: derived_from_counters(&g.counters),
        hists: g
            .hists
            .iter()
            .map(|(&(n, nd), h)| ((n.to_string(), nd), h.clone()))
            .collect(),
    }
}

/// Ratio gauges derived from raw hit/miss counter pairs, summed over all
/// node scopes. A ratio is present only when its denominator is nonzero,
/// so consumers can distinguish "no index activity" from "0% hits".
fn derived_from_counters(counters: &BTreeMap<Key, u64>) -> BTreeMap<String, f64> {
    let total = |name: &str| -> u64 {
        counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    };
    let mut out = BTreeMap::new();
    let mut ratio = |key: &str, hits_name: &str, misses_name: &str| {
        let hits = total(hits_name);
        let misses = total(misses_name);
        if hits + misses > 0 {
            out.insert(key.to_string(), hits as f64 / (hits + misses) as f64);
        }
    };
    ratio(
        "engine.index_hit_ratio",
        counters::INDEX_HITS,
        counters::INDEX_MISSES,
    );
    ratio(
        "recorder.htequi_hit_rate",
        "recorder.htequi_hits",
        "recorder.htequi_misses",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_key() {
        let t = Telemetry::new();
        t.count("rules", None, 2);
        t.count("rules", None, 3);
        t.count("rules", Some(1), 7);
        assert_eq!(t.counter_total("rules"), 12);
        assert_eq!(t.counter_by_node("rules").get(&1), Some(&7));
        assert!(!t.counter_by_node("rules").contains_key(&0));
    }

    #[test]
    fn histogram_aggregates() {
        let t = Telemetry::new();
        for v in [0u64, 1, 2, 3, 1000] {
            t.observe("delay", None, v);
        }
        let snap = t.snapshot(5);
        let h = &snap.hists[&("delay".to_string(), None)];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 512 <= 1000 < 1024
    }

    #[test]
    fn trace_ring_is_bounded() {
        let t = Telemetry::new();
        t.set_trace_capacity(3);
        for i in 0..10 {
            t.trace(i, Some(0), TraceKind::MsgSend);
        }
        let events = t.trace_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at_nanos, 7);
        assert_eq!(events[2].at_nanos, 9);
    }

    #[test]
    fn periodic_snapshots_fire_on_schedule() {
        let t = Telemetry::new();
        t.set_snapshot_every_nanos(1000);
        t.count("c", None, 1);
        t.maybe_snapshot(500); // not due
        assert!(t.snapshots().is_empty());
        t.maybe_snapshot(1000); // due exactly on the tick
        t.maybe_snapshot(1100); // not due again until 2000
        t.count("c", None, 1);
        t.maybe_snapshot(2500); // due (single catch-up)
        t.maybe_snapshot(2600); // next due is 3000
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].at_nanos, 1000);
        assert_eq!(snaps[0].counters[&("c".to_string(), None)], 1);
        assert_eq!(snaps[1].at_nanos, 2500);
        assert_eq!(snaps[1].counters[&("c".to_string(), None)], 2);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let t = Telemetry::new();
        t.count("b", Some(2), 5);
        t.count("b", None, 1);
        t.count("a", Some(10), 3);
        t.gauge("g", None, -4);
        t.observe("h", Some(0), 8);
        let line = t.snapshot(42).to_json().to_string();
        assert_eq!(
            line,
            "{\"type\":\"snapshot\",\"t_ns\":42,\
             \"counters\":{\"a#10\":3,\"b\":1,\"b#2\":5},\
             \"gauges\":{\"g\":-4},\
             \"derived\":{},\
             \"hists\":{\"h#0\":{\"count\":1,\"sum\":8,\"min\":8,\"max\":8,\"mean\":8}}}"
        );
    }

    #[test]
    fn derived_index_hit_ratio_in_snapshot() {
        let t = Telemetry::new();
        // No index activity: ratio absent, not 0/0.
        assert!(t.snapshot(1).derived.is_empty());
        t.count(counters::INDEX_HITS, Some(0), 3);
        t.count(counters::INDEX_HITS, Some(1), 3);
        t.count(counters::INDEX_MISSES, Some(0), 2);
        let snap = t.snapshot(2);
        let ratio = snap.derived["engine.index_hit_ratio"];
        assert!((ratio - 0.75).abs() < 1e-12, "got {ratio}");
        let line = snap.to_json().to_string();
        assert!(
            line.contains("\"derived\":{\"engine.index_hit_ratio\":0.75}"),
            "derived gauge rendered: {line}"
        );
    }

    #[test]
    fn sampler_copies_gauges_and_derived_on_tick() {
        let t = Telemetry::new();
        t.set_timeseries(1000, 64);
        t.gauge("engine.db_rows", Some(3), 7);
        t.count(counters::INDEX_HITS, None, 1);
        t.count(counters::INDEX_MISSES, None, 1);
        assert_eq!(t.sample_tick(999), None, "not due yet");
        assert_eq!(t.sample_tick(1234), Some(1000), "aligned stamp");
        t.ts_record(1000, "net.heap_depth", 5.0);
        t.gauge("engine.db_rows", Some(3), 9);
        assert_eq!(t.sample_tick(2000), Some(2000));
        assert_eq!(
            t.timeseries_get("engine.db_rows#3").unwrap(),
            vec![(1000, 7.0), (2000, 9.0)]
        );
        assert_eq!(
            t.timeseries_get("engine.index_hit_ratio").unwrap(),
            vec![(1000, 0.5), (2000, 0.5)]
        );
        assert_eq!(
            t.timeseries_get("net.heap_depth").unwrap(),
            vec![(1000, 5.0)]
        );
    }

    #[test]
    fn sample_now_is_idempotent_on_tick_boundary() {
        let t = Telemetry::new();
        t.set_timeseries(1000, 64);
        t.gauge("g", None, 1);
        assert_eq!(t.sample_tick(1000), Some(1000));
        t.gauge("g", None, 2);
        // A forced final sample at the same virtual instant replaces the
        // tick's value rather than duplicating the timestamp.
        assert_eq!(t.sample_now(1000), Some(1000));
        assert_eq!(t.timeseries_get("g").unwrap(), vec![(1000, 2.0)]);
    }

    #[test]
    fn timeseries_disabled_is_inert() {
        let t = Telemetry::new();
        assert!(!t.timeseries_enabled());
        t.gauge("g", None, 1);
        assert_eq!(t.sample_tick(5000), None);
        assert_eq!(t.sample_now(5000), None);
        t.ts_record(5000, "k", 1.0);
        t.ts_record_all(5000, [("k2".to_string(), 2.0)]);
        assert!(t.timeseries().is_empty());
        assert_eq!(t.timeseries_json_lines(), "");
        assert_eq!(t.timeseries_csv(), "");
    }

    #[test]
    fn json_lines_one_object_per_snapshot() {
        let t = Telemetry::new();
        t.count("x", None, 1);
        t.snapshot(1);
        t.snapshot(2);
        let rendered = t.to_json_lines();
        let lines: Vec<&str> = rendered.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"snapshot\",\"t_ns\":1,"));
        assert!(lines[1].starts_with("{\"type\":\"snapshot\",\"t_ns\":2,"));
    }

    #[test]
    fn disabled_event_tracing_records_nothing() {
        let t = Telemetry::new();
        t.set_trace_capacity(0);
        // The atomic fast path: no event is stored (and no lock taken —
        // behaviorally, the ring stays empty however many calls arrive).
        for i in 0..100 {
            t.trace(i, Some(0), TraceKind::MsgSend);
        }
        assert!(t.trace_events().is_empty());
        // Re-enabling restores recording.
        t.set_trace_capacity(2);
        t.trace(7, None, TraceKind::Sig);
        assert_eq!(t.trace_events().len(), 1);
    }

    #[test]
    fn spans_disabled_by_default() {
        let t = Telemetry::new();
        let ctx = t.span_root("exec", Some(0), 10);
        assert!(!ctx.sampled);
        assert_eq!(ctx, SpanContext::NONE);
        assert!(t.spans().is_empty());
        // Child calls off an unsampled context record nothing either.
        let c = t.span_child("net.hop", Some(0), ctx, 20);
        t.span_end(c, 30);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn span_tree_records_and_closes() {
        let t = Telemetry::new();
        t.set_span_sampling(1);
        let root = t.span_root("exec", Some(0), 100);
        assert!(root.sampled);
        let child = t.span_child("net.hop", Some(1), root, 150);
        t.span_attr(child, "link", AttrValue::Str("0->1".into()));
        t.span_end(child, 250);
        t.span_end_root(root.trace, 300);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "exec");
        assert_eq!(spans[0].end_ns, Some(300));
        assert_eq!(spans[1].parent, Some(root.span));
        assert_eq!(spans[1].end_ns, Some(250));
        assert_eq!(spans[1].attr("link"), Some(&AttrValue::Str("0->1".into())));
        let groups = spans_by_trace(&spans);
        assert_eq!(groups.len(), 1);
        assert!(check_well_formed(&groups[&root.trace]).is_ok());
    }

    #[test]
    fn head_sampling_takes_one_in_n() {
        let t = Telemetry::new();
        t.set_span_sampling(4);
        let sampled: Vec<bool> = (0..8)
            .map(|i| t.span_root("exec", None, i).sampled)
            .collect();
        assert_eq!(sampled.iter().filter(|&&s| s).count(), 2);
        assert!(sampled[0] && sampled[4]);
    }

    #[test]
    fn close_open_spans_closes_everything() {
        let t = Telemetry::new();
        t.set_span_sampling(1);
        let root = t.span_root("exec", None, 0);
        let _child = t.span_child("net.hop", None, root, 10);
        assert_eq!(t.open_span_count(), 2);
        t.close_open_spans(99);
        assert_eq!(t.open_span_count(), 0);
        assert!(t.spans().iter().all(|s| s.end_ns == Some(99)));
    }

    #[test]
    fn span_end_never_precedes_start() {
        let t = Telemetry::new();
        t.set_span_sampling(1);
        let root = t.span_root("exec", None, 50);
        t.span_end(root, 10); // clock confusion: clamp, don't invert
        assert_eq!(t.spans()[0].end_ns, Some(50));
    }

    #[test]
    fn trace_kind_names_are_stable() {
        assert_eq!(TraceKind::RuleFired.name(), "rule_fired");
        assert_eq!(TraceKind::EqMiss.name(), "eq_miss");
        assert_eq!(TraceKind::Sig.name(), "sig");
    }
}
