//! Time-series gauges sampled on the simulated clock.
//!
//! The registry's counters and gauges are point-in-time values; the
//! paper's headline results, however, are *trajectories* — storage growth
//! over simulated time (Figs 8/9/13/16) and bandwidth over time
//! (Figs 11/15). This module holds the machinery that turns the registry
//! into such trajectories:
//!
//! * A [`Series`] is a fixed-capacity buffer of `(t_ns, value)` points.
//!   When it fills up it *downsamples* by decimation: every second stored
//!   point is dropped (keeping the very first), halving occupancy while
//!   preserving the overall shape. Recent points therefore stay at full
//!   resolution and history gets progressively coarser — bounded memory
//!   for arbitrarily long runs.
//! * A [`SeriesStore`] maps string keys (`engine.table_rows#3`,
//!   `net.link_util#0->5`, …) to series, kept in a `BTreeMap` so every
//!   export is deterministically ordered.
//! * A [`Sampler`] owns a store plus a sampling cadence on the simulated
//!   clock. The event loop offers it the current virtual time
//!   ([`Sampler::due`]); when a tick is due the sampler hands back the
//!   *aligned* tick timestamp, so samples land on deterministic virtual
//!   instants regardless of the exact event times that triggered them.
//!
//! The sampler lives inside [`crate::Telemetry`] (see
//! [`crate::Telemetry::set_timeseries`]); layers record through
//! [`crate::Telemetry::ts_record`] / [`crate::Telemetry::ts_record_all`]
//! and the whole store exports as JSON-lines or CSV.

use std::collections::BTreeMap;

/// Default per-series point capacity. At a 1-second cadence this holds a
/// 17-minute run at full resolution; longer runs downsample.
pub const DEFAULT_SERIES_CAPACITY: usize = 1024;

/// A fixed-capacity time series of `(t_ns, value)` points with
/// decimation-by-2 downsampling.
///
/// Invariants: timestamps are strictly increasing (a push at the same
/// timestamp as the last point *replaces* its value — the final forced
/// sample of a run may coincide with the last periodic tick); the first
/// point ever pushed survives every decimation; the most recent push is
/// always present.
#[derive(Debug, Clone)]
pub struct Series {
    cap: usize,
    points: Vec<(u64, f64)>,
}

impl Series {
    /// An empty series holding at most `cap` points (clamped to >= 2 so
    /// first and last can always coexist).
    pub fn new(cap: usize) -> Series {
        Series {
            cap: cap.max(2),
            points: Vec::new(),
        }
    }

    /// Append a sample. Pushes at a timestamp earlier than the last
    /// stored point are ignored (the series stays monotone); a push at
    /// the same timestamp overwrites the last value.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if let Some(last) = self.points.last_mut() {
            if t_ns < last.0 {
                return;
            }
            if t_ns == last.0 {
                last.1 = value;
                return;
            }
        }
        if self.points.len() == self.cap {
            self.decimate();
        }
        self.points.push((t_ns, value));
    }

    /// Drop every second point (keeping index 0, the first sample ever),
    /// halving occupancy.
    fn decimate(&mut self) {
        let mut i = 0usize;
        self.points.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
    }

    /// The stored points, oldest first.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// A deterministic (sorted-key) collection of named [`Series`].
#[derive(Debug, Clone)]
pub struct SeriesStore {
    cap: usize,
    series: BTreeMap<String, Series>,
}

impl SeriesStore {
    /// An empty store whose series each hold at most `cap` points.
    pub fn new(cap: usize) -> SeriesStore {
        SeriesStore {
            cap: cap.max(2),
            series: BTreeMap::new(),
        }
    }

    /// Append a sample to the series named `key` (created on first use).
    pub fn record(&mut self, key: &str, t_ns: u64, value: f64) {
        match self.series.get_mut(key) {
            Some(s) => s.push(t_ns, value),
            None => {
                let mut s = Series::new(self.cap);
                s.push(t_ns, value);
                self.series.insert(key.to_string(), s);
            }
        }
    }

    /// Look up one series.
    pub fn get(&self, key: &str) -> Option<&Series> {
        self.series.get(key)
    }

    /// Iterate `(key, series)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Serialize every series as JSON-lines: one
    /// `{"type":"series","key":K,"points":[[t_ns,v],...]}` object per
    /// line, in sorted key order. Integral values render without a
    /// decimal point (Rust's shortest-round-trip float formatting), so
    /// the output is byte-deterministic for a deterministic run.
    pub fn to_json_lines(&self) -> String {
        use crate::json::Json;
        let mut out = String::new();
        for (key, s) in self.iter() {
            let points = Json::Arr(
                s.points()
                    .iter()
                    .map(|&(t, v)| Json::Arr(vec![Json::UInt(t), Json::Float(v)]))
                    .collect(),
            );
            let line = Json::obj([
                ("type", Json::Str("series".into())),
                ("key", Json::Str(key.into())),
                ("points", points),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Serialize as CSV with a `series,t_ns,value` header, series in
    /// sorted key order, points oldest first.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_ns,value\n");
        for (key, s) in self.iter() {
            for &(t, v) in s.points() {
                out.push_str(key);
                out.push(',');
                out.push_str(&t.to_string());
                out.push(',');
                out.push_str(&v.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Cadence-driven sampling state: decides *when* the next sample is due
/// on the simulated clock and owns the [`SeriesStore`] that receives it.
#[derive(Debug, Clone)]
pub struct Sampler {
    every_nanos: u64,
    next_nanos: u64,
    store: SeriesStore,
}

impl Sampler {
    /// A sampler firing every `every_nanos` of simulated time (clamped to
    /// >= 1), with per-series capacity `cap`.
    pub fn new(every_nanos: u64, cap: usize) -> Sampler {
        let every = every_nanos.max(1);
        Sampler {
            every_nanos: every,
            next_nanos: every,
            store: SeriesStore::new(cap),
        }
    }

    /// If simulated time `now_nanos` has reached the next scheduled tick,
    /// consume it and return the *aligned* tick timestamp (the largest
    /// multiple of the cadence at or before `now_nanos`). Catch-up is
    /// single, like [`crate::Telemetry::maybe_snapshot`]: one sample per
    /// call even if several periods elapsed — the state in between is
    /// gone anyway. Aligned stamps make same-cadence runs of different
    /// schemes sample at identical virtual instants, so their series are
    /// directly comparable point by point.
    pub fn due(&mut self, now_nanos: u64) -> Option<u64> {
        if now_nanos < self.next_nanos {
            return None;
        }
        let periods = now_nanos / self.every_nanos;
        self.next_nanos = (periods + 1) * self.every_nanos;
        Some(periods * self.every_nanos)
    }

    /// The sampling cadence in nanoseconds.
    pub fn every_nanos(&self) -> u64 {
        self.every_nanos
    }

    /// The underlying store.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Mutable access to the store.
    pub fn store_mut(&mut self) -> &mut SeriesStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keeps_monotone_timestamps() {
        let mut s = Series::new(8);
        s.push(10, 1.0);
        s.push(5, 9.0); // out of order: ignored
        s.push(10, 2.0); // same stamp: replaces
        s.push(20, 3.0);
        assert_eq!(s.points(), &[(10, 2.0), (20, 3.0)]);
    }

    #[test]
    fn downsampling_preserves_first_and_last() {
        let mut s = Series::new(4);
        for i in 0..100u64 {
            s.push(i * 1000, i as f64);
        }
        assert!(s.len() <= 4, "capacity respected, got {}", s.len());
        assert_eq!(s.points()[0], (0, 0.0), "first sample survives");
        assert_eq!(s.last(), Some((99_000, 99.0)), "last sample present");
        assert!(
            s.points().windows(2).all(|w| w[0].0 < w[1].0),
            "timestamps strictly increasing: {:?}",
            s.points()
        );
    }

    #[test]
    fn downsampling_coarsens_history_not_recent() {
        let mut s = Series::new(8);
        for i in 0..32u64 {
            s.push(i, i as f64);
        }
        let pts = s.points();
        // After decimations the oldest gap is wider than the newest.
        let first_gap = pts[1].0 - pts[0].0;
        let last_gap = pts[pts.len() - 1].0 - pts[pts.len() - 2].0;
        assert!(first_gap >= last_gap, "{first_gap} >= {last_gap}");
    }

    #[test]
    fn store_orders_keys_and_exports() {
        let mut st = SeriesStore::new(16);
        st.record("b", 1, 2.0);
        st.record("a", 1, 1.5);
        st.record("a", 2, 3.0);
        let keys: Vec<&str> = st.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(
            st.to_json_lines(),
            "{\"type\":\"series\",\"key\":\"a\",\"points\":[[1,1.5],[2,3]]}\n\
             {\"type\":\"series\",\"key\":\"b\",\"points\":[[1,2]]}\n"
        );
        assert_eq!(st.to_csv(), "series,t_ns,value\na,1,1.5\na,2,3\nb,1,2\n");
    }

    #[test]
    fn sampler_returns_aligned_stamps() {
        let mut s = Sampler::new(1000, 16);
        assert_eq!(s.due(999), None);
        assert_eq!(s.due(1000), Some(1000), "due exactly on the tick");
        assert_eq!(s.due(1500), None, "not due again until 2000");
        // Catch-up is single and the stamp is aligned, not the event time.
        assert_eq!(s.due(3700), Some(3000));
        assert_eq!(s.due(3800), None);
        assert_eq!(s.due(4000), Some(4000));
    }

    #[test]
    fn sampler_cadence_is_clamped() {
        let mut s = Sampler::new(0, 4);
        assert_eq!(s.every_nanos(), 1);
        assert_eq!(s.due(0), None);
        assert_eq!(s.due(1), Some(1));
    }
}
