//! The compile-time provenance rewrite (Section 6: "we add a program
//! rewrite step that rewrites each DELP into a new program that supports
//! online provenance maintenance ... at runtime").
//!
//! [`rewrite_basic`] transforms a DELP into a plain NDlog program that
//! maintains the Basic scheme (Section 4) *in the language itself*:
//!
//! * every event relation gains two meta attributes `(PLoc, PRid)` — the
//!   chain reference that the recorder-based implementation carries in
//!   its wire metadata;
//! * each original rule recomputes the reference: the head carries the
//!   executing node and the new rule-execution id, produced by the
//!   user-defined functions `f_vid` (content hash of a tuple) and `f_rid`
//!   (rule-execution hash);
//! * each original rule gains *provenance rules* deriving explicit
//!   `ruleExec_<label>_tail` / `ruleExec_<label>_mid` tuples — the rows of
//!   the Basic `ruleExec` table (the tail variant keeps the input event's
//!   vid, per Table 2).
//!
//! [`rewrite_advanced`] goes further and self-hosts the *compression* of
//! Section 5.3: events carry `(PLoc, PRid, Flag)`, rules triggered by a
//! raw input compute `Flag` through the stateful `f_existflag`
//! (equivalence-keys checking, stage 1), and the provenance rules are
//! guarded on `Flag == false` — only the first execution of a class emits
//! rows. The chained rule-execution id is recomputed deterministically by
//! `f_arid`, so compressed executions still deliver the correct shared
//! reference on their output tuples without any `hmap`.
//!
//! The rewritten programs are event-driven but no longer chains (each
//! event triggers both forwarding and provenance rules), so they validate
//! under [`Delp::new_relaxed`] rather than Definition 1. The `dpc-core`
//! test suite executes rewritten programs on the engine with the hash
//! functions registered and checks the derived rows against the native
//! `BasicRecorder` / `AdvancedRecorder` tables, hash for hash.

use dpc_common::Value;

use crate::ast::{Atom, BodyItem, CmpOp, Expr, ExprKind, Program, Rule, Term, TermKind};
use crate::delp::Delp;
use crate::keys::EquivKeys;

/// The sentinel value carried by input events' meta attributes before the
/// first rule fires (a NULL chain reference).
pub const NULL_REF: &str = "null";

/// Prefix of the derived provenance relations.
pub const RULE_EXEC_PREFIX: &str = "ruleExec_";

/// Number of meta attributes appended to each event relation.
pub const META_ARITY: usize = 2;

fn var(name: impl Into<String>) -> Term {
    Term::var(name)
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::call(name, args)
}

fn sconst(s: &str) -> Expr {
    Expr::cnst(Value::Str(s.to_string()))
}

/// Fresh meta variable names that cannot collide with user variables
/// (scans the program once and extends with underscores if needed).
fn meta_names(program: &Program) -> (String, String, String, String) {
    let mut taken = std::collections::BTreeSet::new();
    for r in &program.rules {
        for a in std::iter::once(&r.head).chain(r.body.iter().filter_map(|b| match b {
            BodyItem::Atom(a) => Some(a),
            _ => None,
        })) {
            for v in a.vars() {
                taken.insert(v.to_string());
            }
        }
    }
    let fresh = |base: &str| {
        let mut name = base.to_string();
        while taken.contains(&name) {
            name.push('_');
        }
        name
    };
    (fresh("PLOC"), fresh("PRID"), fresh("RIDNEW"), fresh("VE"))
}

/// Rewrite a DELP into the self-hosted Basic-provenance program.
pub fn rewrite_basic(delp: &Delp) -> Program {
    let (ploc, prid, rid_new, ve) = meta_names(delp.program());
    let mut rules = Vec::new();

    for rule in delp.rules() {
        let event = rule.event().expect("validated DELP").clone();
        let conditions: Vec<BodyItem> = rule.body.iter().skip(1).cloned().collect();

        // Meta-extended event atom.
        let mut ev_meta = event.clone();
        ev_meta.args.push(var(&ploc));
        ev_meta.args.push(var(&prid));

        // Event-vid assignment: hash of the *original* event tuple.
        let mut ve_args = vec![sconst(&event.rel)];
        ve_args.extend(event.args.iter().map(term_to_expr));
        let assign_ve = BodyItem::assign(ve.clone(), call("f_vid", ve_args));

        // Slow-tuple vid expressions, in body order.
        let slow_atoms: Vec<&Atom> = rule.condition_atoms().collect();
        let slow_vid_exprs: Vec<Expr> = slow_atoms
            .iter()
            .map(|a| {
                let mut args = vec![sconst(&a.rel)];
                args.extend(a.args.iter().map(term_to_expr));
                call("f_vid", args)
            })
            .collect();

        // RID := f_rid(label, loc, VE, slow vids...) — matches the
        // ExSPAN/Basic rid hash exactly.
        let loc_expr = term_to_expr(event.args.first().expect("events have a location"));
        let mut rid_args = vec![sconst(&rule.label), loc_expr.clone(), Expr::var(ve.clone())];
        rid_args.extend(slow_vid_exprs.iter().cloned());
        let assign_rid = BodyItem::assign(rid_new.clone(), call("f_rid", rid_args));

        // The rewritten forwarding rule: head carries (loc, RID).
        let mut head_meta = rule.head.clone();
        head_meta.args.push(term_to_expr_term(&loc_expr));
        head_meta.args.push(var(&rid_new));
        let mut body = vec![BodyItem::Atom(ev_meta.clone())];
        body.extend(conditions.iter().cloned());
        body.push(assign_ve.clone());
        body.push(assign_rid.clone());
        rules.push(Rule::new(rule.label.clone(), head_meta, body));

        // Provenance rules: the Basic ruleExec rows. Two variants because
        // the chain tail additionally stores the input event's vid
        // (Table 2) — selected by whether the incoming reference is NULL.
        for (variant, keep_event_vid, guard) in
            [("tail", true, CmpOp::Eq), ("mid", false, CmpOp::Ne)]
        {
            // ruleExec_<label>_<variant>(@L, RID, VE?, Vslow..., PLoc, PRid)
            let mut h_args: Vec<Term> = vec![term_to_expr_term(&loc_expr), var(&rid_new)];
            if keep_event_vid {
                h_args.push(var(&ve));
            }
            let mut body = vec![BodyItem::Atom(ev_meta.clone())];
            body.extend(conditions.iter().cloned());
            body.push(assign_ve.clone());
            body.push(assign_rid.clone());
            for (k, e) in slow_vid_exprs.iter().enumerate() {
                let v = format!("{ve}S{k}");
                body.push(BodyItem::assign(v.clone(), e.clone()));
                h_args.push(var(v));
            }
            h_args.push(var(&ploc));
            h_args.push(var(&prid));
            body.push(BodyItem::constraint(
                Expr::var(prid.clone()),
                guard,
                sconst(NULL_REF),
            ));
            rules.push(Rule::new(
                format!("{}_{variant}", rule.label),
                Atom::new(
                    format!("{RULE_EXEC_PREFIX}{}_{variant}", rule.label),
                    h_args,
                ),
                body,
            ));
        }
    }

    Program { rules }
}

/// Rewrite a DELP into the self-hosted Advanced-compression program.
///
/// Meta attributes on event relations: `(PLoc, PRid, Flag)`. Rules come
/// in `_in` variants (triggered by raw inputs, `PRid == "null"`; they run
/// the stage-1 equivalence-keys check via `f_existflag`) and `_fwd`
/// variants (triggered by intermediate events; they propagate the flag),
/// each with a provenance rule guarded on `Flag == false` deriving the
/// `ruleExecA_<label>_{tail,mid}` rows of the Advanced table (slow vids
/// only, per Table 3).
pub fn rewrite_advanced(delp: &Delp, keys: &EquivKeys) -> Program {
    let (ploc, prid, rid_new, _ve) = meta_names(delp.program());
    let flag = {
        // One more fresh name, disjoint from the others.
        let mut f = "FLAG".to_string();
        while f == ploc || f == prid || f == rid_new {
            f.push('_');
        }
        f
    };
    let mut rules = Vec::new();

    for rule in delp.rules() {
        let event = rule.event().expect("validated DELP").clone();
        let conditions: Vec<BodyItem> = rule.body.iter().skip(1).cloned().collect();
        let loc_expr = term_to_expr(event.args.first().expect("events have a location"));
        let is_input_rel = event.rel == delp.input_event();

        // Meta-extended event atom.
        let mut ev_meta = event.clone();
        ev_meta.args.push(var(&ploc));
        ev_meta.args.push(var(&prid));
        ev_meta.args.push(var(&flag));

        // Slow-tuple vid expressions, in body order.
        let slow_atoms: Vec<&Atom> = rule.condition_atoms().collect();
        let slow_vid_exprs: Vec<Expr> = slow_atoms
            .iter()
            .map(|a| {
                let mut args = vec![sconst(&a.rel)];
                args.extend(a.args.iter().map(term_to_expr));
                call("f_vid", args)
            })
            .collect();

        // RID := f_arid(label, PLoc, PRid, slow vids...) — the chained
        // Advanced rule-execution id, recomputable by every execution.
        let mut rid_args = vec![
            sconst(&rule.label),
            Expr::var(ploc.clone()),
            Expr::var(prid.clone()),
        ];
        rid_args.extend(slow_vid_exprs.iter().cloned());
        let assign_rid = BodyItem::assign(rid_new.clone(), call("f_arid", rid_args));

        // Variants: `_in` fires on raw inputs (computes the flag via the
        // stage-1 check), `_fwd` on intermediate events (propagates it).
        for (variant, input_side) in [("in", true), ("fwd", false)] {
            if input_side && !is_input_rel {
                continue; // only the input relation receives raw events
            }
            let guard = BodyItem::constraint(
                Expr::var(prid.clone()),
                if input_side { CmpOp::Eq } else { CmpOp::Ne },
                sconst(NULL_REF),
            );
            // The flag variable used downstream of this variant.
            let out_flag = if input_side {
                format!("{flag}2")
            } else {
                flag.clone()
            };
            let mut common = vec![BodyItem::Atom(ev_meta.clone())];
            common.extend(conditions.iter().cloned());
            common.push(guard);
            if input_side {
                // Stage 1: equivalence-keys checking at the input node.
                // Arguments: the number of key attributes, the location,
                // the key valuation, then the full event (so the check is
                // idempotent for one event even though both the forwarding
                // and the provenance variant evaluate it).
                let key_attrs: Vec<Expr> = keys
                    .indices()
                    .iter()
                    .filter(|&&i| i != 0)
                    .map(|&i| term_to_expr(&event.args[i]))
                    .collect();
                let mut args = vec![
                    Expr::cnst(Value::Int(key_attrs.len() as i64)),
                    loc_expr.clone(),
                ];
                args.extend(key_attrs);
                args.extend(event.args.iter().map(term_to_expr));
                common.push(BodyItem::assign(
                    out_flag.clone(),
                    call("f_existflag", args),
                ));
            }
            common.push(assign_rid.clone());

            // Forwarding variant.
            let mut head_meta = rule.head.clone();
            head_meta.args.push(term_to_expr_term(&loc_expr));
            head_meta.args.push(var(&rid_new));
            head_meta.args.push(var(&out_flag));
            rules.push(Rule::new(
                format!("{}_{variant}", rule.label),
                head_meta,
                common.clone(),
            ));

            // Provenance variant: only uncompressed executions emit rows.
            let mut h_args: Vec<Term> = vec![term_to_expr_term(&loc_expr), var(&rid_new)];
            let mut body = common.clone();
            for (k, e) in slow_vid_exprs.iter().enumerate() {
                let v = format!("{rid_new}S{k}");
                body.push(BodyItem::assign(v.clone(), e.clone()));
                h_args.push(var(v));
            }
            h_args.push(var(&ploc));
            h_args.push(var(&prid));
            body.push(BodyItem::constraint(
                Expr::var(out_flag.clone()),
                CmpOp::Eq,
                Expr::cnst(Value::Bool(false)),
            ));
            let prov_variant = if input_side { "tail" } else { "mid" };
            rules.push(Rule::new(
                format!("{}_{variant}_prov", rule.label),
                Atom::new(format!("ruleExecA_{}_{prov_variant}", rule.label), h_args),
                body,
            ));
        }
    }

    Program { rules }
}

fn term_to_expr(t: &Term) -> Expr {
    match &t.kind {
        TermKind::Var(v) => Expr::var(v.clone()),
        TermKind::Const(c) => Expr::cnst(c.clone()),
    }
}

fn term_to_expr_term(e: &Expr) -> Term {
    match &e.kind {
        ExprKind::Var(v) => Term::var(v.clone()),
        ExprKind::Const(c) => Term::cnst(c.clone()),
        other => unreachable!("location expressions are terms, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::programs;

    fn rewritten() -> Program {
        rewrite_basic(&programs::packet_forwarding())
    }

    #[test]
    fn rewrite_produces_three_rules_per_original() {
        let p = rewritten();
        // r1, r1_tail, r1_mid, r2, r2_tail, r2_mid.
        assert_eq!(p.rules.len(), 6);
        let labels: Vec<_> = p.rules.iter().map(|r| r.label.clone()).collect();
        assert_eq!(
            labels,
            vec!["r1", "r1_tail", "r1_mid", "r2", "r2_tail", "r2_mid"]
        );
    }

    #[test]
    fn rewritten_program_round_trips_through_the_parser() {
        let p = rewritten();
        let text = p.to_string();
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, reparsed);
    }

    #[test]
    fn event_relations_gain_meta_attributes() {
        let p = rewritten();
        let r1 = p.rule("r1").unwrap();
        // packet had 4 attributes; the rewritten event and head have 6.
        assert_eq!(r1.event().unwrap().arity(), 4 + META_ARITY);
        assert_eq!(r1.head.arity(), 4 + META_ARITY);
        // recv too: the output tuple carries its prov reference inline.
        let r2 = p.rule("r2").unwrap();
        assert_eq!(r2.head.arity(), 4 + META_ARITY);
    }

    #[test]
    fn tail_variant_keeps_the_event_vid() {
        let p = rewritten();
        let tail = p.rule("r1_tail").unwrap();
        let mid = p.rule("r1_mid").unwrap();
        // tail: (@L, RID, VE, Vslow, PLoc, PRid) = 6; mid drops VE = 5.
        assert_eq!(tail.head.arity(), 6);
        assert_eq!(mid.head.arity(), 5);
        // Guards select on the NULL sentinel.
        let tail_guard = tail.constraints().next().unwrap();
        assert_eq!(tail_guard.1, CmpOp::Eq);
        let mid_guard = mid.constraints().next().unwrap();
        assert_eq!(mid_guard.1, CmpOp::Ne);
    }

    #[test]
    fn meta_variables_avoid_collisions() {
        // A program already using PLOC forces renaming.
        let src = "r1 out(@X, PLOC) :- e(@X, PLOC), s(@X, X).";
        let delp = crate::Delp::new(parse_program(src).unwrap()).unwrap();
        let p = rewrite_basic(&delp);
        let r1 = p.rule("r1").unwrap();
        let ev = r1.event().unwrap();
        // The appended meta attribute is PLOC_ (renamed), not PLOC.
        assert_eq!(ev.args[ev.arity() - 2], Term::var("PLOC_"));
    }

    #[test]
    fn advanced_rewrite_structure() {
        let keys = crate::keys::equivalence_keys(&programs::packet_forwarding());
        let p = rewrite_advanced(&programs::packet_forwarding(), &keys);
        // Both rules' event relation is `packet` — the input relation —
        // so both get in/fwd forwarding variants plus a prov rule each
        // (a raw packet injected at its own destination triggers r2
        // directly): 4 rules per original.
        assert_eq!(p.rules.len(), 8);
        let labels: Vec<_> = p.rules.iter().map(|r| r.label.clone()).collect();
        assert_eq!(
            labels,
            vec![
                "r1_in",
                "r1_in_prov",
                "r1_fwd",
                "r1_fwd_prov",
                "r2_in",
                "r2_in_prov",
                "r2_fwd",
                "r2_fwd_prov"
            ]
        );
        // Events and heads gained three meta attributes.
        let r1 = p.rule("r1_in").unwrap();
        assert_eq!(r1.event().unwrap().arity(), 4 + 3);
        assert_eq!(r1.head.arity(), 4 + 3);
        // The input variant runs the stage-1 check; forwarders do not.
        let has_check = |label: &str| {
            p.rule(label)
                .unwrap()
                .assignments()
                .any(|(_, e)| matches!(&e.kind, ExprKind::Call(n, _) if n == "f_existflag"))
        };
        assert!(has_check("r1_in"));
        assert!(has_check("r1_in_prov"));
        assert!(!has_check("r1_fwd"));
        assert!(!has_check("r2_fwd"));
        // Provenance rules are guarded on Flag == false.
        let guard_count = p
            .rule("r1_fwd_prov")
            .unwrap()
            .constraints()
            .filter(|(_, _, r)| matches!(&r.kind, ExprKind::Const(Value::Bool(false))))
            .count();
        assert_eq!(guard_count, 1);
        // It still parses and validates relaxed.
        let text = p.to_string();
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, reparsed);
        assert!(crate::Delp::new_relaxed(p).is_ok());
    }

    #[test]
    fn rewritten_program_validates_relaxed() {
        let p = rewritten();
        let relaxed = crate::Delp::new_relaxed(p).unwrap();
        assert_eq!(relaxed.input_event(), "packet");
        assert!(relaxed.is_output("recv"));
        assert!(relaxed.is_output("ruleExec_r1_tail"));
        assert!(relaxed.is_output("ruleExec_r2_mid"));
        // Strict DELP validation rightly rejects it (branching rules).
        assert!(crate::Delp::new(rewritten()).is_err());
    }
}
