#![warn(missing_docs)]

//! NDlog language frontend.
//!
//! This crate is the compile-time half of the paper:
//!
//! * [`lexer`] / [`parser`] — a full text frontend for the Network Datalog
//!   (NDlog) dialect the paper uses, so programs like Figure 1 (packet
//!   forwarding) and Figure 19 (DNS resolution) can be written as source
//!   text. Every token and AST node carries a [`Span`] back into the
//!   source.
//! * [`ast`] — the program representation: rules, atoms, arithmetic
//!   constraints, assignments and user-defined function calls.
//! * [`delp`] — validation of the *distributed event-driven linear program*
//!   restrictions (Definition 1) and classification of relations into input
//!   events, intermediate events, slow-changing relations and output
//!   relations.
//! * [`analyze()`] / [`diag`] — the semantic analyzer: DELP validation plus
//!   advisory passes (unused variables, locality, dead rules, attribute
//!   kind inference, equivalence-key coverage), all reported as typed
//!   [`Diagnostic`]s with stable codes and rustc-style source excerpts.
//! * [`depgraph`] — the attribute-level dependency graph of Section 5.2.
//! * [`keys`] — the `GetEquiKeys` static analysis (Figure 5) computing the
//!   equivalence keys of the input event relation, plus runtime extraction
//!   of an event tuple's equivalence-key valuation.
//!
//! # Example
//!
//! ```
//! use dpc_ndlog::{parse_program, Delp, keys::equivalence_keys};
//!
//! let src = r#"
//!     r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
//!     r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
//! "#;
//! let program = parse_program(src).unwrap();
//! let delp = Delp::new(program).unwrap();
//! let keys = equivalence_keys(&delp);
//! // (packet:0, packet:2) — location and destination (Section 5.2).
//! assert_eq!(keys.indices(), &[0, 2]);
//! ```
//!
//! # Diagnostics
//!
//! ```
//! use dpc_ndlog::{analyze, parse_program, Code, Mode};
//!
//! let program = parse_program("r1 out(@X, Y) :- e(@X, Y), s(@X, Z).").unwrap();
//! let analysis = analyze(&program, Mode::Strict);
//! assert_eq!(analysis.diagnostics[0].code, Code::W0201); // `Z` never used
//! ```

mod analyze;
pub mod ast;
pub mod delp;
pub mod depgraph;
pub mod diag;
pub mod keys;
pub mod lexer;
pub mod parser;
pub mod programs;
pub mod rewrite;
pub mod span;

pub use analyze::{analyze, analyze_structure, Analysis, Mode, RelationInfo, TypeKind};
pub use ast::{Atom, BinOp, BodyItem, CmpOp, Expr, ExprKind, Program, Rule, Term, TermKind};
pub use delp::Delp;
pub use depgraph::DepGraph;
pub use diag::{render_parse_error, Code, Diagnostic, Label, Severity};
pub use keys::{equivalence_keys, equivalence_keys_with_graph, join_key_positions, EquivKeys};
pub use parser::parse_program;
pub use span::Span;
