//! Equivalence-key identification (`GetEquiKeys`, Figure 5) and runtime
//! key extraction.
//!
//! The equivalence keys of a DELP are the attributes of the input event
//! relation whose values determine the shape of the provenance tree: the
//! input location (always) plus every event attribute that reaches an
//! attribute of a slow-changing relation in the dependency graph
//! (Definition 3). Two input events that agree on the keys generate
//! equivalent provenance trees (Theorem 1), which is what lets the runtime
//! detect tree equivalence by hashing a few attribute values instead of
//! comparing trees node by node.

use dpc_common::{EqKeyHash, Error, Result, Tuple, Value};

use crate::ast::{BodyItem, Rule, TermKind};
use crate::delp::Delp;
use crate::depgraph::DepGraph;

/// Per-condition-atom join-key positions: for each condition atom of
/// `rule`, in body order, the argument positions whose value is fixed by
/// the time the atom joins — constants, variables bound by the event atom,
/// by earlier condition atoms, or by assignments appearing earlier in the
/// body. These are the positions a secondary index can be keyed on
/// (the `joinSAttr` static analysis of §5.2, reused by the engine's rule
/// compiler); positions are ascending. An empty inner vector means the
/// atom has no bound positions and can only be joined by scanning.
pub fn join_key_positions(rule: &Rule) -> Vec<Vec<usize>> {
    fn bind_atom_vars<'a>(
        atom: &'a crate::ast::Atom,
        bound: &mut std::collections::HashSet<&'a str>,
    ) {
        for t in &atom.args {
            if let TermKind::Var(v) = &t.kind {
                bound.insert(v.as_str());
            }
        }
    }
    let mut bound: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut seen_event = false;
    for item in &rule.body {
        match item {
            BodyItem::Atom(atom) => {
                if !seen_event {
                    // First relational atom is the triggering event: all its
                    // variables are bound before any join runs.
                    seen_event = true;
                    bind_atom_vars(atom, &mut bound);
                    continue;
                }
                let key = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match &t.kind {
                        TermKind::Const(_) => true,
                        TermKind::Var(v) => bound.contains(v.as_str()),
                    })
                    .map(|(p, _)| p)
                    .collect();
                out.push(key);
                bind_atom_vars(atom, &mut bound);
            }
            BodyItem::Constraint { .. } => {}
            BodyItem::Assign { var, .. } => {
                bound.insert(var.as_str());
            }
        }
    }
    out
}

/// The equivalence keys of a DELP's input event relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivKeys {
    rel: String,
    indices: Vec<usize>,
}

/// Run `GetEquiKeys` (Figure 5): compute the equivalence keys of the input
/// event relation of `delp`.
pub fn equivalence_keys(delp: &Delp) -> EquivKeys {
    let graph = DepGraph::build(delp);
    equivalence_keys_with_graph(delp, &graph)
}

/// As [`equivalence_keys`], but reusing an already-built dependency graph.
pub fn equivalence_keys_with_graph(delp: &Delp, graph: &DepGraph) -> EquivKeys {
    let rel = delp.input_event().to_string();
    let arity = delp.input_event_arity();
    let mut indices = vec![0]; // the input location is always a key
    for i in 1..arity {
        if graph.reaches_slow(&(rel.clone(), i)) {
            indices.push(i);
        }
    }
    EquivKeys { rel, indices }
}

impl EquivKeys {
    /// Construct keys directly (mainly for tests and hand-built programs).
    pub fn new(rel: impl Into<String>, indices: Vec<usize>) -> EquivKeys {
        EquivKeys {
            rel: rel.into(),
            indices,
        }
    }

    /// The input event relation the keys apply to.
    pub fn rel(&self) -> &str {
        &self.rel
    }

    /// Key attribute indices, ascending; index 0 is always present.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Project an input event tuple onto the key attributes.
    pub fn project<'t>(&self, event: &'t Tuple) -> Result<Vec<&'t Value>> {
        if event.rel() != self.rel {
            return Err(Error::Schema(format!(
                "expected event of relation `{}`, got `{}`",
                self.rel,
                event.rel()
            )));
        }
        self.indices
            .iter()
            .map(|&i| {
                event.args().get(i).ok_or_else(|| {
                    Error::Schema(format!(
                        "event {event} has no attribute {i} required by equivalence keys"
                    ))
                })
            })
            .collect()
    }

    /// Hash the key valuation of `event` — the value stored in `htequi` and
    /// used as the `hmap` key in the online compression scheme (§5.3).
    pub fn hash(&self, event: &Tuple) -> Result<EqKeyHash> {
        let vals = self.project(event)?;
        let mut buf = Vec::with_capacity(8 + vals.len() * 12);
        buf.extend_from_slice(&(self.rel.len() as u32).to_be_bytes());
        buf.extend_from_slice(self.rel.as_bytes());
        for (i, v) in self.indices.iter().zip(vals) {
            buf.extend_from_slice(&(*i as u32).to_be_bytes());
            v.encode_into(&mut buf);
        }
        Ok(EqKeyHash::of_bytes(&buf))
    }

    /// Are two event tuples equivalent w.r.t. these keys (Definition 2)?
    pub fn equivalent(&self, a: &Tuple, b: &Tuple) -> Result<bool> {
        Ok(self.project(a)? == self.project(b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delp::Delp;
    use crate::parser::parse_program;
    use dpc_common::{NodeId, Tuple};

    const FORWARDING: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    "#;

    const DNS: &str = r#"
        r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
        r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
            nameServer(@X, DM, SV), f_isSubDomain(DM, URL) == true.
        r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
            addressRecord(@X, URL, IPADDR).
        r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
    "#;

    fn keys(src: &str) -> EquivKeys {
        equivalence_keys(&Delp::new(parse_program(src).unwrap()).unwrap())
    }

    fn packet(loc: u32, src: u32, dst: u32, payload: &str) -> Tuple {
        Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(loc)),
                Value::Addr(NodeId(src)),
                Value::Addr(NodeId(dst)),
                Value::str(payload),
            ],
        )
    }

    #[test]
    fn forwarding_keys_match_paper() {
        // Section 5.2: GetEquiKeys identifies (packet:0, packet:2).
        let k = keys(FORWARDING);
        assert_eq!(k.rel(), "packet");
        assert_eq!(k.indices(), &[0, 2]);
    }

    #[test]
    fn dns_keys_are_location_and_url() {
        let k = keys(DNS);
        assert_eq!(k.rel(), "url");
        // url(@HST, URL, RQID): HST joins rootServer (slow), URL reaches
        // nameServer/addressRecord; RQID never joins slow state.
        assert_eq!(k.indices(), &[0, 1]);
    }

    #[test]
    fn equivalent_events_same_hash() {
        let k = keys(FORWARDING);
        let a = packet(1, 1, 3, "data");
        let b = packet(1, 2, 3, "url"); // differs only on non-key attrs
        assert!(k.equivalent(&a, &b).unwrap());
        assert_eq!(k.hash(&a).unwrap(), k.hash(&b).unwrap());
    }

    #[test]
    fn non_equivalent_events_different_hash() {
        let k = keys(FORWARDING);
        let a = packet(1, 1, 3, "data");
        let b = packet(1, 1, 2, "data"); // different destination (key)
        let c = packet(2, 1, 3, "data"); // different location (key)
        assert!(!k.equivalent(&a, &b).unwrap());
        assert!(!k.equivalent(&a, &c).unwrap());
        assert_ne!(k.hash(&a).unwrap(), k.hash(&b).unwrap());
        assert_ne!(k.hash(&a).unwrap(), k.hash(&c).unwrap());
    }

    #[test]
    fn wrong_relation_rejected() {
        let k = keys(FORWARDING);
        let t = Tuple::new("recv", vec![Value::Addr(NodeId(1))]);
        assert!(k.hash(&t).is_err());
        assert!(k.project(&t).is_err());
    }

    #[test]
    fn short_tuple_rejected() {
        let k = keys(FORWARDING);
        let t = Tuple::new("packet", vec![Value::Addr(NodeId(1))]);
        assert!(k.hash(&t).is_err());
    }

    #[test]
    fn key_hash_binds_attribute_positions() {
        // Key hashing must distinguish which attribute carried a value, not
        // just the multiset of values.
        let k1 = EquivKeys::new("e", vec![0, 1]);
        let k2 = EquivKeys::new("e", vec![0, 2]);
        let t = Tuple::new(
            "e",
            vec![Value::Addr(NodeId(1)), Value::Int(5), Value::Int(5)],
        );
        // Same projected values (n1, 5) but different key positions.
        assert_ne!(k1.hash(&t).unwrap(), k2.hash(&t).unwrap());
    }

    #[test]
    fn program_without_slow_joins_keys_only_location() {
        let src = "r1 out(@X, Y) :- e(@X, Y), s(@X, X).";
        // Y never touches slow state; only location is a key.
        let k = keys(src);
        assert_eq!(k.indices(), &[0]);
    }

    #[test]
    fn join_key_positions_forwarding() {
        let p = parse_program(FORWARDING).unwrap();
        // r1: event packet(@L,S,D,DT) binds all vars; route(@L,D,N) is
        // bound on positions 0 (L) and 1 (D), N is free.
        assert_eq!(join_key_positions(p.rule("r1").unwrap()), vec![vec![0, 1]]);
        // r2 has no condition atoms.
        assert!(join_key_positions(p.rule("r2").unwrap()).is_empty());
    }

    #[test]
    fn join_key_positions_dns() {
        let p = parse_program(DNS).unwrap();
        // r2: nameServer(@X, DM, SV) — only X is bound by the event.
        assert_eq!(join_key_positions(p.rule("r2").unwrap()), vec![vec![0]]);
        // r3: addressRecord(@X, URL, IPADDR) — X and URL bound.
        assert_eq!(join_key_positions(p.rule("r3").unwrap()), vec![vec![0, 1]]);
    }

    #[test]
    fn join_key_positions_counts_consts_assigns_and_earlier_atoms() {
        let src = r#"
            r1 out(@X, Z) :- e(@X), Y := 7, s(@X, Y, "tag", W), t(@W, Z).
        "#;
        let p = parse_program(src).unwrap();
        let keys = join_key_positions(&p.rules[0]);
        // s: X (event), Y (assigned), "tag" (const) bound; W free.
        // t: W bound by the earlier s atom; Z free.
        assert_eq!(keys, vec![vec![0, 1, 2], vec![0]]);
    }

    #[test]
    fn transitive_reachability_adds_keys() {
        // Y does not join slow state in rule 1, but flows into the head and
        // joins slow state in rule 2 — so it must be a key.
        let src = r#"
            r1 mid(@X, Y) :- e(@X, Y), s1(@X, X).
            r2 out(@X, Y) :- mid(@X, Y), s2(@X, Y).
        "#;
        let k = keys(src);
        assert_eq!(k.indices(), &[0, 1]);
    }
}
