//! Semantic analysis for NDlog programs: DELP validation (Definition 1),
//! safety and consistency checks, and advisory lints — all reported as
//! typed [`Diagnostic`]s with stable codes and source spans.
//!
//! The pipeline has two layers:
//!
//! 1. [`analyze_structure`] runs the *structural* checks (`E01xx`): the
//!    conditions of Definition 1, range restriction, arity consistency and
//!    relation classification sanity. [`crate::delp::Delp`] builds on this
//!    layer, so `Delp::new` and the analyzer can never disagree.
//! 2. [`analyze`] additionally runs the *advisory* passes (`W02xx`) on
//!    structurally sound programs: unused / unbound variables, locality of
//!    condition atoms, dead-rule reachability, shadowed assignments,
//!    attribute type-kind inference, and equivalence-key coverage (a key
//!    set covering every event attribute means no two events are ever
//!    equivalent, so provenance compression cannot help).
//!
//! Under [`Mode::Relaxed`] (used for derived programs such as the output
//! of [`crate::rewrite`]), the strict-only conditions of Definition 1
//! (E0104, E0105, E0107) are downgraded to warnings instead of dropped,
//! so `Delp::new_relaxed` can surface what it tolerates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dpc_common::Value;

use crate::ast::{Atom, BodyItem, Expr, ExprKind, Program, Term};
use crate::delp::Delp;
use crate::diag::{Code, Diagnostic, Label};
use crate::keys::equivalence_keys;
use crate::span::Span;

/// Which rule set to validate against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Full Definition 1: consecutive rules must be dependent and head
    /// relations may only appear as events. User-written DELPs.
    Strict,
    /// For derived programs (e.g. the provenance rewrite output): the
    /// strict-only conditions are reported as warnings, not errors.
    Relaxed,
}

impl Mode {
    fn is_strict(self) -> bool {
        matches!(self, Mode::Strict)
    }

    /// Keep `d` as-is under [`Mode::Strict`]; downgrade it to a warning
    /// under [`Mode::Relaxed`].
    fn apply(self, d: Diagnostic) -> Diagnostic {
        if self.is_strict() {
            d
        } else {
            d.warning()
        }
    }
}

/// The value kind an attribute is inferred to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// No evidence either way.
    Unknown,
    /// A node address ([`Value::Addr`]); every location specifier is one.
    Addr,
    /// An integer ([`Value::Int`]).
    Int,
    /// A string ([`Value::Str`]).
    Str,
    /// A boolean ([`Value::Bool`]).
    Bool,
    /// Conflicting evidence (reported as [`Code::W0208`]).
    Conflict,
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeKind::Unknown => "unknown",
            TypeKind::Addr => "address",
            TypeKind::Int => "integer",
            TypeKind::Str => "string",
            TypeKind::Bool => "boolean",
            TypeKind::Conflict => "conflicting",
        })
    }
}

fn kind_of(v: &Value) -> TypeKind {
    match v {
        Value::Addr(_) => TypeKind::Addr,
        Value::Int(_) => TypeKind::Int,
        Value::Str(_) => TypeKind::Str,
        Value::Bool(_) => TypeKind::Bool,
    }
}

/// What the analyzer inferred about one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInfo {
    /// Arity (maximum seen, should be unique in valid programs).
    pub arity: usize,
    /// Inferred value kind per attribute position.
    pub kinds: Vec<TypeKind>,
}

/// The result of a full [`analyze`] run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings: structural errors first, then advisory warnings.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-relation arity and attribute kind inference.
    pub relations: BTreeMap<String, RelationInfo>,
}

impl Analysis {
    /// Does the analysis contain any error-severity diagnostic?
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    /// Diagnostics carrying a particular code.
    pub fn by_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }
}

/// Run the full analysis pipeline over `program`.
///
/// Structural checks always run; the advisory passes additionally run when
/// the program is structurally sound (they rely on the classification a
/// valid DELP provides). Attribute kind inference always runs.
pub fn analyze(program: &Program, mode: Mode) -> Analysis {
    let mut diagnostics = analyze_structure(program, mode);
    let (relations, mut kind_diags) = infer_kinds(program);
    if !diagnostics.iter().any(Diagnostic::is_error) {
        let delp = Delp::from_parts(program.clone(), mode.is_strict());
        rule_passes(&delp, &mut diagnostics);
        reachability_pass(&delp, &mut diagnostics);
        key_coverage_pass(&delp, &mut diagnostics);
    }
    diagnostics.append(&mut kind_diags);
    Analysis {
        diagnostics,
        relations,
    }
}

/// Run only the structural checks (`E01xx`) over `program`.
///
/// This is the exact rule set [`Delp::new`] / [`Delp::new_relaxed`]
/// enforce: the first error-severity diagnostic (in emission order) is the
/// error `Delp` construction reports. Under [`Mode::Relaxed`] the
/// strict-only codes E0104, E0105 and E0107 are emitted at warning
/// severity instead of being suppressed.
pub fn analyze_structure(program: &Program, mode: Mode) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if program.rules.is_empty() {
        out.push(Diagnostic::new(
            Code::E0101,
            "program has no rules",
            Label::new(Span::DUMMY, ""),
        ));
        return out;
    }

    // Condition 1: every rule is event-driven and leads with its event.
    for r in &program.rules {
        match r.event() {
            None => out.push(Diagnostic::new(
                Code::E0102,
                format!("rule `{}` has no event atom in its body", r.label),
                Label::new(r.span, "every DELP rule needs a relational event atom"),
            )),
            Some(ev) => {
                if !matches!(r.body.first(), Some(BodyItem::Atom(_))) {
                    let first = r.body.first().map(|b| b.span()).unwrap_or(r.span);
                    out.push(
                        Diagnostic::new(
                            Code::E0103,
                            format!(
                                "rule `{}` must lead with its event atom ([head] :- [event], [conditions])",
                                r.label
                            ),
                            Label::new(first, "this runs before the event binds its variables"),
                        )
                        .with_secondary(ev.span, "the event atom is here"),
                    );
                }
            }
        }
    }

    // Condition 2: consecutive rules are dependent with matching arities.
    for pair in program.rules.windows(2) {
        let (ri, rj) = (&pair[0], &pair[1]);
        let Some(ev) = rj.event() else { continue };
        if ri.head.rel != ev.rel {
            out.push(mode.apply(
                Diagnostic::new(
                    Code::E0104,
                    format!(
                        "head of `{}` is `{}` but event of `{}` is `{}` — consecutive rules must be dependent",
                        ri.label, ri.head.rel, rj.label, ev.rel
                    ),
                    Label::new(ev.span, format!("expected event relation `{}`", ri.head.rel)),
                )
                .with_secondary(ri.head.span, format!("`{}` is derived here", ri.head.rel)),
            ));
        } else if ri.head.arity() != ev.arity() {
            out.push(
                mode.apply(
                    Diagnostic::new(
                        Code::E0105,
                        format!(
                            "head `{}` of rule `{}` has arity {} but event of `{}` has arity {}",
                            ri.head.rel,
                            ri.label,
                            ri.head.arity(),
                            rj.label,
                            ev.arity()
                        ),
                        Label::new(ev.span, format!("consumed here with arity {}", ev.arity())),
                    )
                    .with_secondary(
                        ri.head.span,
                        format!("derived here with arity {}", ri.head.arity()),
                    ),
                ),
            );
        }
    }

    // Arity consistency: every use of a relation agrees on its arity.
    {
        let mut arities: BTreeMap<&str, (usize, &str, Span)> = BTreeMap::new();
        for r in &program.rules {
            for atom in std::iter::once(&r.head).chain(body_atoms(r)) {
                match arities.get(atom.rel.as_str()) {
                    Some(&(n, first_rule, first_span)) if n != atom.arity() => {
                        out.push(
                            Diagnostic::new(
                                Code::E0106,
                                format!(
                                    "relation `{}` used with arity {} in rule `{}` but arity {n} in rule `{first_rule}`",
                                    atom.rel,
                                    atom.arity(),
                                    r.label,
                                ),
                                Label::new(
                                    atom.span,
                                    format!("used here with arity {}", atom.arity()),
                                ),
                            )
                            .with_secondary(first_span, format!("first used with arity {n} here")),
                        );
                    }
                    Some(_) => {}
                    None => {
                        arities.insert(&atom.rel, (atom.arity(), &r.label, atom.span));
                    }
                }
            }
        }
    }

    // Condition 3: head relations only appear as event atoms in bodies.
    let mut head_spans: BTreeMap<&str, Span> = BTreeMap::new();
    for r in &program.rules {
        head_spans.entry(&r.head.rel).or_insert(r.head.span);
    }
    for r in &program.rules {
        for cond in r.condition_atoms() {
            if let Some(&hspan) = head_spans.get(cond.rel.as_str()) {
                out.push(
                    mode.apply(
                        Diagnostic::new(
                            Code::E0107,
                            format!(
                                "head relation `{}` appears as a non-event atom in rule `{}`",
                                cond.rel, r.label
                            ),
                            Label::new(cond.span, "used as a slow-changing condition here"),
                        )
                        .with_secondary(hspan, format!("`{}` is derived here", cond.rel)),
                    ),
                );
            }
        }
    }

    // Safety (range restriction): every head variable is bound by the body.
    for r in &program.rules {
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        for atom in body_atoms(r) {
            bound.extend(atom.vars());
        }
        for (var, _) in r.assignments() {
            bound.insert(var);
        }
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for t in &r.head.args {
            if let Some(v) = t.as_var() {
                if !bound.contains(v) && reported.insert(v) {
                    out.push(Diagnostic::new(
                        Code::E0108,
                        format!(
                            "head variable `{v}` of rule `{}` is not bound by the body",
                            r.label
                        ),
                        Label::new(t.span, "not bound by any atom or assignment"),
                    ));
                }
            }
        }
    }

    // Classification sanity: an output relation must exist, and the input
    // event must not double as slow-changing state.
    let head_rels: BTreeSet<&str> = program.rules.iter().map(|r| r.head.rel.as_str()).collect();
    let event_rels: BTreeSet<&str> = program
        .rules
        .iter()
        .filter_map(|r| r.event().map(|e| e.rel.as_str()))
        .collect();
    if head_rels.iter().all(|h| event_rels.contains(h)) {
        let last = program.rules.last().expect("non-empty");
        out.push(Diagnostic::new(
            Code::E0110,
            "program has no output relation: every head is consumed as an event",
            Label::new(last.head.span, "this head is also consumed as an event"),
        ));
    }
    if let Some(input) = program.rules[0].event() {
        let input_rel = input.rel.clone();
        let input_span = input.span;
        if let Some(cond) = program
            .rules
            .iter()
            .flat_map(|r| r.condition_atoms())
            .find(|a| a.rel == input_rel)
        {
            out.push(
                Diagnostic::new(
                    Code::E0109,
                    format!(
                        "input event relation `{input_rel}` also appears as a slow-changing atom"
                    ),
                    Label::new(cond.span, "used as a slow-changing condition here"),
                )
                .with_secondary(input_span, "the program's input event"),
            );
        }
    }

    // Duplicate labels (the parser rejects these in source text; this
    // catches programmatically built programs).
    for (i, r) in program.rules.iter().enumerate() {
        if let Some(first) = program.rules[..i].iter().find(|p| p.label == r.label) {
            out.push(
                Diagnostic::new(
                    Code::E0111,
                    format!("duplicate rule label `{}`", r.label),
                    Label::new(r.label_span, "label redefined here"),
                )
                .with_secondary(first.label_span, "first defined here"),
            );
        }
    }

    out
}

fn body_atoms(r: &crate::ast::Rule) -> impl Iterator<Item = &Atom> {
    r.body.iter().filter_map(|b| match b {
        BodyItem::Atom(a) => Some(a),
        _ => None,
    })
}

/// Span of the first occurrence of variable `name` inside `e`.
fn var_span(e: &Expr, name: &str) -> Option<Span> {
    match &e.kind {
        ExprKind::Var(v) if v == name => Some(e.span),
        ExprKind::Var(_) | ExprKind::Const(_) => None,
        ExprKind::BinOp(_, l, r) => var_span(l, name).or_else(|| var_span(r, name)),
        ExprKind::Call(_, args) => args.iter().find_map(|a| var_span(a, name)),
    }
}

/// Per-rule advisory passes: W0201 (unused), W0202 (unbound expression
/// variable), W0203 (constant head location), W0204 (non-local condition
/// atom), W0206 (shadowed assignment).
fn rule_passes(delp: &Delp, out: &mut Vec<Diagnostic>) {
    for rule in delp.rules() {
        let atoms: Vec<&Atom> = body_atoms(rule).collect();

        // Occurrence counting across the whole rule (W0201 / W0202).
        let mut occurrences: BTreeMap<&str, usize> = BTreeMap::new();
        let mut atom_bound: BTreeSet<&str> = BTreeSet::new();
        let mut assigned: BTreeSet<&str> = BTreeSet::new();
        for atom in &atoms {
            for v in atom.vars() {
                *occurrences.entry(v).or_insert(0) += 1;
                atom_bound.insert(v);
            }
        }
        for v in rule.head.vars() {
            *occurrences.entry(v).or_insert(0) += 1;
        }
        // Position-sensitive binding for W0206: what is bound *before*
        // each assignment runs.
        let mut bound_at: BTreeMap<&str, Span> = BTreeMap::new();
        for item in &rule.body {
            match item {
                BodyItem::Atom(a) => {
                    for t in &a.args {
                        if let Some(v) = t.as_var() {
                            bound_at.entry(v).or_insert(t.span);
                        }
                    }
                }
                BodyItem::Constraint { left, right, .. } => {
                    for (expr, v) in left
                        .vars()
                        .into_iter()
                        .map(|v| (left, v))
                        .chain(right.vars().into_iter().map(|v| (right, v)))
                    {
                        *occurrences.entry(v).or_insert(0) += 1;
                        if !atom_bound.contains(v) && !assigned.contains(v) {
                            out.push(Diagnostic::new(
                                Code::W0202,
                                format!(
                                    "rule `{}`: expression variable `{v}` is never bound by an atom — evaluation will fail",
                                    rule.label
                                ),
                                Label::new(
                                    var_span(expr, v).unwrap_or_else(|| item.span()),
                                    "not bound by any atom or earlier assignment",
                                ),
                            ));
                        }
                    }
                }
                BodyItem::Assign {
                    var,
                    var_span: vspan,
                    expr,
                } => {
                    for v in expr.vars() {
                        *occurrences.entry(v).or_insert(0) += 1;
                        if !atom_bound.contains(v) && !assigned.contains(v) {
                            out.push(Diagnostic::new(
                                Code::W0202,
                                format!(
                                    "rule `{}`: expression variable `{v}` is never bound by an atom — evaluation will fail",
                                    rule.label
                                ),
                                Label::new(
                                    var_span(expr, v).unwrap_or_else(|| item.span()),
                                    "not bound by any atom or earlier assignment",
                                ),
                            ));
                        }
                    }
                    *occurrences.entry(var.as_str()).or_insert(0) += 1;
                    if let Some(&first) = bound_at.get(var.as_str()) {
                        out.push(
                            Diagnostic::new(
                                Code::W0206,
                                format!(
                                    "rule `{}`: assignment shadows variable `{var}` which is already bound",
                                    rule.label
                                ),
                                Label::new(*vspan, "rebound here"),
                            )
                            .with_secondary(first, "first bound here"),
                        );
                    }
                    bound_at.insert(var.as_str(), *vspan);
                    assigned.insert(var.as_str());
                }
            }
        }

        // Location specifiers anchor where a rule executes; a variable
        // used only as one is doing its job, not dangling.
        let loc_vars: BTreeSet<&str> = atoms
            .iter()
            .filter_map(|a| a.args.first().and_then(Term::as_var))
            .collect();
        for (v, count) in &occurrences {
            if *count == 1 && atom_bound.contains(v) && !loc_vars.contains(v) {
                let span = atoms
                    .iter()
                    .flat_map(|a| a.args.iter())
                    .find(|t| t.as_var() == Some(v))
                    .map(|t| t.span)
                    .unwrap_or(Span::DUMMY);
                out.push(Diagnostic::new(
                    Code::W0201,
                    format!(
                        "rule `{}`: variable `{v}` is bound but never used",
                        rule.label
                    ),
                    Label::new(span, "bound here, never used again"),
                ));
            }
        }

        // W0203: constant head location specifier.
        if let Some(t) = rule.head.args.first() {
            if t.as_const().is_some() {
                out.push(Diagnostic::new(
                    Code::W0203,
                    format!(
                        "rule `{}`: head location specifier is a constant — all derivations ship to one node",
                        rule.label
                    ),
                    Label::new(t.span, "constant location"),
                ));
            }
        }

        // W0204: condition atoms must be local to the event — a condition
        // atom with a different location specifier joins state the
        // executing node does not have.
        if let Some(ev) = rule.event() {
            if let Some(ev_loc) = ev.args.first().and_then(Term::as_var) {
                let ev_loc_span = ev.args.first().map(|t| t.span).unwrap_or(ev.span);
                for cond in rule.condition_atoms() {
                    if cond.args.first().and_then(Term::as_var) != Some(ev_loc) {
                        let span = cond.args.first().map(|t| t.span).unwrap_or(cond.span);
                        out.push(
                            Diagnostic::new(
                                Code::W0204,
                                format!(
                                    "rule `{}`: condition atom `{}` is not local to the event — its location specifier should be `{ev_loc}`",
                                    rule.label, cond.rel
                                ),
                                Label::new(span, "location specifier here"),
                            )
                            .with_secondary(ev_loc_span, format!("the event executes at `{ev_loc}`")),
                        );
                    }
                }
            }
        }
    }
}

/// W0205: rules whose event relation can never be derived from the input
/// event (relation-level reachability).
fn reachability_pass(delp: &Delp, out: &mut Vec<Diagnostic>) {
    let input = delp.input_event().to_string();
    let mut derivable: BTreeSet<&str> = BTreeSet::new();
    derivable.insert(input.as_str());
    loop {
        let mut changed = false;
        for r in delp.rules() {
            if let Some(ev) = r.event() {
                if derivable.contains(ev.rel.as_str()) && derivable.insert(r.head.rel.as_str()) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for r in delp.rules() {
        let Some(ev) = r.event() else { continue };
        if !derivable.contains(ev.rel.as_str()) {
            out.push(Diagnostic::new(
                Code::W0205,
                format!(
                    "rule `{}` can never fire: its event relation `{}` is not derivable from the input event `{input}`",
                    r.label, ev.rel
                ),
                Label::new(ev.span, "never derived by any reachable rule"),
            ));
        }
    }
}

/// W0207: the equivalence keys cover every attribute of the input event —
/// no two distinct events are ever equivalent (Definition 2), so the
/// compression scheme degenerates to storing every provenance tree.
fn key_coverage_pass(delp: &Delp, out: &mut Vec<Diagnostic>) {
    let arity = delp.input_event_arity();
    let keys = equivalence_keys(delp);
    if arity > 1 && keys.indices().len() == arity {
        let ev = delp.rules()[0].event().expect("validated");
        out.push(Diagnostic::new(
            Code::W0207,
            format!(
                "equivalence keys of `{}` cover all {arity} attributes — no two distinct events are equivalent, so provenance compression cannot help",
                keys.rel()
            ),
            Label::new(ev.span, "every attribute of this event is an equivalence key"),
        ));
    }
}

/// Attribute-kind inference (W0208) and the relation summary table.
///
/// Attributes that share a variable in some rule (or are equated by a
/// comparison) are unified; evidence comes from constants, location
/// specifiers (always addresses), arithmetic operands (always integers)
/// and constant comparisons. A unification class with two different
/// concrete kinds is a conflict.
fn infer_kinds(program: &Program) -> (BTreeMap<String, RelationInfo>, Vec<Diagnostic>) {
    struct Table {
        nodes: BTreeMap<(String, usize), usize>,
        parent: Vec<usize>,
        evidence: Vec<Vec<(TypeKind, Span, &'static str)>>,
    }
    impl Table {
        fn node(&mut self, rel: &str, pos: usize) -> usize {
            if let Some(&i) = self.nodes.get(&(rel.to_string(), pos)) {
                return i;
            }
            let i = self.parent.len();
            self.parent.push(i);
            self.evidence.push(Vec::new());
            self.nodes.insert((rel.to_string(), pos), i);
            i
        }
        fn find(&self, mut i: usize) -> usize {
            while self.parent[i] != i {
                i = self.parent[i];
            }
            i
        }
        fn union(&mut self, a: usize, b: usize) {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra != rb {
                let ev = std::mem::take(&mut self.evidence[rb]);
                self.parent[rb] = ra;
                self.evidence[ra].extend(ev);
            }
        }
        fn add(&mut self, i: usize, k: TypeKind, span: Span, why: &'static str) {
            let r = self.find(i);
            self.evidence[r].push((k, span, why));
        }
    }

    let mut t = Table {
        nodes: BTreeMap::new(),
        parent: Vec::new(),
        evidence: Vec::new(),
    };
    let mut arities: BTreeMap<String, usize> = BTreeMap::new();

    // Variables appearing inside arithmetic must be integers.
    fn arith_vars<'a>(e: &'a Expr, in_arith: bool, out: &mut Vec<(&'a str, Span)>) {
        match &e.kind {
            ExprKind::Var(v) => {
                if in_arith {
                    out.push((v, e.span));
                }
            }
            ExprKind::Const(_) => {}
            ExprKind::BinOp(_, l, r) => {
                arith_vars(l, true, out);
                arith_vars(r, true, out);
            }
            // Function signatures are unknown; arguments are unconstrained.
            ExprKind::Call(_, args) => {
                for a in args {
                    arith_vars(a, false, out);
                }
            }
        }
    }

    for rule in &program.rules {
        // Pass 1: atoms — create nodes, unify on shared variables, collect
        // constant and location-specifier evidence.
        let mut var_node: BTreeMap<&str, usize> = BTreeMap::new();
        for atom in std::iter::once(&rule.head).chain(body_atoms(rule)) {
            let a = arities.entry(atom.rel.clone()).or_insert(0);
            *a = (*a).max(atom.arity());
            for (pos, term) in atom.args.iter().enumerate() {
                let n = t.node(&atom.rel, pos);
                if pos == 0 {
                    t.add(n, TypeKind::Addr, term.span, "location specifier");
                }
                match &term.kind {
                    crate::ast::TermKind::Var(v) => match var_node.get(v.as_str()) {
                        Some(&m) => t.union(m, n),
                        None => {
                            var_node.insert(v, n);
                        }
                    },
                    crate::ast::TermKind::Const(c) => {
                        t.add(n, kind_of(c), term.span, "constant");
                    }
                }
            }
        }
        // Pass 2: constraints and assignments.
        for item in &rule.body {
            match item {
                BodyItem::Atom(_) => {}
                BodyItem::Constraint { left, right, .. } => {
                    let mut av = Vec::new();
                    arith_vars(left, false, &mut av);
                    arith_vars(right, false, &mut av);
                    for (v, span) in av {
                        if let Some(&n) = var_node.get(v) {
                            t.add(n, TypeKind::Int, span, "arithmetic operand");
                        }
                    }
                    match (&left.kind, &right.kind) {
                        (ExprKind::Var(a), ExprKind::Var(b)) => {
                            if let (Some(&na), Some(&nb)) =
                                (var_node.get(a.as_str()), var_node.get(b.as_str()))
                            {
                                t.union(na, nb);
                            }
                        }
                        (ExprKind::Var(v), ExprKind::Const(c)) => {
                            if let Some(&n) = var_node.get(v.as_str()) {
                                t.add(n, kind_of(c), right.span, "compared with this constant");
                            }
                        }
                        (ExprKind::Const(c), ExprKind::Var(v)) => {
                            if let Some(&n) = var_node.get(v.as_str()) {
                                t.add(n, kind_of(c), left.span, "compared with this constant");
                            }
                        }
                        _ => {}
                    }
                }
                BodyItem::Assign {
                    var,
                    var_span: vspan,
                    expr,
                } => {
                    let mut av = Vec::new();
                    arith_vars(expr, false, &mut av);
                    for (v, span) in av {
                        if let Some(&n) = var_node.get(v) {
                            t.add(n, TypeKind::Int, span, "arithmetic operand");
                        }
                    }
                    if let Some(&n) = var_node.get(var.as_str()) {
                        match &expr.kind {
                            ExprKind::Var(v) => {
                                if let Some(&m) = var_node.get(v.as_str()) {
                                    t.union(n, m);
                                }
                            }
                            ExprKind::Const(c) => {
                                t.add(n, kind_of(c), expr.span, "assigned this constant");
                            }
                            ExprKind::BinOp(..) => {
                                t.add(n, TypeKind::Int, *vspan, "assigned an arithmetic result");
                            }
                            ExprKind::Call(..) => {}
                        }
                    }
                }
            }
        }
    }

    // Resolve classes: distinct kinds per root, in evidence order.
    let mut class_kinds: BTreeMap<usize, Vec<(TypeKind, Span, &'static str)>> = BTreeMap::new();
    for &node in t.nodes.values() {
        let root = t.find(node);
        class_kinds.entry(root).or_insert_with(|| {
            let mut distinct: Vec<(TypeKind, Span, &'static str)> = Vec::new();
            for &(k, span, why) in &t.evidence[root] {
                if !distinct.iter().any(|&(dk, _, _)| dk == k) {
                    distinct.push((k, span, why));
                }
            }
            distinct
        });
    }

    let mut diags = Vec::new();
    for (&root, kinds) in &class_kinds {
        if kinds.len() >= 2 {
            let (rel, pos) = t
                .nodes
                .iter()
                .filter(|&(_, &i)| t.find(i) == root)
                .map(|(k, _)| k.clone())
                .min()
                .expect("class has members");
            let (k0, s0, w0) = kinds[0];
            let (k1, s1, w1) = kinds[1];
            diags.push(
                Diagnostic::new(
                    Code::W0208,
                    format!(
                        "attribute {pos} of relation `{rel}` is used with conflicting value kinds: {k0} vs {k1}"
                    ),
                    Label::new(s1, format!("implies {k1} ({w1})")),
                )
                .with_secondary(s0, format!("implies {k0} ({w0})")),
            );
        }
    }

    let relations = arities
        .iter()
        .map(|(rel, &arity)| {
            let kinds = (0..arity)
                .map(|pos| {
                    t.nodes
                        .get(&(rel.clone(), pos))
                        .map(|&i| match class_kinds.get(&t.find(i)).map(Vec::as_slice) {
                            Some([]) | None => TypeKind::Unknown,
                            Some([(k, _, _)]) => *k,
                            Some(_) => TypeKind::Conflict,
                        })
                        .unwrap_or(TypeKind::Unknown)
                })
                .collect();
            (rel.clone(), RelationInfo { arity, kinds })
        })
        .collect();

    (relations, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::parser::parse_program;
    use crate::programs;

    fn run(src: &str) -> Analysis {
        analyze(&parse_program(src).unwrap(), Mode::Strict)
    }

    fn codes(a: &Analysis) -> Vec<Code> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn bundled_programs_are_clean() {
        for (name, src) in [
            ("forwarding", programs::PACKET_FORWARDING),
            ("dns", programs::DNS_RESOLUTION),
            ("dhcp", programs::DHCP),
            ("arp", programs::ARP),
        ] {
            let a = run(src);
            assert!(
                a.diagnostics.is_empty(),
                "{name} should be clean, got {:#?}",
                a.diagnostics
            );
        }
    }

    #[test]
    fn singleton_variable_is_flagged() {
        let a = run("r1 out(@X, Y) :- e(@X, Y), s(@X, Z).");
        assert_eq!(codes(&a), vec![Code::W0201]);
        let d = &a.diagnostics[0];
        assert!(d.message.contains("never used"), "{}", d.message);
        assert!(d.message.contains("`Z`"), "{}", d.message);
        // Z sits at column 34 of the source line.
        assert_eq!(
            (d.primary.span.line, d.primary.span.col),
            (1, 34),
            "{:?}",
            d.primary.span
        );
    }

    #[test]
    fn join_variables_are_not_singletons() {
        let a = run("r1 out(@X, Z) :- e(@X, Z), s(@X, Z).");
        assert!(a.by_code(Code::W0201).next().is_none(), "{:?}", codes(&a));
    }

    #[test]
    fn unbound_constraint_variable_is_flagged() {
        let a = run("r1 out(@X, Y) :- e(@X, Y), Y == W.");
        let d = a.by_code(Code::W0202).next().expect("W0202");
        assert!(d.message.contains("`W`"), "{}", d.message);
        assert_eq!((d.primary.span.line, d.primary.span.col), (1, 33));
    }

    #[test]
    fn assignment_binds_for_later_expressions() {
        let a = run("r1 out(@X, Y) :- e(@X, Y), W := Y + 1, W > 0.");
        assert!(a.by_code(Code::W0202).next().is_none(), "{:?}", codes(&a));
    }

    #[test]
    fn unbound_assignment_rhs_is_flagged() {
        let a = run("r1 out(@X, Y) :- e(@X, Z), Y := Q + 1.");
        let d = a.by_code(Code::W0202).next().expect("W0202");
        assert!(d.message.contains("`Q`"), "{}", d.message);
    }

    #[test]
    fn constant_head_location_is_flagged() {
        let a = run("r1 out(@5, Y) :- e(@X, Y), s(@X, X).");
        let d = a.by_code(Code::W0203).next().expect("W0203");
        assert_eq!((d.primary.span.line, d.primary.span.col), (1, 9));
    }

    #[test]
    fn non_local_condition_atom_is_flagged() {
        let a = run("r1 out(@X, A, D) :- e(@X, A, D), s(@A, A).");
        let d = a.by_code(Code::W0204).next().expect("W0204");
        assert!(d.message.contains("`s`"), "{}", d.message);
        assert!(d.message.contains("`X`"), "{}", d.message);
        // The offending specifier is the `A` of `s(@A, ...)`.
        assert_eq!((d.primary.span.line, d.primary.span.col), (1, 37));
        assert!(!d.secondary.is_empty());
    }

    #[test]
    fn dead_rule_is_flagged_in_relaxed_mode() {
        let src = r#"
            r1 out(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 out2(@X, Y) :- f(@X, Y), s(@X, Y).
        "#;
        let a = analyze(&parse_program(src).unwrap(), Mode::Relaxed);
        assert!(!a.has_errors(), "{:?}", codes(&a));
        let d = a.by_code(Code::W0205).next().expect("W0205");
        assert!(d.message.contains("`r2`"), "{}", d.message);
        assert!(d.message.contains("`f`"), "{}", d.message);
    }

    #[test]
    fn shadowed_assignment_is_flagged() {
        let a = run("r1 out(@X, Y) :- e(@X, Y), Y := Y + 1.");
        let d = a.by_code(Code::W0206).next().expect("W0206");
        assert!(d.message.contains("`Y`"), "{}", d.message);
        assert_eq!((d.primary.span.line, d.primary.span.col), (1, 28));
        assert!(!d.secondary.is_empty());
    }

    #[test]
    fn assignment_then_join_is_not_shadowing() {
        let a = run("r1 out(@X, Y) :- e(@X), Y := 7, s(@X, Y).");
        assert!(a.by_code(Code::W0206).next().is_none(), "{:?}", codes(&a));
    }

    #[test]
    fn full_key_coverage_is_flagged() {
        let a = run("r1 recvd(@L, D) :- pkt(@L, D), route(@L, D).");
        let d = a.by_code(Code::W0207).next().expect("W0207");
        assert!(d.message.contains("`pkt`"), "{}", d.message);
        assert!(d.message.contains("all 2 attributes"), "{}", d.message);
    }

    #[test]
    fn partial_key_coverage_is_not_flagged() {
        let a = run(programs::PACKET_FORWARDING);
        assert!(a.by_code(Code::W0207).next().is_none());
    }

    #[test]
    fn conflicting_kinds_are_flagged() {
        let a = run(r#"r1 out(@X, Y) :- e(@X, Y), s(@X, Y), Y > 5, Y == "a"."#);
        let d = a.by_code(Code::W0208).next().expect("W0208");
        assert!(
            d.message.contains("conflicting value kinds"),
            "{}",
            d.message
        );
        assert!(!d.secondary.is_empty());
    }

    #[test]
    fn relation_kinds_are_inferred() {
        let a = run("r1 out(@X, Y) :- e(@X, Y), s(@X, Y), Y > 5.");
        let e = &a.relations["e"];
        assert_eq!(e.arity, 2);
        assert_eq!(e.kinds, vec![TypeKind::Addr, TypeKind::Int]);
        // The joined slow relation shares both classes.
        assert_eq!(a.relations["s"].kinds, vec![TypeKind::Addr, TypeKind::Int]);
    }

    #[test]
    fn strict_only_codes_downgrade_in_relaxed_mode() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- c(@X, Y), s(@X, Y).
        "#;
        let p = parse_program(src).unwrap();
        let strict = analyze_structure(&p, Mode::Strict);
        let e = strict
            .iter()
            .find(|d| d.code == Code::E0104)
            .expect("E0104");
        assert_eq!(e.severity, Severity::Error);
        let relaxed = analyze_structure(&p, Mode::Relaxed);
        let w = relaxed
            .iter()
            .find(|d| d.code == Code::E0104)
            .expect("E0104");
        assert_eq!(w.severity, Severity::Warning);
    }

    #[test]
    fn duplicate_labels_are_flagged_on_built_programs() {
        // The parser rejects duplicate labels in source text; build the
        // program directly to exercise E0111.
        let mut p = parse_program("r1 out(@X, Y) :- e(@X, Y), s(@X, Y).").unwrap();
        let mut copy = p.rules[0].clone();
        copy.head.rel = "out2".into();
        p.rules.push(copy);
        let diags = analyze_structure(&p, Mode::Strict);
        assert!(diags.iter().any(|d| d.code == Code::E0111), "{diags:#?}");
    }

    #[test]
    fn structural_errors_suppress_advisory_passes() {
        // Unbound head variable: the program is not a DELP, so the
        // advisory passes (which need a classification) must not run.
        let a = run("r1 out(@X, Z) :- e(@X, Y).");
        assert!(a.has_errors());
        assert!(a.by_code(Code::W0201).next().is_none());
    }
}
