//! Static lints for DELPs.
//!
//! DELP validation rejects programs that cannot run; lints flag programs
//! that run but probably don't mean what they say — the NDlog equivalents
//! of a compiler's warnings. All lints are advisory.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{BodyItem, Term};
use crate::delp::Delp;

/// One advisory finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A variable is bound exactly once in a rule body and never used in
    /// the head, another atom, a constraint or an assignment — usually a
    /// typo for a variable that was meant to join.
    UnusedVariable {
        /// Rule label.
        rule: String,
        /// The singleton variable.
        var: String,
    },
    /// An expression (constraint or assignment right-hand side)
    /// references a variable no relational atom binds and no earlier
    /// assignment defines: evaluation will fail at runtime.
    UnboundExprVariable {
        /// Rule label.
        rule: String,
        /// The unbound variable.
        var: String,
    },
    /// The head's location specifier is a constant: every derived tuple
    /// ships to one fixed node regardless of the join.
    ConstantHeadLocation {
        /// Rule label.
        rule: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnusedVariable { rule, var } => {
                write!(f, "rule `{rule}`: variable `{var}` is bound but never used")
            }
            Lint::UnboundExprVariable { rule, var } => write!(
                f,
                "rule `{rule}`: expression variable `{var}` is never bound by an atom — evaluation will fail"
            ),
            Lint::ConstantHeadLocation { rule } => write!(
                f,
                "rule `{rule}`: head location specifier is a constant — all derivations ship to one node"
            ),
        }
    }
}

/// Run all lints over a validated DELP.
pub fn lint(delp: &Delp) -> Vec<Lint> {
    let mut out = Vec::new();
    for rule in delp.rules() {
        // Occurrence counting across the whole rule.
        let mut occurrences: std::collections::BTreeMap<&str, usize> = Default::default();
        let mut atom_bound: BTreeSet<&str> = BTreeSet::new();
        let mut assigned: BTreeSet<&str> = BTreeSet::new();

        let atoms = rule
            .body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Atom(a) => Some(a),
                _ => None,
            })
            .collect::<Vec<_>>();
        for atom in &atoms {
            for v in atom.vars() {
                *occurrences.entry(v).or_insert(0) += 1;
                atom_bound.insert(v);
            }
        }
        for v in rule.head.vars() {
            *occurrences.entry(v).or_insert(0) += 1;
        }
        for item in &rule.body {
            match item {
                BodyItem::Constraint { left, op: _, right } => {
                    for v in left.vars().into_iter().chain(right.vars()) {
                        *occurrences.entry(v).or_insert(0) += 1;
                        if !atom_bound.contains(v) && !assigned.contains(v) {
                            out.push(Lint::UnboundExprVariable {
                                rule: rule.label.clone(),
                                var: v.to_string(),
                            });
                        }
                    }
                }
                BodyItem::Assign { var, expr } => {
                    for v in expr.vars() {
                        *occurrences.entry(v).or_insert(0) += 1;
                        if !atom_bound.contains(v) && !assigned.contains(v) {
                            out.push(Lint::UnboundExprVariable {
                                rule: rule.label.clone(),
                                var: v.to_string(),
                            });
                        }
                    }
                    *occurrences.entry(var).or_insert(0) += 1;
                    assigned.insert(var);
                }
                BodyItem::Atom(_) => {}
            }
        }

        // Location specifiers anchor where a rule executes; a variable
        // used only as one is doing its job, not dangling.
        let loc_vars: BTreeSet<&str> = atoms
            .iter()
            .filter_map(|a| a.args.first().and_then(Term::as_var))
            .collect();

        // Singletons: bound by an atom, used nowhere else.
        for (v, count) in &occurrences {
            if *count == 1 && atom_bound.contains(v) && !loc_vars.contains(v) {
                out.push(Lint::UnusedVariable {
                    rule: rule.label.clone(),
                    var: v.to_string(),
                });
            }
        }

        if matches!(rule.head.args.first(), Some(Term::Const(_))) {
            out.push(Lint::ConstantHeadLocation {
                rule: rule.label.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lints(src: &str) -> Vec<Lint> {
        lint(&Delp::new(parse_program(src).unwrap()).unwrap())
    }

    #[test]
    fn clean_programs_have_no_lints() {
        assert!(lints(crate::programs::PACKET_FORWARDING).is_empty());
        assert!(lints(crate::programs::DNS_RESOLUTION).is_empty());
        assert!(lints(crate::programs::DHCP).is_empty());
        assert!(lints(crate::programs::ARP).is_empty());
    }

    #[test]
    fn singleton_variable_is_flagged() {
        // Z is bound by the slow atom and never used again.
        let found = lints("r1 out(@X, Y) :- e(@X, Y), s(@X, Z).");
        assert_eq!(
            found,
            vec![Lint::UnusedVariable {
                rule: "r1".into(),
                var: "Z".into(),
            }]
        );
        assert!(found[0].to_string().contains("never used"));
    }

    #[test]
    fn join_variables_are_not_singletons() {
        // Z joins the event and the slow atom: used twice.
        assert!(lints("r1 out(@X, Z) :- e(@X, Z), s(@X, Z).").is_empty());
    }

    #[test]
    fn unbound_constraint_variable_is_flagged() {
        let found = lints("r1 out(@X, Y) :- e(@X, Y), Y == W.");
        assert!(found.iter().any(|l| matches!(
            l,
            Lint::UnboundExprVariable { var, .. } if var == "W"
        )));
    }

    #[test]
    fn assignment_binds_for_later_expressions() {
        // W is assigned before the constraint uses it: no unbound lint.
        let found = lints("r1 out(@X, Y) :- e(@X, Y), W := Y + 1, W > 0.");
        assert!(
            !found
                .iter()
                .any(|l| matches!(l, Lint::UnboundExprVariable { .. })),
            "{found:?}"
        );
    }

    #[test]
    fn unbound_assignment_rhs_is_flagged() {
        let found = lints("r1 out(@X, Y) :- e(@X, Z), Y := Q + 1.");
        assert!(found.iter().any(|l| matches!(
            l,
            Lint::UnboundExprVariable { var, .. } if var == "Q"
        )));
    }

    #[test]
    fn constant_head_location_is_flagged() {
        let found = lints("r1 out(@5, Y) :- e(@X, Y), s(@X, X).");
        assert!(found
            .iter()
            .any(|l| matches!(l, Lint::ConstantHeadLocation { .. })));
    }
}
