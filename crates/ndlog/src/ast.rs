//! Abstract syntax for NDlog programs.
//!
//! By NDlog convention, identifiers beginning with an uppercase letter are
//! variables and identifiers beginning lowercase are relation / function
//! names; user-defined functions carry an `f_` prefix (e.g.
//! `f_isSubDomain`). The first argument of every atom is the location
//! specifier, written `@L` in surface syntax.

use std::fmt;

use dpc_common::Value;

/// A term inside a relational atom: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, e.g. `L`, `DT`.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom, e.g. `packet(@L, S, D, DT)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub rel: String,
    /// Arguments; index 0 is the location specifier.
    pub args: Vec<Term>,
}

impl Atom {
    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Positions (attribute indices) at which `var` occurs in this atom.
    pub fn positions_of(&self, var: &str) -> impl Iterator<Item = usize> + '_ {
        let var = var.to_string();
        self.args
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.as_var() == Some(var.as_str()))
            .map(|(i, _)| i)
    }

    /// All distinct variable names in the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if !seen.contains(&v.as_str()) {
                    seen.push(v.as_str());
                }
            }
        }
        seen
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == 0 {
                write!(f, "@{a}")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

/// Binary arithmetic operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// Comparison operators usable in arithmetic atoms (constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An expression: the operand language of constraints and assignments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// A literal constant.
    Const(Value),
    /// A binary arithmetic operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// A user-defined function call, e.g. `f_isSubDomain(DM, URL)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// All distinct variable names referenced by the expression.
    pub fn vars(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
            match e {
                Expr::Var(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v);
                    }
                }
                Expr::Const(_) => {}
                Expr::BinOp(_, l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                Expr::Call(_, args) => {
                    for a in args {
                        walk(a, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => f.write_str(v),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::BinOp(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One item in a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BodyItem {
    /// A relational atom. The *first* relational atom in a rule body is the
    /// rule's designated event; the rest are slow-changing condition atoms.
    Atom(Atom),
    /// An arithmetic atom (constraint), e.g. `D == L` or
    /// `f_isSubDomain(DM, URL) == true`.
    Constraint {
        /// Left operand.
        left: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Expr,
    },
    /// An assignment, e.g. `N := L + 2`.
    Assign {
        /// Variable bound by the assignment.
        var: String,
        /// Value expression.
        expr: Expr,
    },
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Atom(a) => write!(f, "{a}"),
            BodyItem::Constraint { left, op, right } => write!(f, "{left} {op} {right}"),
            BodyItem::Assign { var, expr } => write!(f, "{var} := {expr}"),
        }
    }
}

/// A rule: `label head :- body1, body2, ..., bodyN.`
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The rule label, e.g. `r1`. Labels identify rules in provenance
    /// (`ruleExec.R` column) and must be unique within a program.
    pub label: String,
    /// The head atom.
    pub head: Atom,
    /// Body items, in source order.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// The designated event atom: the first relational atom in the body.
    ///
    /// DELP validation guarantees its presence; on raw programs it may be
    /// absent.
    pub fn event(&self) -> Option<&Atom> {
        self.body.iter().find_map(|b| match b {
            BodyItem::Atom(a) => Some(a),
            _ => None,
        })
    }

    /// Non-event relational atoms (the slow-changing condition atoms).
    pub fn condition_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Atom(a) => Some(a),
                _ => None,
            })
            .skip(1)
    }

    /// Constraints (arithmetic atoms) in the body.
    pub fn constraints(&self) -> impl Iterator<Item = (&Expr, CmpOp, &Expr)> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Constraint { left, op, right } => Some((left, *op, right)),
            _ => None,
        })
    }

    /// Assignments in the body.
    pub fn assignments(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Assign { var, expr } => Some((var.as_str(), expr)),
            _ => None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} :- ", self.label, self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A parsed NDlog program: an ordered list of rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Rules in source order; DELP execution follows this order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Find a rule by label.
    pub fn rule(&self, label: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom {
            rel: rel.into(),
            args: vars.iter().map(|v| Term::Var(v.to_string())).collect(),
        }
    }

    #[test]
    fn event_is_first_relational_atom() {
        let r = Rule {
            label: "r2".into(),
            head: atom("recv", &["L", "S", "D", "DT"]),
            body: vec![
                BodyItem::Constraint {
                    left: Expr::Var("D".into()),
                    op: CmpOp::Eq,
                    right: Expr::Var("L".into()),
                },
                BodyItem::Atom(atom("packet", &["L", "S", "D", "DT"])),
                BodyItem::Atom(atom("route", &["L", "D", "N"])),
            ],
        };
        assert_eq!(r.event().unwrap().rel, "packet");
        let conds: Vec<_> = r.condition_atoms().map(|a| a.rel.clone()).collect();
        assert_eq!(conds, vec!["route"]);
    }

    #[test]
    fn atom_positions_and_vars() {
        let a = atom("route", &["L", "D", "L"]);
        let pos: Vec<_> = a.positions_of("L").collect();
        assert_eq!(pos, vec![0, 2]);
        assert_eq!(a.vars(), vec!["L", "D"]);
    }

    #[test]
    fn expr_vars_dedup() {
        let e = Expr::BinOp(
            BinOp::Add,
            Box::new(Expr::Var("X".into())),
            Box::new(Expr::Call(
                "f_g".into(),
                vec![Expr::Var("X".into()), Expr::Var("Y".into())],
            )),
        );
        assert_eq!(e.vars(), vec!["X", "Y"]);
    }

    #[test]
    fn display_rule_round_trip_shape() {
        let r = Rule {
            label: "r1".into(),
            head: atom("packet", &["N", "S", "D", "DT"]),
            body: vec![
                BodyItem::Atom(atom("packet", &["L", "S", "D", "DT"])),
                BodyItem::Atom(atom("route", &["L", "D", "N"])),
            ],
        };
        assert_eq!(
            r.to_string(),
            "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N)."
        );
    }
}
