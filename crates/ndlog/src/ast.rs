//! Abstract syntax for NDlog programs.
//!
//! By NDlog convention, identifiers beginning with an uppercase letter are
//! variables and identifiers beginning lowercase are relation / function
//! names; user-defined functions carry an `f_` prefix (e.g.
//! `f_isSubDomain`). The first argument of every atom is the location
//! specifier, written `@L` in surface syntax.
//!
//! Every node carries a [`Span`] pointing back at the source text it was
//! parsed from (or [`Span::DUMMY`] when synthesized, e.g. by
//! [`crate::rewrite`]). Spans are **ignored** by `PartialEq`, `Eq` and
//! `Hash` so that structurally identical programs compare equal regardless
//! of formatting — the round-trip property `parse(display(p)) == p` holds.

use std::fmt;
use std::hash::{Hash, Hasher};

use dpc_common::Value;

use crate::span::Span;

/// A term inside a relational atom: either a variable or a constant.
#[derive(Debug, Clone)]
pub struct Term {
    /// What the term is.
    pub kind: TermKind,
    /// Source span (ignored by equality/hashing).
    pub span: Span,
}

/// The payload of a [`Term`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// A variable, e.g. `L`, `DT`.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// A term with an explicit source span.
    pub fn new(kind: TermKind, span: Span) -> Self {
        Term { kind, span }
    }

    /// A synthesized variable term (dummy span).
    pub fn var(name: impl Into<String>) -> Self {
        Term::new(TermKind::Var(name.into()), Span::DUMMY)
    }

    /// A synthesized constant term (dummy span).
    pub fn cnst(value: Value) -> Self {
        Term::new(TermKind::Const(value), Span::DUMMY)
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match &self.kind {
            TermKind::Var(v) => Some(v),
            TermKind::Const(_) => None,
        }
    }

    /// The constant value, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match &self.kind {
            TermKind::Var(_) => None,
            TermKind::Const(c) => Some(c),
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TermKind::Var(v) => f.write_str(v),
            TermKind::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom, e.g. `packet(@L, S, D, DT)`.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Relation name.
    pub rel: String,
    /// Arguments; index 0 is the location specifier.
    pub args: Vec<Term>,
    /// Source span of the whole atom (ignored by equality/hashing).
    pub span: Span,
}

impl Atom {
    /// A synthesized atom (dummy span).
    pub fn new(rel: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            rel: rel.into(),
            args,
            span: Span::DUMMY,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Positions (attribute indices) at which `var` occurs in this atom.
    pub fn positions_of(&self, var: &str) -> impl Iterator<Item = usize> + '_ {
        let var = var.to_string();
        self.args
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.as_var() == Some(var.as_str()))
            .map(|(i, _)| i)
    }

    /// All distinct variable names in the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.args {
            if let TermKind::Var(v) = &t.kind {
                if !seen.contains(&v.as_str()) {
                    seen.push(v.as_str());
                }
            }
        }
        seen
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.rel == other.rel && self.args == other.args
    }
}

impl Eq for Atom {}

impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rel.hash(state);
        self.args.hash(state);
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == 0 {
                write!(f, "@{a}")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

/// Binary arithmetic operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// Comparison operators usable in arithmetic atoms (constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An expression: the operand language of constraints and assignments.
#[derive(Debug, Clone)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source span (ignored by equality/hashing).
    pub span: Span,
}

/// The payload of an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// A variable reference.
    Var(String),
    /// A literal constant.
    Const(Value),
    /// A binary arithmetic operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// A user-defined function call, e.g. `f_isSubDomain(DM, URL)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// An expression with an explicit source span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// A synthesized variable reference (dummy span).
    pub fn var(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Var(name.into()), Span::DUMMY)
    }

    /// A synthesized constant (dummy span).
    pub fn cnst(value: Value) -> Self {
        Expr::new(ExprKind::Const(value), Span::DUMMY)
    }

    /// A binary operation whose span covers both operands.
    pub fn binop(op: BinOp, left: Expr, right: Expr) -> Self {
        let span = left.span.join(right.span);
        Expr::new(ExprKind::BinOp(op, Box::new(left), Box::new(right)), span)
    }

    /// A synthesized function call (dummy span).
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::new(ExprKind::Call(name.into(), args), Span::DUMMY)
    }

    /// All distinct variable names referenced by the expression.
    pub fn vars(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
            match &e.kind {
                ExprKind::Var(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v);
                    }
                }
                ExprKind::Const(_) => {}
                ExprKind::BinOp(_, l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                ExprKind::Call(_, args) => {
                    for a in args {
                        walk(a, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Var(v) => f.write_str(v),
            ExprKind::Const(c) => write!(f, "{c}"),
            ExprKind::BinOp(op, l, r) => write!(f, "({l} {op} {r})"),
            ExprKind::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One item in a rule body.
#[derive(Debug, Clone)]
pub enum BodyItem {
    /// A relational atom. The *first* relational atom in a rule body is the
    /// rule's designated event; the rest are slow-changing condition atoms.
    Atom(Atom),
    /// An arithmetic atom (constraint), e.g. `D == L` or
    /// `f_isSubDomain(DM, URL) == true`.
    Constraint {
        /// Left operand.
        left: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Expr,
        /// Source span of the whole constraint (ignored by equality).
        span: Span,
    },
    /// An assignment, e.g. `N := L + 2`.
    Assign {
        /// Variable bound by the assignment.
        var: String,
        /// Source span of the assigned variable (ignored by equality).
        var_span: Span,
        /// Value expression.
        expr: Expr,
    },
}

impl BodyItem {
    /// A constraint whose span covers both operands.
    pub fn constraint(left: Expr, op: CmpOp, right: Expr) -> Self {
        let span = left.span.join(right.span);
        BodyItem::Constraint {
            left,
            op,
            right,
            span,
        }
    }

    /// A synthesized assignment (dummy variable span).
    pub fn assign(var: impl Into<String>, expr: Expr) -> Self {
        BodyItem::Assign {
            var: var.into(),
            var_span: Span::DUMMY,
            expr,
        }
    }

    /// The source span of the whole body item.
    pub fn span(&self) -> Span {
        match self {
            BodyItem::Atom(a) => a.span,
            BodyItem::Constraint { span, .. } => *span,
            BodyItem::Assign { var_span, expr, .. } => var_span.join(expr.span),
        }
    }
}

impl PartialEq for BodyItem {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (BodyItem::Atom(a), BodyItem::Atom(b)) => a == b,
            (
                BodyItem::Constraint {
                    left: l1,
                    op: o1,
                    right: r1,
                    ..
                },
                BodyItem::Constraint {
                    left: l2,
                    op: o2,
                    right: r2,
                    ..
                },
            ) => l1 == l2 && o1 == o2 && r1 == r2,
            (
                BodyItem::Assign {
                    var: v1, expr: e1, ..
                },
                BodyItem::Assign {
                    var: v2, expr: e2, ..
                },
            ) => v1 == v2 && e1 == e2,
            _ => false,
        }
    }
}

impl Eq for BodyItem {}

impl Hash for BodyItem {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            BodyItem::Atom(a) => {
                0u8.hash(state);
                a.hash(state);
            }
            BodyItem::Constraint {
                left, op, right, ..
            } => {
                1u8.hash(state);
                left.hash(state);
                op.hash(state);
                right.hash(state);
            }
            BodyItem::Assign { var, expr, .. } => {
                2u8.hash(state);
                var.hash(state);
                expr.hash(state);
            }
        }
    }
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Atom(a) => write!(f, "{a}"),
            BodyItem::Constraint {
                left, op, right, ..
            } => write!(f, "{left} {op} {right}"),
            BodyItem::Assign { var, expr, .. } => write!(f, "{var} := {expr}"),
        }
    }
}

/// A rule: `label head :- body1, body2, ..., bodyN.`
#[derive(Debug, Clone)]
pub struct Rule {
    /// The rule label, e.g. `r1`. Labels identify rules in provenance
    /// (`ruleExec.R` column) and must be unique within a program.
    pub label: String,
    /// The head atom.
    pub head: Atom,
    /// Body items, in source order.
    pub body: Vec<BodyItem>,
    /// Source span of the whole rule, label through final `.` (ignored by
    /// equality/hashing).
    pub span: Span,
    /// Source span of the rule label (ignored by equality/hashing).
    pub label_span: Span,
}

impl Rule {
    /// A synthesized rule (dummy spans).
    pub fn new(label: impl Into<String>, head: Atom, body: Vec<BodyItem>) -> Self {
        Rule {
            label: label.into(),
            head,
            body,
            span: Span::DUMMY,
            label_span: Span::DUMMY,
        }
    }

    /// The designated event atom: the first relational atom in the body.
    ///
    /// DELP validation guarantees its presence; on raw programs it may be
    /// absent.
    pub fn event(&self) -> Option<&Atom> {
        self.body.iter().find_map(|b| match b {
            BodyItem::Atom(a) => Some(a),
            _ => None,
        })
    }

    /// Non-event relational atoms (the slow-changing condition atoms).
    pub fn condition_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Atom(a) => Some(a),
                _ => None,
            })
            .skip(1)
    }

    /// Constraints (arithmetic atoms) in the body.
    pub fn constraints(&self) -> impl Iterator<Item = (&Expr, CmpOp, &Expr)> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Constraint {
                left, op, right, ..
            } => Some((left, *op, right)),
            _ => None,
        })
    }

    /// Assignments in the body.
    pub fn assignments(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Assign { var, expr, .. } => Some((var.as_str(), expr)),
            _ => None,
        })
    }
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label && self.head == other.head && self.body == other.body
    }
}

impl Eq for Rule {}

impl Hash for Rule {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.label.hash(state);
        self.head.hash(state);
        self.body.hash(state);
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} :- ", self.label, self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A parsed NDlog program: an ordered list of rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Rules in source order; DELP execution follows this order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Find a rule by label.
    pub fn rule(&self, label: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn event_is_first_relational_atom() {
        let r = Rule::new(
            "r2",
            atom("recv", &["L", "S", "D", "DT"]),
            vec![
                BodyItem::constraint(Expr::var("D"), CmpOp::Eq, Expr::var("L")),
                BodyItem::Atom(atom("packet", &["L", "S", "D", "DT"])),
                BodyItem::Atom(atom("route", &["L", "D", "N"])),
            ],
        );
        assert_eq!(r.event().unwrap().rel, "packet");
        let conds: Vec<_> = r.condition_atoms().map(|a| a.rel.clone()).collect();
        assert_eq!(conds, vec!["route"]);
    }

    #[test]
    fn atom_positions_and_vars() {
        let a = atom("route", &["L", "D", "L"]);
        let pos: Vec<_> = a.positions_of("L").collect();
        assert_eq!(pos, vec![0, 2]);
        assert_eq!(a.vars(), vec!["L", "D"]);
    }

    #[test]
    fn expr_vars_dedup() {
        let e = Expr::binop(
            BinOp::Add,
            Expr::var("X"),
            Expr::call("f_g", vec![Expr::var("X"), Expr::var("Y")]),
        );
        assert_eq!(e.vars(), vec!["X", "Y"]);
    }

    #[test]
    fn display_rule_round_trip_shape() {
        let r = Rule::new(
            "r1",
            atom("packet", &["N", "S", "D", "DT"]),
            vec![
                BodyItem::Atom(atom("packet", &["L", "S", "D", "DT"])),
                BodyItem::Atom(atom("route", &["L", "D", "N"])),
            ],
        );
        assert_eq!(
            r.to_string(),
            "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N)."
        );
    }

    #[test]
    fn equality_and_hash_ignore_spans() {
        use std::collections::hash_map::DefaultHasher;

        let mut a = Term::var("X");
        let b = Term::new(TermKind::Var("X".into()), Span::new(3, 4, 1, 4));
        a.span = Span::new(9, 10, 2, 1);
        assert_eq!(a, b);
        let hash = |t: &Term| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
