//! Recursive-descent parser for NDlog programs.
//!
//! Grammar (terminals in caps):
//!
//! ```text
//! program  := rule*
//! rule     := LABEL atom ":-" item ("," item)* "."
//! item     := atom | expr CMPOP expr | VAR ":=" expr
//! atom     := RELNAME "(" "@"? term ("," term)* ")"
//! term     := VAR | const
//! expr     := addend (("+"|"-") addend)*
//! addend   := factor (("*"|"/") factor)*
//! factor   := VAR | const | FNAME "(" expr ("," expr)* ")" | "(" expr ")"
//! const    := INT | STRING | BOOL
//! ```
//!
//! Identifier case distinguishes variables (leading uppercase) from
//! relation/function names (leading lowercase or `_`); function names carry
//! the conventional `f_` prefix, which is how a body item starting with a
//! lowercase identifier followed by `(` is disambiguated between a
//! relational atom and a constraint on a function call.
//!
//! Every AST node is stamped with the [`Span`] of the tokens it was parsed
//! from, and every parse error reports the offending token's line/column
//! plus the set of tokens that would have been accepted at that point.

use dpc_common::{Error, Result, Value};

use crate::ast::{Atom, BinOp, BodyItem, CmpOp, Expr, ExprKind, Program, Rule, Term, TermKind};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::Span;

/// Parse NDlog source text into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Span of the token the parser is currently looking at. Past the end
    /// of input this is a zero-width span just after the last token, so
    /// "unexpected end of input" errors point past the final token rather
    /// than at it.
    fn cur_span(&self) -> Span {
        if let Some(t) = self.tokens.get(self.pos) {
            return t.span;
        }
        match self.tokens.last() {
            Some(t) => {
                let width = t.span.end.saturating_sub(t.span.start);
                Span::new(t.span.end, t.span.end, t.span.line, t.span.col + width)
            }
            None => Span::DUMMY,
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> Error {
        let span = self.cur_span();
        Error::Parse {
            line: span.line,
            col: span.col,
            msg: msg.into(),
        }
    }

    fn found(&self) -> String {
        self.peek()
            .map_or_else(|| "end of input".into(), TokenKind::describe)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        match self.peek() {
            Some(k) if k == kind => Ok(self.bump().expect("peeked a token")),
            _ => Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.found()
            ))),
        }
    }

    /// Consume an identifier, returning its text and span.
    fn ident(&mut self) -> Result<(String, Span)> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                let tok = self.bump().expect("peeked an identifier");
                match tok.kind {
                    TokenKind::Ident(s) => Ok((s, tok.span)),
                    _ => unreachable!("peeked an identifier"),
                }
            }
            _ => Err(self.err_here(format!("expected identifier, found {}", self.found()))),
        }
    }

    fn program(mut self) -> Result<Program> {
        let mut rules: Vec<Rule> = Vec::new();
        while self.peek().is_some() {
            let rule = self.rule()?;
            // Rule labels must be unique — provenance identifies rule
            // executions partly by label. Report the duplicate at the
            // *second* occurrence, pointing back at the first.
            if let Some(first) = rules.iter().find(|r| r.label == rule.label) {
                return Err(Error::Parse {
                    line: rule.label_span.line,
                    col: rule.label_span.col,
                    msg: format!(
                        "duplicate rule label `{}` (first defined at {}:{})",
                        rule.label, first.label_span.line, first.label_span.col
                    ),
                });
            }
            rules.push(rule);
        }
        Ok(Program { rules })
    }

    fn rule(&mut self) -> Result<Rule> {
        let (label, label_span) = self.ident()?;
        if !label.starts_with(|c: char| c.is_ascii_lowercase()) {
            return Err(Error::Parse {
                line: label_span.line,
                col: label_span.col,
                msg: format!("rule label `{label}` must start with a lowercase letter"),
            });
        }
        let head = self.atom()?;
        self.expect(&TokenKind::ColonDash)?;
        let mut body = vec![self.body_item()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.bump();
            body.push(self.body_item()?);
        }
        let period = self.expect(&TokenKind::Period)?;
        Ok(Rule {
            label,
            head,
            body,
            span: label_span.join(period.span),
            label_span,
        })
    }

    fn body_item(&mut self) -> Result<BodyItem> {
        match (self.peek(), self.peek2()) {
            // `Var := expr`
            (Some(TokenKind::Ident(v)), Some(TokenKind::ColonEq)) if is_var_name(v) => {
                let (var, var_span) = self.ident()?;
                self.bump(); // :=
                let expr = self.expr()?;
                Ok(BodyItem::Assign {
                    var,
                    var_span,
                    expr,
                })
            }
            // `rel(...)` — a relational atom, unless the name is a function
            // (`f_` prefix), in which case it must be part of a constraint.
            (Some(TokenKind::Ident(name)), Some(TokenKind::LParen))
                if !is_var_name(name) && !is_fn_name(name) =>
            {
                Ok(BodyItem::Atom(self.atom()?))
            }
            // Anything else: `expr CMPOP expr`.
            _ => {
                let left = self.expr()?;
                let op = self.cmp_op()?;
                let right = self.expr()?;
                Ok(BodyItem::constraint(left, op, right))
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::NotEq) => CmpOp::Ne,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => {
                return Err(self.err_here(format!(
                    "expected comparison operator (one of `==`, `!=`, `<`, `<=`, `>`, `>=`), \
                     found {}",
                    self.found()
                )))
            }
        };
        self.bump();
        Ok(op)
    }

    fn atom(&mut self) -> Result<Atom> {
        let (rel, rel_span) = self.ident()?;
        if is_var_name(&rel) {
            return Err(Error::Parse {
                line: rel_span.line,
                col: rel_span.col,
                msg: format!("relation name `{rel}` must start with a lowercase letter"),
            });
        }
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        // The `@` location marker is permitted (and conventional) on the
        // first argument only.
        if self.peek() == Some(&TokenKind::At) {
            self.bump();
        }
        args.push(self.term()?);
        while self.peek() == Some(&TokenKind::Comma) {
            self.bump();
            if self.peek() == Some(&TokenKind::At) {
                return Err(self.err_here("`@` is only allowed on the first attribute"));
            }
            args.push(self.term()?);
        }
        let rparen = self.expect(&TokenKind::RParen)?;
        Ok(Atom {
            rel,
            args,
            span: rel_span.join(rparen.span),
        })
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek() {
            Some(TokenKind::Ident(name)) if is_var_name(name) => {
                let (name, span) = self.ident()?;
                Ok(Term::new(TermKind::Var(name), span))
            }
            Some(TokenKind::Int(_)) | Some(TokenKind::Str(_)) | Some(TokenKind::Bool(_)) => {
                let span = self.cur_span();
                Ok(Term::new(TermKind::Const(self.constant()?), span))
            }
            _ => Err(self.err_here(format!(
                "expected variable or constant (integer, string or boolean), found {}",
                self.found()
            ))),
        }
    }

    fn constant(&mut self) -> Result<Value> {
        match self.peek() {
            Some(TokenKind::Int(_)) | Some(TokenKind::Str(_)) | Some(TokenKind::Bool(_)) => {
                match self.bump().map(|t| t.kind) {
                    Some(TokenKind::Int(i)) => Ok(Value::Int(i)),
                    Some(TokenKind::Str(s)) => Ok(Value::Str(s)),
                    Some(TokenKind::Bool(b)) => Ok(Value::Bool(b)),
                    _ => unreachable!("peeked a constant"),
                }
            }
            _ => Err(self.err_here(format!(
                "expected constant (integer, string or boolean), found {}",
                self.found()
            ))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.addend()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.addend()?;
            left = Expr::binop(op, left, right);
        }
        Ok(left)
    }

    fn addend(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.factor()?;
            left = Expr::binop(op, left, right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::LParen) => {
                let lparen = self.cur_span();
                self.bump();
                let mut e = self.expr()?;
                let rparen = self.expect(&TokenKind::RParen)?;
                e.span = lparen.join(rparen.span);
                Ok(e)
            }
            Some(TokenKind::Ident(name)) if is_var_name(name) => {
                let (name, span) = self.ident()?;
                Ok(Expr::new(ExprKind::Var(name), span))
            }
            Some(TokenKind::Ident(name)) if is_fn_name(name) => {
                let (name, name_span) = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut args = vec![self.expr()?];
                while self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                    args.push(self.expr()?);
                }
                let rparen = self.expect(&TokenKind::RParen)?;
                Ok(Expr::new(
                    ExprKind::Call(name, args),
                    name_span.join(rparen.span),
                ))
            }
            Some(TokenKind::Int(_)) | Some(TokenKind::Str(_)) | Some(TokenKind::Bool(_)) => {
                let span = self.cur_span();
                Ok(Expr::new(ExprKind::Const(self.constant()?), span))
            }
            _ => Err(self.err_here(format!(
                "expected expression (variable, constant, function call or `(`), found {}",
                self.found()
            ))),
        }
    }
}

/// Does an identifier denote a variable (leading uppercase)?
pub fn is_var_name(name: &str) -> bool {
    name.starts_with(|c: char| c.is_ascii_uppercase())
}

/// Does an identifier denote a user-defined function (`f_` prefix)?
pub fn is_fn_name(name: &str) -> bool {
    name.starts_with("f_")
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORWARDING: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    "#;

    #[test]
    fn parse_packet_forwarding() {
        let p = parse_program(FORWARDING).unwrap();
        assert_eq!(p.rules.len(), 2);
        let r1 = p.rule("r1").unwrap();
        assert_eq!(r1.head.rel, "packet");
        assert_eq!(r1.head.args[0], Term::var("N"));
        assert_eq!(r1.event().unwrap().rel, "packet");
        assert_eq!(r1.condition_atoms().count(), 1);
        let r2 = p.rule("r2").unwrap();
        assert_eq!(r2.constraints().count(), 1);
    }

    #[test]
    fn parse_dns_program_with_function_call() {
        let src = r#"
            r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                nameServer(@X, DM, SV), f_isSubDomain(DM, URL) == true.
        "#;
        let p = parse_program(src).unwrap();
        let r2 = &p.rules[0];
        assert_eq!(r2.body.len(), 3);
        match &r2.body[2] {
            BodyItem::Constraint {
                left, op, right, ..
            } => {
                assert_eq!(*op, CmpOp::Eq);
                assert!(
                    matches!(&left.kind, ExprKind::Call(name, args) if name == "f_isSubDomain" && args.len() == 2)
                );
                assert_eq!(*right, Expr::cnst(Value::Bool(true)));
            }
            other => panic!("expected constraint, got {other:?}"),
        }
    }

    #[test]
    fn parse_assignment() {
        let src = "r2 recv(@L, S, N, DT) :- packet(@L, S, D, DT), N := L + 2.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[1] {
            BodyItem::Assign { var, expr, .. } => {
                assert_eq!(var, "N");
                assert!(matches!(expr.kind, ExprKind::BinOp(BinOp::Add, _, _)));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parse_constants_in_atoms() {
        let src = r#"r1 a(@X, 5, "hi", true) :- b(@X, -3)."#;
        let p = parse_program(src).unwrap();
        let head = &p.rules[0].head;
        assert_eq!(head.args[1], Term::cnst(Value::Int(5)));
        assert_eq!(head.args[2], Term::cnst(Value::str("hi")));
        assert_eq!(head.args[3], Term::cnst(Value::Bool(true)));
        assert_eq!(
            p.rules[0].event().unwrap().args[1],
            Term::cnst(Value::Int(-3))
        );
    }

    #[test]
    fn operator_precedence() {
        let src = "r1 a(@X, Y) :- b(@X, Z), Y := Z + Z * 2.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[1] {
            BodyItem::Assign { expr, .. } => {
                // Must parse as Z + (Z * 2).
                assert_eq!(expr.to_string(), "(Z + (Z * 2))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions() {
        let src = "r1 a(@X, Y) :- b(@X, Z), Y := (Z + 1) * 2.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[1] {
            BodyItem::Assign { expr, .. } => assert_eq!(expr.to_string(), "((Z + 1) * 2)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_display() {
        let p1 = parse_program(FORWARDING).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let src = "r1 a(@X) :- b(@X). r1 c(@X) :- a(@X).";
        let err = parse_program(src).unwrap_err();
        assert!(err.to_string().contains("duplicate rule label"));
        // The error points at the second occurrence and names the first.
        match err {
            Error::Parse { line, col, msg } => {
                assert_eq!((line, col), (1, 20));
                assert!(msg.contains("first defined at 1:1"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn at_only_on_first_attribute() {
        let src = "r1 a(@X, @Y) :- b(@X).";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn uppercase_relation_rejected() {
        let src = "r1 Abc(@X) :- b(@X).";
        let err = parse_program(src).unwrap_err();
        match err {
            Error::Parse { line, col, .. } => assert_eq!((line, col), (1, 4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_period_rejected() {
        let src = "r1 a(@X) :- b(@X)";
        let err = parse_program(src).unwrap_err();
        assert!(err.to_string().contains("`.`"), "{err}");
        // End-of-input errors point just past the last token.
        match err {
            Error::Parse { line, col, .. } => assert_eq!((line, col), (1, 18)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_program_is_ok() {
        let p = parse_program("  % nothing here\n").unwrap();
        assert!(p.rules.is_empty());
    }

    #[test]
    fn error_position_is_reported() {
        let src = "r1 a(@X) :- b(@X),\n  ^bad.";
        match parse_program(src).unwrap_err() {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cmp_op_errors_list_expected_set() {
        let src = "r1 a(@X) :- b(@X), X 1.";
        let err = parse_program(src).unwrap_err();
        let msg = err.to_string();
        for op in ["==", "!=", "<", "<=", ">", ">="] {
            assert!(msg.contains(op), "missing `{op}` in: {msg}");
        }
        match err {
            Error::Parse { line, col, .. } => assert_eq!((line, col), (1, 22)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spans_cover_source_text() {
        let src = "r1 recv(@L, S) :- packet(@L, S), S >= 2.";
        let p = parse_program(src).unwrap();
        let rule = &p.rules[0];
        assert_eq!(&src[rule.span.start..rule.span.end], src);
        assert_eq!(&src[rule.label_span.start..rule.label_span.end], "r1");
        assert_eq!(
            &src[rule.head.span.start..rule.head.span.end],
            "recv(@L, S)"
        );
        let event = rule.event().unwrap();
        assert_eq!(&src[event.span.start..event.span.end], "packet(@L, S)");
        assert_eq!((event.span.line, event.span.col), (1, 19));
        match &rule.body[1] {
            BodyItem::Constraint { span, .. } => {
                assert_eq!(&src[span.start..span.end], "S >= 2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
