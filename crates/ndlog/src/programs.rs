//! Canonical DELP sources from the paper, shared across the workspace.

use crate::delp::Delp;
use crate::parser::parse_program;

/// Figure 1: the packet-forwarding program.
///
/// `r1` forwards a packet at node `L` toward destination `D` by joining the
/// local `route` table; `r2` stores the packet in `recv` when it reaches its
/// destination.
pub const PACKET_FORWARDING: &str = r#"
    r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
    r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
"#;

/// Figure 19: recursive DNS resolution.
///
/// `r1` forwards a request to the root nameserver; `r2` walks the delegation
/// chain (`nameServer`) while the requested URL is in a delegated sub-domain;
/// `r3` resolves against a local `addressRecord`; `r4` returns the reply to
/// the requesting host.
pub const DNS_RESOLUTION: &str = r#"
    r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
    r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
        nameServer(@X, DM, SV), f_isSubDomain(DM, URL) == true.
    r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
        addressRecord(@X, URL, IPADDR).
    r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
"#;

/// A DHCP-style address assignment DELP (Section 3.1 names DHCP as
/// expressible): a discover event is relayed to the local DHCP server,
/// which assigns an address from its pool and acknowledges the client.
pub const DHCP: &str = r#"
    r1 dhcpReq(@SV, CL, RQID)      :- discover(@CL, RQID), dhcpServer(@CL, SV).
    r2 offer(@CL, SV, IP, RQID)    :- dhcpReq(@SV, CL, RQID), addressPool(@SV, IP).
    r3 lease(@CL, SV, IP, RQID)    :- offer(@CL, SV, IP, RQID).
"#;

/// An ARP-style resolution DELP (Section 3.1 names ARP as expressible):
/// a who-has query is answered from the target's local binding table.
pub const ARP: &str = r#"
    r1 arpQuery(@GW, CL, IP, RQID) :- whoHas(@CL, IP, RQID), gateway(@CL, GW).
    r2 arpReply(@CL, IP, MAC, RQID) :- arpQuery(@GW, CL, IP, RQID), binding(@GW, IP, MAC).
"#;

/// Parse-and-validate [`PACKET_FORWARDING`].
pub fn packet_forwarding() -> Delp {
    Delp::new(parse_program(PACKET_FORWARDING).expect("forwarding program parses"))
        .expect("forwarding program is a valid DELP")
}

/// Parse-and-validate [`DNS_RESOLUTION`].
pub fn dns_resolution() -> Delp {
    Delp::new(parse_program(DNS_RESOLUTION).expect("DNS program parses"))
        .expect("DNS program is a valid DELP")
}

/// Parse-and-validate [`DHCP`].
pub fn dhcp() -> Delp {
    Delp::new(parse_program(DHCP).expect("DHCP program parses"))
        .expect("DHCP program is a valid DELP")
}

/// Parse-and-validate [`ARP`].
pub fn arp() -> Delp {
    Delp::new(parse_program(ARP).expect("ARP program parses")).expect("ARP program is a valid DELP")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::equivalence_keys;

    #[test]
    fn all_programs_are_valid_delps() {
        packet_forwarding();
        dns_resolution();
        dhcp();
        arp();
    }

    #[test]
    fn forwarding_classification() {
        let d = packet_forwarding();
        assert_eq!(d.input_event(), "packet");
        assert!(d.is_output("recv"));
        assert!(d.is_slow("route"));
    }

    #[test]
    fn dns_classification() {
        let d = dns_resolution();
        assert_eq!(d.input_event(), "url");
        assert!(d.is_output("reply"));
        for slow in ["rootServer", "nameServer", "addressRecord"] {
            assert!(d.is_slow(slow), "{slow} should be slow-changing");
        }
    }

    #[test]
    fn dhcp_keys() {
        let k = equivalence_keys(&dhcp());
        // discover(@CL, RQID): only the client location joins slow state;
        // the request id does not.
        assert_eq!(k.rel(), "discover");
        assert_eq!(k.indices(), &[0]);
    }

    #[test]
    fn arp_keys() {
        let k = equivalence_keys(&arp());
        // whoHas(@CL, IP, RQID): location and requested IP are keys.
        assert_eq!(k.rel(), "whoHas");
        assert_eq!(k.indices(), &[0, 1]);
    }
}
