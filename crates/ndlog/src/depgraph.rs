//! Attribute-level dependency graph (Section 5.2, Appendix C).
//!
//! Nodes are attributes `(rel, index)` of the relations appearing in a DELP.
//! Undirected edges connect an attribute of a rule's *event* atom to another
//! attribute of the same rule under the four conditions of Section 5.2:
//!
//! 1. same variable in a slow-changing condition atom (a *join* with slow
//!    state — `joinSAttr` in Appendix B),
//! 2. same variable in the head atom (`joinFAttr`),
//! 3. both variables appear in the same arithmetic atom (constraint),
//! 4. the event attribute feeds the right-hand side of an assignment whose
//!    left-hand variable appears elsewhere in the rule.
//!
//! Because nodes are keyed by `(rel, index)`, the head attributes of rule
//! `r_i` and the event attributes of rule `r_{i+1}` are the *same* node —
//! which is exactly how information flow propagates down the rule chain in
//! the paper's formulation.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ast::{BodyItem, Rule};
use crate::delp::Delp;

/// An attribute node: relation name plus 0-based attribute index.
pub type AttrNode = (String, usize);

/// The attribute-level dependency graph of a DELP.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Adjacency sets, keyed by attribute node.
    adj: HashMap<AttrNode, HashSet<AttrNode>>,
    /// Nodes that belong to slow-changing relations.
    slow_nodes: HashSet<AttrNode>,
}

impl DepGraph {
    /// Build the dependency graph for a validated DELP.
    pub fn build(delp: &Delp) -> DepGraph {
        let mut g = DepGraph {
            adj: HashMap::new(),
            slow_nodes: HashSet::new(),
        };

        // Register every attribute of every atom occurrence as a node, and
        // mark slow-relation attributes.
        for rule in delp.rules() {
            let atoms =
                std::iter::once(&rule.head).chain(rule.body.iter().filter_map(|b| match b {
                    BodyItem::Atom(a) => Some(a),
                    _ => None,
                }));
            for atom in atoms {
                for i in 0..atom.arity() {
                    let node = (atom.rel.clone(), i);
                    g.adj.entry(node.clone()).or_default();
                    if delp.is_slow(&atom.rel) {
                        g.slow_nodes.insert(node);
                    }
                }
            }
        }

        for rule in delp.rules() {
            g.add_rule_edges(rule);
        }
        g
    }

    fn add_edge(&mut self, a: AttrNode, b: AttrNode) {
        if a == b {
            return;
        }
        self.adj.entry(a.clone()).or_default().insert(b.clone());
        self.adj.entry(b).or_default().insert(a);
    }

    fn add_rule_edges(&mut self, rule: &Rule) {
        let event = rule.event().expect("DELP validation guarantees an event");

        // Variable occurrence maps for this rule.
        let mut ev_pos: HashMap<&str, Vec<AttrNode>> = HashMap::new();
        let mut cond_pos: HashMap<&str, Vec<AttrNode>> = HashMap::new();
        let mut head_pos: HashMap<&str, Vec<AttrNode>> = HashMap::new();
        let mut all_pos: HashMap<&str, Vec<AttrNode>> = HashMap::new();

        for (i, t) in event.args.iter().enumerate() {
            if let Some(v) = t.as_var() {
                let node = (event.rel.clone(), i);
                ev_pos.entry(v).or_default().push(node.clone());
                all_pos.entry(v).or_default().push(node);
            }
        }
        for cond in rule.condition_atoms() {
            for (i, t) in cond.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    let node = (cond.rel.clone(), i);
                    cond_pos.entry(v).or_default().push(node.clone());
                    all_pos.entry(v).or_default().push(node);
                }
            }
        }
        for (i, t) in rule.head.args.iter().enumerate() {
            if let Some(v) = t.as_var() {
                let node = (rule.head.rel.clone(), i);
                head_pos.entry(v).or_default().push(node.clone());
                all_pos.entry(v).or_default().push(node);
            }
        }

        // Condition 1: event attribute joins a slow-changing attribute.
        // Condition 2: event attribute flows to a head attribute.
        for (var, evs) in &ev_pos {
            for p in evs {
                for q in cond_pos.get(var).into_iter().flatten() {
                    self.add_edge(p.clone(), q.clone());
                }
                for q in head_pos.get(var).into_iter().flatten() {
                    self.add_edge(p.clone(), q.clone());
                }
            }
        }

        // Condition 3: attributes sharing an arithmetic atom.
        for (left, _, right) in rule.constraints() {
            let mut vars: Vec<&str> = left.vars();
            for v in right.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            for x in &vars {
                let Some(ps) = ev_pos.get(x) else { continue };
                for y in &vars {
                    for q in all_pos.get(y).into_iter().flatten() {
                        for p in ps {
                            self.add_edge(p.clone(), q.clone());
                        }
                    }
                }
            }
        }

        // Condition 4: assignments — rhs event attributes connect to every
        // occurrence of the lhs variable.
        for (lhs, expr) in rule.assignments() {
            for x in expr.vars() {
                let Some(ps) = ev_pos.get(x) else { continue };
                for q in all_pos.get(lhs).into_iter().flatten() {
                    for p in ps {
                        self.add_edge(p.clone(), q.clone());
                    }
                }
            }
        }
    }

    /// All nodes in the graph.
    pub fn nodes(&self) -> impl Iterator<Item = &AttrNode> {
        self.adj.keys()
    }

    /// Neighbors of `node`.
    pub fn neighbors(&self, node: &AttrNode) -> impl Iterator<Item = &AttrNode> {
        self.adj.get(node).into_iter().flatten()
    }

    /// Is there an edge between `a` and `b`?
    pub fn has_edge(&self, a: &AttrNode, b: &AttrNode) -> bool {
        self.adj.get(a).is_some_and(|s| s.contains(b))
    }

    /// Is `node` an attribute of a slow-changing relation?
    pub fn is_slow_node(&self, node: &AttrNode) -> bool {
        self.slow_nodes.contains(node)
    }

    /// Does `start` reach (via any path) an attribute of a slow-changing
    /// relation? This is the reachability test of `GetEquiKeys` (Figure 5).
    pub fn reaches_slow(&self, start: &AttrNode) -> bool {
        if !self.adj.contains_key(start) {
            return false;
        }
        let mut seen: HashSet<&AttrNode> = HashSet::new();
        let mut queue: VecDeque<&AttrNode> = VecDeque::new();
        if let Some((k, _)) = self.adj.get_key_value(start) {
            seen.insert(k);
            queue.push_back(k);
        }
        while let Some(n) = queue.pop_front() {
            if self.slow_nodes.contains(n) {
                return true;
            }
            for m in self.neighbors(n) {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        false
    }

    /// Render the graph in Graphviz dot format (Appendix C's Figure 17
    /// can be regenerated this way). Slow-relation attributes are drawn
    /// as boxes, the rest as ellipses; output is sorted for determinism.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "graph \"{title}\" {{").expect("write to String");
        let mut nodes: Vec<&AttrNode> = self.adj.keys().collect();
        nodes.sort();
        for n in &nodes {
            let shape = if self.is_slow_node(n) {
                "box"
            } else {
                "ellipse"
            };
            writeln!(out, "  \"{}:{}\" [shape={shape}];", n.0, n.1).expect("write to String");
        }
        let mut edges: Vec<(&AttrNode, &AttrNode)> = Vec::new();
        for a in &nodes {
            for b in self.neighbors(a) {
                if (a.0.as_str(), a.1) < (b.0.as_str(), b.1) {
                    edges.push((a, b));
                }
            }
        }
        edges.sort();
        for (a, b) in edges {
            writeln!(out, "  \"{}:{}\" -- \"{}:{}\";", a.0, a.1, b.0, b.1)
                .expect("write to String");
        }
        writeln!(out, "}}").expect("write to String");
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(HashSet::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delp::Delp;
    use crate::parser::parse_program;

    fn graph(src: &str) -> DepGraph {
        DepGraph::build(&Delp::new(parse_program(src).unwrap()).unwrap())
    }

    const FORWARDING: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    "#;

    fn n(rel: &str, i: usize) -> AttrNode {
        (rel.to_string(), i)
    }

    #[test]
    fn forwarding_graph_has_paper_edges() {
        // Appendix C (Figure 17): the packet-forwarding dependency graph.
        let g = graph(FORWARDING);
        // Condition 1 joins with the slow route table in r1:
        assert!(g.has_edge(&n("packet", 0), &n("route", 0)));
        assert!(g.has_edge(&n("packet", 2), &n("route", 1)));
        // Condition 2 head edges in r2:
        assert!(g.has_edge(&n("packet", 0), &n("recv", 0)));
        assert!(g.has_edge(&n("packet", 1), &n("recv", 1)));
        assert!(g.has_edge(&n("packet", 3), &n("recv", 3)));
        // Condition 3: D == L connects packet:0 and packet:2.
        assert!(g.has_edge(&n("packet", 0), &n("packet", 2)));
    }

    #[test]
    fn forwarding_graph_reachability() {
        let g = graph(FORWARDING);
        assert!(g.reaches_slow(&n("packet", 0)));
        assert!(g.reaches_slow(&n("packet", 2)));
        // Source and payload never join slow state.
        assert!(!g.reaches_slow(&n("packet", 1)));
        assert!(!g.reaches_slow(&n("packet", 3)));
    }

    #[test]
    fn slow_nodes_are_marked() {
        let g = graph(FORWARDING);
        assert!(g.is_slow_node(&n("route", 0)));
        assert!(g.is_slow_node(&n("route", 2)));
        assert!(!g.is_slow_node(&n("packet", 0)));
    }

    #[test]
    fn head_nodes_unify_with_next_rule_event() {
        // packet appears as r1's event, r1's head and r2's event — one node
        // set. The total node count is |packet|*4? No: packet(4) + route(3)
        // + recv(4) = 11.
        let g = graph(FORWARDING);
        assert_eq!(g.node_count(), 11);
    }

    #[test]
    fn assignment_edges() {
        let src = r#"
            r1 a(@X, Z) :- e(@X, Y), s(@X, X), Z := Y + 1.
        "#;
        let g = graph(src);
        // Y (e:1) feeds Z, which is a:1.
        assert!(g.has_edge(&n("e", 1), &n("a", 1)));
    }

    #[test]
    fn function_call_constraint_edges() {
        let src = r#"
            r1 a(@X, U) :- e(@X, U), s(@X, D), f_sub(D, U) == true.
        "#;
        let g = graph(src);
        // U (e:1) shares the arithmetic atom with D, which occurs at s:1.
        assert!(g.has_edge(&n("e", 1), &n("s", 1)));
        assert!(g.reaches_slow(&n("e", 1)));
    }

    #[test]
    fn unknown_node_does_not_reach() {
        let g = graph(FORWARDING);
        assert!(!g.reaches_slow(&n("nosuch", 0)));
    }

    #[test]
    fn dot_export_is_deterministic_and_complete() {
        let g = graph(FORWARDING);
        let dot = g.to_dot("fig17");
        assert_eq!(dot, graph(FORWARDING).to_dot("fig17"));
        assert!(dot.starts_with("graph \"fig17\" {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every node appears; slow attributes are boxes.
        assert!(dot.contains("\"packet:0\" [shape=ellipse]"));
        assert!(dot.contains("\"route:0\" [shape=box]"));
        // The D == L edge of rule r2.
        assert!(dot.contains("\"packet:0\" -- \"packet:2\";"));
        // Edge lines = edge_count.
        let edge_lines = dot.lines().filter(|l| l.contains("--")).count();
        assert_eq!(edge_lines, g.edge_count());
    }

    #[test]
    fn edge_count_is_symmetric() {
        let g = graph(FORWARDING);
        // Every has_edge(a,b) implies has_edge(b,a).
        for a in g.nodes() {
            for b in g.neighbors(a) {
                assert!(g.has_edge(b, a));
            }
        }
        assert!(g.edge_count() > 0);
    }
}
