//! Tokenizer for NDlog source text.
//!
//! Supports line comments beginning with `//` or `%`. String literals use
//! double quotes with `\"` and `\\` escapes. Integers may be negative.

use dpc_common::{Error, Result};

use crate::span::Span;

/// One lexical token plus its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte range and line/column of the token in the source text.
    pub span: Span,
}

/// The kinds of token NDlog source can contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (relation, variable or function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (already unescaped).
    Str(String),
    /// A boolean literal (`true` / `false`).
    Bool(bool),
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `:-`
    ColonDash,
    /// `:=`
    ColonEq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl TokenKind {
    /// A short human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Bool(b) => format!("boolean `{b}`"),
            TokenKind::At => "`@`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Period => "`.`".into(),
            TokenKind::ColonDash => "`:-`".into(),
            TokenKind::ColonEq => "`:=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
        }
    }
}

/// Tokenize NDlog source text.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    offset: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            offset: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                None => break,
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('%') => {
                    self.skip_line();
                    continue;
                }
                Some('/') => {
                    // Could be `//` comment or `/` operator; need lookahead.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        self.skip_line();
                        continue;
                    }
                }
                _ => {}
            }
            let (start, line, col) = (self.offset, self.line, self.col);
            let kind = self.next_kind()?;
            out.push(Token {
                kind,
                span: Span::new(start, self.offset, line, col),
            });
        }
        Ok(out)
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn next_kind(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("caller checked non-empty");
        Ok(match c {
            '@' => TokenKind::At,
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            ',' => TokenKind::Comma,
            '.' => TokenKind::Period,
            '+' => TokenKind::Plus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '-' => {
                // Negative integer literal or minus operator. A digit
                // immediately after `-` makes it a literal.
                if self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let n = self.lex_int()?;
                    TokenKind::Int(-n)
                } else {
                    TokenKind::Minus
                }
            }
            ':' => match self.bump() {
                Some('-') => TokenKind::ColonDash,
                Some('=') => TokenKind::ColonEq,
                other => {
                    return Err(self.err(format!(
                        "expected `:-` or `:=`, found `:{}`",
                        other.map(String::from).unwrap_or_default()
                    )))
                }
            },
            '=' => match self.bump() {
                Some('=') => TokenKind::EqEq,
                _ => return Err(self.err("expected `==`")),
            },
            '!' => match self.bump() {
                Some('=') => TokenKind::NotEq,
                _ => return Err(self.err("expected `!=`")),
            },
            '<' => {
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '"' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string literal")),
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(self.err(format!(
                                    "unknown escape `\\{}`",
                                    other.map(String::from).unwrap_or_default()
                                )))
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut n = (c as u8 - b'0') as i64;
                while let Some(d) = self.chars.peek().and_then(|c| c.to_digit(10)) {
                    self.bump();
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as i64))
                        .ok_or_else(|| self.err("integer literal overflows i64"))?;
                }
                TokenKind::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                s.push(c);
                while let Some(&p) = self.chars.peek() {
                    if p.is_ascii_alphanumeric() || p == '_' {
                        s.push(p);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    _ => TokenKind::Ident(s),
                }
            }
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        })
    }

    fn lex_int(&mut self) -> Result<i64> {
        let mut n: i64 = 0;
        while let Some(d) = self.chars.peek().and_then(|c| c.to_digit(10)) {
            self.bump();
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(d as i64))
                .ok_or_else(|| self.err("integer literal overflows i64"))?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_rule_fragment() {
        let ks = kinds("r1 packet(@N, S) :- D == L.");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("r1".into()),
                TokenKind::Ident("packet".into()),
                TokenKind::LParen,
                TokenKind::At,
                TokenKind::Ident("N".into()),
                TokenKind::Comma,
                TokenKind::Ident("S".into()),
                TokenKind::RParen,
                TokenKind::ColonDash,
                TokenKind::Ident("D".into()),
                TokenKind::EqEq,
                TokenKind::Ident("L".into()),
                TokenKind::Period,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds(":= == != < <= > >= + - * /"),
            vec![
                TokenKind::ColonEq,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
            ]
        );
    }

    #[test]
    fn lex_literals() {
        assert_eq!(
            kinds(r#"42 -7 "ab\"c" true false"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Str("ab\"c".into()),
                TokenKind::Bool(true),
                TokenKind::Bool(false),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // rest of line\n% whole line\nb");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn slash_operator_still_lexes() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("ab\n cd").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 2));
        // Byte offsets are tracked too: `cd` starts after `ab\n ` (4 bytes).
        assert_eq!((toks[0].span.start, toks[0].span.end), (0, 2));
        assert_eq!((toks[1].span.start, toks[1].span.end), (4, 6));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn stray_colon_is_error() {
        assert!(lex(": x").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(lex("a ^ b").is_err());
    }

    #[test]
    fn minus_before_space_is_operator() {
        assert_eq!(
            kinds("a - 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
            ]
        );
    }
}
