//! Typed diagnostics with stable codes and rustc-style rendering.
//!
//! Every finding of the semantic analyzer ([`crate::analyze`]) is a
//! [`Diagnostic`]: a stable [`Code`] (`E01xx` errors, `W02xx` warnings), a
//! severity, a human message, a primary [`Label`] anchoring the finding to
//! a source [`Span`], and optional secondary labels pointing at related
//! locations (the first definition a duplicate clashes with, the head a
//! condition atom shadows, ...).
//!
//! [`Diagnostic::render`] produces the familiar compiler excerpt:
//!
//! ```text
//! error[E0108]: head variable `Z` of rule `r1` is not bound by the body
//!  --> prog.ndlog:1:10
//!   |
//! 1 | r1 a(@X, Z) :- e(@X, Y).
//!   |          ^ not bound by any atom or assignment
//! ```

use std::fmt;

use crate::span::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The program violates a hard requirement and cannot run.
    Error,
    /// The program runs but probably does not mean what it says.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Stable diagnostic codes.
///
/// `E01xx` codes are DELP-validation errors (Definition 1 plus the safety
/// and consistency requirements evaluation depends on); `W02xx` codes are
/// advisory analyses. Codes never change meaning once shipped; new checks
/// get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// Program has no rules.
    E0101,
    /// A rule has no event atom in its body.
    E0102,
    /// A rule does not lead with its event atom.
    E0103,
    /// Consecutive rules are not dependent (strict DELP only).
    E0104,
    /// Head arity differs from the dependent event's arity (strict only).
    E0105,
    /// A relation is used with inconsistent arities.
    E0106,
    /// A head relation appears as a non-event (condition) atom (strict only).
    E0107,
    /// A head variable is not bound by the body (range restriction).
    E0108,
    /// The input event relation also appears as a slow-changing atom.
    E0109,
    /// No output relation: every head is consumed as an event.
    E0110,
    /// Two rules share a label.
    E0111,
    /// A variable is bound once and never used (likely a typo).
    W0201,
    /// An expression variable is never bound: evaluation will fail.
    W0202,
    /// The head location specifier is a constant.
    W0203,
    /// A condition atom does not share the event's location variable.
    W0204,
    /// A rule's event relation is unreachable from the input event.
    W0205,
    /// An assignment shadows a variable that is already bound.
    W0206,
    /// Equivalence keys cover every event attribute: zero compression.
    W0207,
    /// An attribute is used with conflicting value kinds.
    W0208,
}

impl Code {
    /// The stable textual form, e.g. `"E0108"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::E0101 => "E0101",
            Code::E0102 => "E0102",
            Code::E0103 => "E0103",
            Code::E0104 => "E0104",
            Code::E0105 => "E0105",
            Code::E0106 => "E0106",
            Code::E0107 => "E0107",
            Code::E0108 => "E0108",
            Code::E0109 => "E0109",
            Code::E0110 => "E0110",
            Code::E0111 => "E0111",
            Code::W0201 => "W0201",
            Code::W0202 => "W0202",
            Code::W0203 => "W0203",
            Code::W0204 => "W0204",
            Code::W0205 => "W0205",
            Code::W0206 => "W0206",
            Code::W0207 => "W0207",
            Code::W0208 => "W0208",
        }
    }

    /// The severity this code carries by default. Relaxed validation
    /// downgrades the strict-only codes (E0104, E0105, E0107) to warnings.
    pub fn default_severity(&self) -> Severity {
        match self.as_str().as_bytes()[0] {
            b'E' => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// One-line summary of what the code means (used by docs and `dpc-lint`).
    pub fn summary(&self) -> &'static str {
        match self {
            Code::E0101 => "program has no rules",
            Code::E0102 => "rule has no event atom",
            Code::E0103 => "rule does not lead with its event atom",
            Code::E0104 => "consecutive rules are not dependent",
            Code::E0105 => "head arity differs from the dependent event",
            Code::E0106 => "relation used with inconsistent arities",
            Code::E0107 => "head relation appears as a condition atom",
            Code::E0108 => "head variable not bound by the body",
            Code::E0109 => "input event relation is also slow-changing",
            Code::E0110 => "no output relation",
            Code::E0111 => "duplicate rule label",
            Code::W0201 => "variable bound but never used",
            Code::W0202 => "expression variable never bound",
            Code::W0203 => "constant head location specifier",
            Code::W0204 => "condition atom not local to the event",
            Code::W0205 => "rule unreachable from the input event",
            Code::W0206 => "assignment shadows a bound variable",
            Code::W0207 => "equivalence keys cover all event attributes",
            Code::W0208 => "attribute used with conflicting value kinds",
        }
    }

    /// All codes, in ascending order.
    pub const ALL: [Code; 19] = [
        Code::E0101,
        Code::E0102,
        Code::E0103,
        Code::E0104,
        Code::E0105,
        Code::E0106,
        Code::E0107,
        Code::E0108,
        Code::E0109,
        Code::E0110,
        Code::E0111,
        Code::W0201,
        Code::W0202,
        Code::W0203,
        Code::W0204,
        Code::W0205,
        Code::W0206,
        Code::W0207,
        Code::W0208,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A span with an attached note, anchoring a diagnostic to source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where in the source the label points.
    pub span: Span,
    /// Short note rendered next to the carets (may be empty).
    pub message: String,
}

impl Label {
    /// A label at `span` with note `message`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Label {
            span,
            message: message.into(),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually [`Code::default_severity`]; relaxed validation
    /// downgrades strict-only errors to warnings).
    pub severity: Severity,
    /// The main human-readable message.
    pub message: String,
    /// Primary location of the finding.
    pub primary: Label,
    /// Related locations (first definition, conflicting use, ...).
    pub secondary: Vec<Label>,
}

impl Diagnostic {
    /// A diagnostic at `code`'s default severity.
    pub fn new(code: Code, message: impl Into<String>, primary: Label) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            primary,
            secondary: Vec::new(),
        }
    }

    /// Downgrade to warning severity (relaxed validation).
    pub fn warning(mut self) -> Self {
        self.severity = Severity::Warning;
        self
    }

    /// Attach a secondary label.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.secondary.push(Label::new(span, message));
        self
    }

    /// Is this an error-severity diagnostic?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render the diagnostic with a source excerpt, rustc style. `name` is
    /// the display name of the source (file path or program name).
    ///
    /// Dummy spans render the header only; secondary labels get their own
    /// excerpt blocks underlined with `-`.
    pub fn render(&self, src: &str, name: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        render_block(&mut out, src, name, &self.primary, '^');
        for sec in &self.secondary {
            render_block(&mut out, src, name, sec, '-');
        }
        out
    }
}

/// Append one ` --> name:line:col` excerpt block for `label` to `out`.
fn render_block(out: &mut String, src: &str, name: &str, label: &Label, marker: char) {
    let span = label.span;
    if span.is_dummy() {
        if !label.message.is_empty() {
            out.push_str(&format!("  = note: {}\n", label.message));
        }
        return;
    }
    let Some((line_start, line_text)) = line_bounds(src, span.line) else {
        out.push_str(&format!(" --> {name}:{}:{}\n", span.line, span.col));
        return;
    };
    let gutter = span.line.to_string();
    let pad = " ".repeat(gutter.len());
    // Marker width: characters of the span that fall on its first line.
    let end = span.end.min(line_start + line_text.len()).max(span.start);
    let width = src
        .get(span.start..end)
        .map(|s| s.chars().count())
        .unwrap_or(1)
        .max(1);
    let indent = " ".repeat(span.col.saturating_sub(1));
    let markers = marker.to_string().repeat(width);
    out.push_str(&format!("{pad}--> {name}:{}:{}\n", span.line, span.col));
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{gutter} | {line_text}\n"));
    if label.message.is_empty() {
        out.push_str(&format!("{pad} | {indent}{markers}\n"));
    } else {
        out.push_str(&format!("{pad} | {indent}{markers} {}\n", label.message));
    }
}

/// Byte offset and text of 1-based line `line` in `src`.
fn line_bounds(src: &str, line: usize) -> Option<(usize, &str)> {
    let mut offset = 0usize;
    for (i, text) in src.split('\n').enumerate() {
        if i + 1 == line {
            return Some((offset, text));
        }
        offset += text.len() + 1;
    }
    None
}

/// Wrap a parser/lexer error (`Error::Parse { line, col, msg }`) in a
/// renderable diagnostic-style excerpt. Parse errors have no stable code;
/// they render as `error: <msg>` with a one-character caret.
pub fn render_parse_error(src: &str, name: &str, line: usize, col: usize, msg: &str) -> String {
    let mut out = format!("error: {msg}\n");
    let label = Label::new(Span::from_line_col(src, line, col), "");
    render_block(&mut out, src, name, &label, '^');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        assert_eq!(Code::E0108.as_str(), "E0108");
        assert_eq!(Code::E0108.default_severity(), Severity::Error);
        assert_eq!(Code::W0204.default_severity(), Severity::Warning);
        let strs: Vec<_> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort();
        assert_eq!(strs, sorted, "Code::ALL must be ascending");
    }

    #[test]
    fn render_points_carets_at_the_span() {
        let src = "r1 a(@X, Z) :- e(@X, Y).";
        let d = Diagnostic::new(
            Code::E0108,
            "head variable `Z` of rule `r1` is not bound by the body",
            Label::new(Span::new(9, 10, 1, 10), "not bound"),
        );
        let rendered = d.render(src, "prog.ndlog");
        assert_eq!(
            rendered,
            "error[E0108]: head variable `Z` of rule `r1` is not bound by the body\n \
             --> prog.ndlog:1:10\n  \
             |\n\
             1 | r1 a(@X, Z) :- e(@X, Y).\n  \
             |          ^ not bound\n"
        );
    }

    #[test]
    fn render_secondary_labels_use_dashes() {
        let src = "r1 a(@X) :- b(@X).\nr1 c(@X) :- a(@X).";
        let d = Diagnostic::new(
            Code::E0111,
            "duplicate rule label `r1`",
            Label::new(Span::new(19, 21, 2, 1), "label redefined here"),
        )
        .with_secondary(Span::new(0, 2, 1, 1), "first defined here");
        let rendered = d.render(src, "p");
        assert!(rendered.contains("^^ label redefined here"), "{rendered}");
        assert!(rendered.contains("-- first defined here"), "{rendered}");
        assert!(rendered.contains("--> p:2:1"), "{rendered}");
        assert!(rendered.contains("--> p:1:1"), "{rendered}");
    }

    #[test]
    fn dummy_spans_render_header_only() {
        let d = Diagnostic::new(
            Code::E0101,
            "program has no rules",
            Label::new(Span::DUMMY, ""),
        );
        assert_eq!(d.render("", "p"), "error[E0101]: program has no rules\n");
    }

    #[test]
    fn parse_errors_render_with_carets() {
        let src = "r1 a(@X) :- b(@X)";
        let rendered = render_parse_error(src, "p", 1, 18, "expected `.`, found end of input");
        assert!(rendered.starts_with("error: expected `.`"), "{rendered}");
        assert!(rendered.contains("--> p:1:18"), "{rendered}");
    }
}
