//! Source spans: byte ranges plus human-readable line/column positions.
//!
//! Every AST node produced by the parser carries a [`Span`] pointing back
//! at the source text it was parsed from, so semantic analysis can attach
//! diagnostics to precise source locations. Nodes synthesized by program
//! rewrites (see [`crate::rewrite`]) carry [`Span::DUMMY`].
//!
//! Spans are deliberately **ignored by `PartialEq` and `Hash`** on the AST
//! nodes that embed them: two programs that parse to the same structure
//! compare equal even when whitespace or formatting differ, which keeps
//! round-trip (`parse → Display → parse`) equality working.

/// A half-open byte range `[start, end)` into the source text, plus the
/// 1-based line/column of `start`.
///
/// [`Span::DUMMY`] (all zeros, `line == 0`) marks synthesized nodes that
/// have no source location; renderers skip the source excerpt for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte covered (exclusive).
    pub end: usize,
    /// 1-based source line of `start`; `0` for dummy spans.
    pub line: usize,
    /// 1-based source column (in characters) of `start`; `0` for dummy spans.
    pub col: usize,
}

impl Span {
    /// The span of a synthesized node with no source location.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Construct a span from its four components.
    pub fn new(start: usize, end: usize, line: usize, col: usize) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Is this the dummy span of a synthesized node?
    pub fn is_dummy(&self) -> bool {
        self.line == 0
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are the identity: joining with one returns the other
    /// unchanged, so partially-synthesized nodes keep whatever real
    /// location they have.
    pub fn join(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        let (line, col) = if (other.line, other.col) < (self.line, self.col) {
            (other.line, other.col)
        } else {
            (self.line, self.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }

    /// Reconstruct a one-character span from a 1-based line/column pair,
    /// as carried by [`dpc_common::Error::Parse`]. Returns [`Span::DUMMY`]
    /// when the position does not exist in `src`.
    pub fn from_line_col(src: &str, line: usize, col: usize) -> Span {
        if line == 0 || col == 0 {
            return Span::DUMMY;
        }
        let mut offset = 0usize;
        for (i, text) in src.split('\n').enumerate() {
            if i + 1 == line {
                let byte = text
                    .char_indices()
                    .nth(col - 1)
                    .map(|(b, _)| b)
                    .unwrap_or(text.len());
                let start = offset + byte;
                let end = if start < src.len() { start + 1 } else { start };
                return Span {
                    start,
                    end,
                    line,
                    col,
                };
            }
            offset += text.len() + 1;
        }
        Span::DUMMY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both_and_keeps_earlier_position() {
        let a = Span::new(4, 7, 1, 5);
        let b = Span::new(10, 12, 2, 3);
        assert_eq!(a.join(b), Span::new(4, 12, 1, 5));
        assert_eq!(b.join(a), Span::new(4, 12, 1, 5));
    }

    #[test]
    fn dummy_is_join_identity() {
        let a = Span::new(4, 7, 1, 5);
        assert_eq!(a.join(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.join(a), a);
        assert!(Span::DUMMY.is_dummy());
    }

    #[test]
    fn from_line_col_finds_byte_offsets() {
        let src = "ab\ncdef\ng";
        let s = Span::from_line_col(src, 2, 3);
        assert_eq!((s.start, s.end, s.line, s.col), (5, 6, 2, 3));
        assert_eq!(&src[s.start..s.end], "e");
        assert!(Span::from_line_col(src, 9, 1).is_dummy());
        assert!(Span::from_line_col(src, 0, 0).is_dummy());
    }
}
