//! DELP validation — Definition 1 of the paper.
//!
//! A *distributed event-driven linear program* is an NDlog program in which
//! (1) every rule is event-driven, (2) consecutive rules are dependent (the
//! head relation of `r_i` is the event relation of `r_{i+1}`), and (3) head
//! relations only ever appear as event relations in rule bodies.
//!
//! We follow the paper's convention that the event atom of a rule is the
//! *first* relational atom in its body (`[head] :- [event], [conditions]`);
//! every other relational atom is a slow-changing condition atom.
//!
//! Validation itself lives in [`crate::analyze::analyze_structure`]; this
//! module turns its findings into the legacy [`Error::InvalidDelp`] result
//! and, for [`Delp::new_relaxed`], records the Definition 1 violations the
//! relaxed rule set tolerates as [`Diagnostic`] warnings instead of
//! silently dropping them.

use std::collections::BTreeSet;

use dpc_common::{Error, Result};

use crate::analyze::{analyze_structure, Mode};
use crate::ast::{Program, Rule};
use crate::diag::Diagnostic;

/// A validated DELP with its relation classification.
#[derive(Debug, Clone)]
pub struct Delp {
    program: Program,
    input_event: String,
    slow_rels: BTreeSet<String>,
    output_rels: BTreeSet<String>,
    event_rels: BTreeSet<String>,
    strict: bool,
    warnings: Vec<Diagnostic>,
}

impl Delp {
    /// Validate `program` against Definition 1 and classify its relations.
    pub fn new(program: Program) -> Result<Delp> {
        Self::build(program, Mode::Strict)
    }

    /// Validate under a relaxed rule set for *derived* programs (e.g. the
    /// output of the provenance rewrite, `crate::rewrite`): every rule
    /// must still lead with its event atom, bind its head variables and
    /// use relations with consistent arities, but one event may trigger
    /// several rules and heads need not chain consecutively. The
    /// Definition 1 conditions this tolerates are recorded as warnings —
    /// see [`Delp::validation_warnings`].
    pub fn new_relaxed(program: Program) -> Result<Delp> {
        Self::build(program, Mode::Relaxed)
    }

    fn build(program: Program, mode: Mode) -> Result<Delp> {
        let diagnostics = analyze_structure(&program, mode);
        if let Some(err) = diagnostics.iter().find(|d| d.is_error()) {
            return Err(Error::InvalidDelp(err.message.clone()));
        }
        let mut delp = Delp::from_parts(program, matches!(mode, Mode::Strict));
        delp.warnings = diagnostics;
        Ok(delp)
    }

    /// Classify the relations of a structurally validated program.
    ///
    /// Callers must have run [`analyze_structure`] first and found no
    /// errors; this constructor assumes every rule has an event atom.
    pub(crate) fn from_parts(program: Program, strict: bool) -> Delp {
        let head_rels: BTreeSet<String> =
            program.rules.iter().map(|r| r.head.rel.clone()).collect();
        let event_rels: BTreeSet<String> = program
            .rules
            .iter()
            .map(|r| r.event().expect("structurally valid").rel.clone())
            .collect();
        let slow_rels: BTreeSet<String> = program
            .rules
            .iter()
            .flat_map(|r| r.condition_atoms().map(|a| a.rel.clone()))
            .collect();
        // Output relations: heads that are not consumed as events by any
        // rule. For a linear chain this is the head of the last rule; a
        // recursive rule (e.g. DNS `request -> request`) keeps intermediate
        // heads in the event set.
        let output_rels: BTreeSet<String> = head_rels
            .iter()
            .filter(|h| !event_rels.contains(*h))
            .cloned()
            .collect();
        let input_event = program.rules[0]
            .event()
            .expect("structurally valid")
            .rel
            .clone();
        Delp {
            program,
            input_event,
            slow_rels,
            output_rels,
            event_rels,
            strict,
            warnings: Vec::new(),
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Rules in execution order.
    pub fn rules(&self) -> &[Rule] {
        &self.program.rules
    }

    /// The relation of the input event that triggers the program.
    pub fn input_event(&self) -> &str {
        &self.input_event
    }

    /// Slow-changing relations (non-event body relations).
    pub fn slow_rels(&self) -> &BTreeSet<String> {
        &self.slow_rels
    }

    /// Output relations: derived heads never consumed as events.
    pub fn output_rels(&self) -> &BTreeSet<String> {
        &self.output_rels
    }

    /// Event relations (input event plus intermediate heads).
    pub fn event_rels(&self) -> &BTreeSet<String> {
        &self.event_rels
    }

    /// Is `rel` a slow-changing relation of this program?
    pub fn is_slow(&self, rel: &str) -> bool {
        self.slow_rels.contains(rel)
    }

    /// Is `rel` an output relation of this program?
    pub fn is_output(&self, rel: &str) -> bool {
        self.output_rels.contains(rel)
    }

    /// Rules whose designated event relation is `rel`.
    pub fn rules_for_event<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a Rule> {
        self.program
            .rules
            .iter()
            .filter(move |r| r.event().map(|e| e.rel.as_str()) == Some(rel))
    }

    /// Arity of the input event relation.
    pub fn input_event_arity(&self) -> usize {
        self.program.rules[0].event().expect("validated").arity()
    }

    /// Was this validated under the strict Definition 1 rule set?
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Warnings recorded during validation. Strict validation produces
    /// none (anything it finds is an error); relaxed validation records
    /// the Definition 1 conditions it tolerated (E0104, E0105, E0107 at
    /// warning severity).
    pub fn validation_warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Severity};
    use crate::parser::parse_program;

    fn delp(src: &str) -> Result<Delp> {
        Delp::new(parse_program(src).unwrap())
    }

    const FORWARDING: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    "#;

    const DNS: &str = r#"
        r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
        r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
            nameServer(@X, DM, SV), f_isSubDomain(DM, URL) == true.
        r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
            addressRecord(@X, URL, IPADDR).
        r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
    "#;

    #[test]
    fn forwarding_is_valid_delp() {
        let d = delp(FORWARDING).unwrap();
        assert_eq!(d.input_event(), "packet");
        assert_eq!(
            d.slow_rels().iter().cloned().collect::<Vec<_>>(),
            vec!["route"]
        );
        assert_eq!(
            d.output_rels().iter().cloned().collect::<Vec<_>>(),
            vec!["recv"]
        );
        assert!(d.is_slow("route"));
        assert!(!d.is_slow("packet"));
        assert!(d.is_output("recv"));
        assert_eq!(d.input_event_arity(), 4);
        assert!(d.is_strict());
        assert!(d.validation_warnings().is_empty());
    }

    #[test]
    fn dns_is_valid_delp() {
        let d = delp(DNS).unwrap();
        assert_eq!(d.input_event(), "url");
        let slow: Vec<_> = d.slow_rels().iter().cloned().collect();
        assert_eq!(slow, vec!["addressRecord", "nameServer", "rootServer"]);
        let outs: Vec<_> = d.output_rels().iter().cloned().collect();
        assert_eq!(outs, vec!["reply"]);
        // request is recursive: both a head and an event.
        assert!(d.event_rels().contains("request"));
        assert_eq!(d.rules_for_event("request").count(), 2);
    }

    #[test]
    fn empty_program_rejected() {
        assert!(delp("").is_err());
    }

    #[test]
    fn rule_without_event_rejected() {
        let err = delp("r1 a(@X) :- X == X.").unwrap_err();
        assert!(err.to_string().contains("no event atom"), "{err}");
    }

    #[test]
    fn non_dependent_consecutive_rules_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- c(@X, Y), s(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("dependent"), "{err}");
    }

    #[test]
    fn head_as_condition_atom_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- a(@X, Y), a(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("non-event"), "{err}");
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let src = "r1 a(@X, Z) :- e(@X, Y).";
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("not bound"), "{err}");
    }

    #[test]
    fn inconsistent_relation_arity_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- a(@X, Y), s(@X).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        assert!(err.to_string().contains("`s`"), "{err}");
    }

    #[test]
    fn constraint_before_event_rejected() {
        let err = delp("r1 a(@X) :- X == X, e(@X, X).").unwrap_err();
        assert!(err.to_string().contains("lead with its event"), "{err}");
    }

    #[test]
    fn assignment_binds_head_variable() {
        let src = "r1 a(@X, Z) :- e(@X, Y), Z := Y + 1.";
        assert!(delp(src).is_ok());
    }

    #[test]
    fn arity_mismatch_across_dependency_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X) :- a(@X), s(@X, X).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn event_also_slow_rejected() {
        let src = "r1 a(@X, Y) :- e(@X, Y), e(@X, Y).";
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("slow-changing"), "{err}");
    }

    #[test]
    fn fully_consumed_heads_rejected() {
        // A two-rule cycle where every head is an event somewhere and
        // nothing is an output.
        let src = r#"
            r1 a(@X, Y) :- a(@X, Y), s(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("no output relation"), "{err}");
    }

    #[test]
    fn relaxed_surfaces_tolerated_violations_as_warnings() {
        // Non-dependent consecutive rules: strict validation rejects the
        // program; relaxed validation accepts it but must *surface* the
        // violation instead of swallowing it.
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- c(@X, Y), s(@X, Y).
        "#;
        let p = parse_program(src).unwrap();
        assert!(Delp::new(p.clone()).is_err());
        let d = Delp::new_relaxed(p).unwrap();
        assert!(!d.is_strict());
        let warnings = d.validation_warnings();
        assert!(
            !warnings.is_empty(),
            "relaxed validation must keep warnings"
        );
        assert!(warnings.iter().all(|w| w.severity == Severity::Warning));
        assert!(
            warnings.iter().any(|w| w.code == Code::E0104),
            "{warnings:#?}"
        );
    }

    #[test]
    fn relaxed_on_strictly_valid_program_has_no_warnings() {
        let d = Delp::new_relaxed(parse_program(FORWARDING).unwrap()).unwrap();
        assert!(d.validation_warnings().is_empty());
    }
}
