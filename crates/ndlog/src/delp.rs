//! DELP validation — Definition 1 of the paper.
//!
//! A *distributed event-driven linear program* is an NDlog program in which
//! (1) every rule is event-driven, (2) consecutive rules are dependent (the
//! head relation of `r_i` is the event relation of `r_{i+1}`), and (3) head
//! relations only ever appear as event relations in rule bodies.
//!
//! We follow the paper's convention that the event atom of a rule is the
//! *first* relational atom in its body (`[head] :- [event], [conditions]`);
//! every other relational atom is a slow-changing condition atom.

use std::collections::BTreeSet;

use dpc_common::{Error, Result};

use crate::ast::{Program, Rule};

/// A validated DELP with its relation classification.
#[derive(Debug, Clone)]
pub struct Delp {
    program: Program,
    input_event: String,
    slow_rels: BTreeSet<String>,
    output_rels: BTreeSet<String>,
    event_rels: BTreeSet<String>,
}

impl Delp {
    /// Validate `program` against Definition 1 and classify its relations.
    pub fn new(program: Program) -> Result<Delp> {
        Self::build(program, true)
    }

    /// Validate under a relaxed rule set for *derived* programs (e.g. the
    /// output of the provenance rewrite, `crate::rewrite`): every rule
    /// must still lead with its event atom, bind its head variables and
    /// use relations with consistent arities, but one event may trigger
    /// several rules and heads need not chain consecutively.
    pub fn new_relaxed(program: Program) -> Result<Delp> {
        Self::build(program, false)
    }

    fn build(program: Program, strict: bool) -> Result<Delp> {
        if program.rules.is_empty() {
            return Err(Error::InvalidDelp("program has no rules".into()));
        }

        // Condition 1: every rule is event-driven — the paper's form is
        // `[head] :- [event], [conditions]`, so the *first* body item must
        // be the event atom (evaluation then always binds the event's
        // variables before any constraint or assignment runs).
        for r in &program.rules {
            if r.event().is_none() {
                return Err(Error::InvalidDelp(format!(
                    "rule `{}` has no event atom in its body",
                    r.label
                )));
            }
            if !matches!(r.body.first(), Some(crate::ast::BodyItem::Atom(_))) {
                return Err(Error::InvalidDelp(format!(
                    "rule `{}` must lead with its event atom ([head] :- [event], [conditions])",
                    r.label
                )));
            }
        }

        // Condition 2: consecutive rules are dependent, and the head's
        // arity matches the next event's (a head tuple becomes the next
        // rule's event tuple). Relaxed programs may branch instead.
        if strict {
            for pair in program.rules.windows(2) {
                let (ri, rj) = (&pair[0], &pair[1]);
                let ev = rj.event().expect("checked above");
                if ri.head.rel != ev.rel {
                    return Err(Error::InvalidDelp(format!(
                        "head of `{}` is `{}` but event of `{}` is `{}` — consecutive rules must be dependent",
                        ri.label, ri.head.rel, rj.label, ev.rel
                    )));
                }
                if ri.head.arity() != ev.arity() {
                    return Err(Error::InvalidDelp(format!(
                        "head `{}` of rule `{}` has arity {} but event of `{}` has arity {}",
                        ri.head.rel,
                        ri.label,
                        ri.head.arity(),
                        rj.label,
                        ev.arity()
                    )));
                }
            }
        }

        // Every use of a relation must agree on its arity — an NDlog
        // program where `route` is ternary in one rule and binary in
        // another can never join as intended.
        {
            let mut arities: std::collections::BTreeMap<&str, (usize, &str)> = Default::default();
            for r in &program.rules {
                let atoms = std::iter::once(&r.head).chain(r.body.iter().filter_map(|b| match b {
                    crate::ast::BodyItem::Atom(a) => Some(a),
                    _ => None,
                }));
                for atom in atoms {
                    match arities.get(atom.rel.as_str()) {
                        Some(&(n, first_rule)) if n != atom.arity() => {
                            return Err(Error::InvalidDelp(format!(
                                "relation `{}` used with arity {} in rule `{}` but arity {n} in rule `{first_rule}`",
                                atom.rel,
                                atom.arity(),
                                r.label,
                            )));
                        }
                        Some(_) => {}
                        None => {
                            arities.insert(&atom.rel, (atom.arity(), &r.label));
                        }
                    }
                }
            }
        }

        let head_rels: BTreeSet<String> =
            program.rules.iter().map(|r| r.head.rel.clone()).collect();

        // Condition 3: head relations only appear as event relations in
        // bodies.
        if strict {
            for r in &program.rules {
                for cond in r.condition_atoms() {
                    if head_rels.contains(&cond.rel) {
                        return Err(Error::InvalidDelp(format!(
                            "head relation `{}` appears as a non-event atom in rule `{}`",
                            cond.rel, r.label
                        )));
                    }
                }
            }
        }

        // Safety: every head variable must be bound by the body (event,
        // condition atoms, or an assignment).
        for r in &program.rules {
            let mut bound: BTreeSet<&str> = BTreeSet::new();
            for atom in std::iter::once(r.event().expect("checked")).chain(r.condition_atoms()) {
                bound.extend(atom.vars());
            }
            for (var, _) in r.assignments() {
                bound.insert(var);
            }
            for v in r.head.vars() {
                if !bound.contains(v) {
                    return Err(Error::InvalidDelp(format!(
                        "head variable `{v}` of rule `{}` is not bound by the body",
                        r.label
                    )));
                }
            }
        }

        let event_rels: BTreeSet<String> = program
            .rules
            .iter()
            .map(|r| r.event().expect("checked").rel.clone())
            .collect();

        let slow_rels: BTreeSet<String> = program
            .rules
            .iter()
            .flat_map(|r| r.condition_atoms().map(|a| a.rel.clone()))
            .collect();

        // Output relations: heads that are not consumed as events by any
        // rule. For a linear chain this is the head of the last rule; a
        // recursive rule (e.g. DNS `request -> request`) keeps intermediate
        // heads in the event set.
        let output_rels: BTreeSet<String> = head_rels
            .iter()
            .filter(|h| !event_rels.contains(*h))
            .cloned()
            .collect();
        if output_rels.is_empty() {
            return Err(Error::InvalidDelp(
                "program has no output relation: every head is consumed as an event".into(),
            ));
        }

        // The input event: the event relation of the first rule. It must
        // not itself be derivable, except through the recursive-relation
        // idiom where the first rule's head has the same name (packet
        // forwarding). Slow relations must not double as events.
        let input_event = program.rules[0].event().expect("checked above").rel.clone();
        if slow_rels.contains(&input_event) {
            return Err(Error::InvalidDelp(format!(
                "input event relation `{input_event}` also appears as a slow-changing atom"
            )));
        }

        Ok(Delp {
            program,
            input_event,
            slow_rels,
            output_rels,
            event_rels,
        })
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Rules in execution order.
    pub fn rules(&self) -> &[Rule] {
        &self.program.rules
    }

    /// The relation of the input event that triggers the program.
    pub fn input_event(&self) -> &str {
        &self.input_event
    }

    /// Slow-changing relations (non-event body relations).
    pub fn slow_rels(&self) -> &BTreeSet<String> {
        &self.slow_rels
    }

    /// Output relations: derived heads never consumed as events.
    pub fn output_rels(&self) -> &BTreeSet<String> {
        &self.output_rels
    }

    /// Event relations (input event plus intermediate heads).
    pub fn event_rels(&self) -> &BTreeSet<String> {
        &self.event_rels
    }

    /// Is `rel` a slow-changing relation of this program?
    pub fn is_slow(&self, rel: &str) -> bool {
        self.slow_rels.contains(rel)
    }

    /// Is `rel` an output relation of this program?
    pub fn is_output(&self, rel: &str) -> bool {
        self.output_rels.contains(rel)
    }

    /// Rules whose designated event relation is `rel`.
    pub fn rules_for_event<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a Rule> {
        self.program
            .rules
            .iter()
            .filter(move |r| r.event().map(|e| e.rel.as_str()) == Some(rel))
    }

    /// Arity of the input event relation.
    pub fn input_event_arity(&self) -> usize {
        self.program.rules[0].event().expect("validated").arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn delp(src: &str) -> Result<Delp> {
        Delp::new(parse_program(src).unwrap())
    }

    const FORWARDING: &str = r#"
        r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
        r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
    "#;

    const DNS: &str = r#"
        r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
        r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
            nameServer(@X, DM, SV), f_isSubDomain(DM, URL) == true.
        r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
            addressRecord(@X, URL, IPADDR).
        r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
    "#;

    #[test]
    fn forwarding_is_valid_delp() {
        let d = delp(FORWARDING).unwrap();
        assert_eq!(d.input_event(), "packet");
        assert_eq!(
            d.slow_rels().iter().cloned().collect::<Vec<_>>(),
            vec!["route"]
        );
        assert_eq!(
            d.output_rels().iter().cloned().collect::<Vec<_>>(),
            vec!["recv"]
        );
        assert!(d.is_slow("route"));
        assert!(!d.is_slow("packet"));
        assert!(d.is_output("recv"));
        assert_eq!(d.input_event_arity(), 4);
    }

    #[test]
    fn dns_is_valid_delp() {
        let d = delp(DNS).unwrap();
        assert_eq!(d.input_event(), "url");
        let slow: Vec<_> = d.slow_rels().iter().cloned().collect();
        assert_eq!(slow, vec!["addressRecord", "nameServer", "rootServer"]);
        let outs: Vec<_> = d.output_rels().iter().cloned().collect();
        assert_eq!(outs, vec!["reply"]);
        // request is recursive: both a head and an event.
        assert!(d.event_rels().contains("request"));
        assert_eq!(d.rules_for_event("request").count(), 2);
    }

    #[test]
    fn empty_program_rejected() {
        assert!(delp("").is_err());
    }

    #[test]
    fn rule_without_event_rejected() {
        let err = delp("r1 a(@X) :- X == X.").unwrap_err();
        assert!(err.to_string().contains("no event atom"), "{err}");
    }

    #[test]
    fn non_dependent_consecutive_rules_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- c(@X, Y), s(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("dependent"), "{err}");
    }

    #[test]
    fn head_as_condition_atom_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- a(@X, Y), a(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("non-event"), "{err}");
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let src = "r1 a(@X, Z) :- e(@X, Y).";
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("not bound"), "{err}");
    }

    #[test]
    fn inconsistent_relation_arity_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X, Y) :- a(@X, Y), s(@X).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        assert!(err.to_string().contains("`s`"), "{err}");
    }

    #[test]
    fn constraint_before_event_rejected() {
        let err = delp("r1 a(@X) :- X == X, e(@X, X).").unwrap_err();
        assert!(err.to_string().contains("lead with its event"), "{err}");
    }

    #[test]
    fn assignment_binds_head_variable() {
        let src = "r1 a(@X, Z) :- e(@X, Y), Z := Y + 1.";
        assert!(delp(src).is_ok());
    }

    #[test]
    fn arity_mismatch_across_dependency_rejected() {
        let src = r#"
            r1 a(@X, Y) :- e(@X, Y), s(@X, Y).
            r2 b(@X) :- a(@X), s(@X, X).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn event_also_slow_rejected() {
        let src = "r1 a(@X, Y) :- e(@X, Y), e(@X, Y).";
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("slow-changing"), "{err}");
    }

    #[test]
    fn fully_consumed_heads_rejected() {
        // A two-rule cycle where every head is an event somewhere and
        // nothing is an output.
        let src = r#"
            r1 a(@X, Y) :- a(@X, Y), s(@X, Y).
        "#;
        let err = delp(src).unwrap_err();
        assert!(err.to_string().contains("no output relation"), "{err}");
    }
}
