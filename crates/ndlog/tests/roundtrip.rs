//! Property tests of the NDlog frontend: pretty-print → parse round
//! trips on randomly generated programs, and total robustness of the
//! lexer/parser on arbitrary input (errors, never panics).

use dpc_common::Value;
use dpc_ndlog::{parse_program, Atom, BinOp, BodyItem, CmpOp, Expr, Program, Rule, Term};
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,5}".prop_filter("no keyword collision", |s| {
        // None of ours collide (keywords are lowercase), but keep the
        // filter explicit.
        !matches!(s.as_str(), "")
    })
}

fn rel_name() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_filter("not a literal keyword or fn", |s| {
        s != "true" && s != "false" && !s.starts_with("f_")
    })
}

fn fn_name() -> impl Strategy<Value = String> {
    "f_[a-z][a-zA-Z0-9]{0,5}".prop_map(|s| s)
}

fn constant() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        "[a-z0-9 ]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(Term::Var),
        constant().prop_map(Term::Const),
    ]
}

fn atom() -> impl Strategy<Value = Atom> {
    (rel_name(), proptest::collection::vec(term(), 1..5)).prop_map(|(rel, args)| Atom { rel, args })
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        var_name().prop_map(Expr::Var),
        constant().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::BinOp(op, Box::new(l), Box::new(r))),
            (fn_name(), proptest::collection::vec(inner, 1..3))
                .prop_map(|(name, args)| Expr::Call(name, args)),
        ]
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn body_item() -> impl Strategy<Value = BodyItem> {
    prop_oneof![
        atom().prop_map(BodyItem::Atom),
        (expr(), cmp_op(), expr()).prop_map(|(left, op, right)| BodyItem::Constraint {
            left,
            op,
            right
        }),
        (var_name(), expr()).prop_map(|(var, expr)| BodyItem::Assign { var, expr }),
    ]
}

fn rule(label_idx: usize) -> impl Strategy<Value = Rule> {
    (atom(), proptest::collection::vec(body_item(), 1..5)).prop_map(move |(head, body)| Rule {
        label: format!("r{label_idx}"),
        head,
        body,
    })
}

fn program() -> impl Strategy<Value = Program> {
    (1usize..5)
        .prop_flat_map(|n| {
            let rules: Vec<_> = (0..n).map(rule).collect();
            rules
        })
        .prop_map(|rules| Program { rules })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rendering a random program and parsing it back is the identity.
    #[test]
    fn display_parse_round_trip(p in program()) {
        let text = p.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("rendered program failed to parse: {e}\n{text}"));
        prop_assert_eq!(p, reparsed);
    }

    /// The frontend is total: arbitrary input produces Ok or Err, never a
    /// panic.
    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse_program(&s);
    }

    /// Arbitrary ASCII soup with NDlog-ish characters.
    #[test]
    fn parser_never_panics_on_ndlogish_soup(
        s in "[a-zA-Z0-9_@(),.:=<>!+*/ \"\\\\-]{0,120}"
    ) {
        let _ = parse_program(&s);
    }
}
