//! Randomized tests of the NDlog frontend: pretty-print → parse round
//! trips on randomly generated programs, and total robustness of the
//! lexer/parser on arbitrary input (errors, never panics).
//!
//! Generation is driven by the in-tree seeded PRNG so every failure
//! reproduces from its case number.

use dpc_common::{Rng, SeededRng, Value};
use dpc_ndlog::{parse_program, Atom, BinOp, BodyItem, CmpOp, Expr, Program, Rule, Term};

const CASES: u64 = 128;

fn random_var(rng: &mut SeededRng) -> String {
    let mut s = String::new();
    s.push((b'A' + rng.random_range(0..26u32) as u8) as char);
    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
    for _ in 0..rng.random_range(0..6u64) {
        s.push(alphabet[rng.random_range(0..alphabet.len())] as char);
    }
    s
}

fn random_rel(rng: &mut SeededRng) -> String {
    loop {
        let mut s = String::new();
        s.push((b'a' + rng.random_range(0..26u32) as u8) as char);
        let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
        for _ in 0..rng.random_range(0..7u64) {
            s.push(alphabet[rng.random_range(0..alphabet.len())] as char);
        }
        // Avoid literal keywords and the function-name prefix.
        if s != "true" && s != "false" && !s.starts_with("f_") {
            return s;
        }
    }
}

fn random_fn_name(rng: &mut SeededRng) -> String {
    let mut s = String::from("f_");
    s.push((b'a' + rng.random_range(0..26u32) as u8) as char);
    let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    for _ in 0..rng.random_range(0..6u64) {
        s.push(alphabet[rng.random_range(0..alphabet.len())] as char);
    }
    s
}

fn random_constant(rng: &mut SeededRng) -> Value {
    match rng.random_range(0..3u32) {
        0 => Value::Int(rng.next_u64() as i32 as i64),
        1 => {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
            let len = rng.random_range(0..9u64) as usize;
            Value::Str(
                (0..len)
                    .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
                    .collect(),
            )
        }
        _ => Value::Bool(rng.random_bool(0.5)),
    }
}

fn random_term(rng: &mut SeededRng) -> Term {
    if rng.random_bool(0.5) {
        Term::var(random_var(rng))
    } else {
        Term::cnst(random_constant(rng))
    }
}

fn random_atom(rng: &mut SeededRng) -> Atom {
    let arity = rng.random_range(1..5u64) as usize;
    Atom::new(
        random_rel(rng),
        (0..arity).map(|_| random_term(rng)).collect(),
    )
}

fn random_expr(rng: &mut SeededRng, depth: usize) -> Expr {
    if depth == 0 || rng.random_bool(0.4) {
        return if rng.random_bool(0.5) {
            Expr::var(random_var(rng))
        } else {
            Expr::cnst(random_constant(rng))
        };
    }
    if rng.random_bool(0.6) {
        let op = match rng.random_range(0..4u32) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Div,
        };
        Expr::binop(op, random_expr(rng, depth - 1), random_expr(rng, depth - 1))
    } else {
        let n = rng.random_range(1..3u64) as usize;
        Expr::call(
            random_fn_name(rng),
            (0..n).map(|_| random_expr(rng, depth - 1)).collect(),
        )
    }
}

fn random_cmp_op(rng: &mut SeededRng) -> CmpOp {
    match rng.random_range(0..6u32) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

fn random_body_item(rng: &mut SeededRng) -> BodyItem {
    match rng.random_range(0..3u32) {
        0 => BodyItem::Atom(random_atom(rng)),
        1 => BodyItem::constraint(random_expr(rng, 3), random_cmp_op(rng), random_expr(rng, 3)),
        _ => BodyItem::assign(random_var(rng), random_expr(rng, 3)),
    }
}

fn random_program(rng: &mut SeededRng) -> Program {
    let n = rng.random_range(1..5u64) as usize;
    Program {
        rules: (0..n)
            .map(|i| {
                let body_len = rng.random_range(1..5u64) as usize;
                Rule::new(
                    format!("r{i}"),
                    random_atom(rng),
                    (0..body_len).map(|_| random_body_item(rng)).collect(),
                )
            })
            .collect(),
    }
}

/// Rendering a random program and parsing it back is the identity.
#[test]
fn display_parse_round_trip() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0xA000 + case);
        let p = random_program(&mut rng);
        let text = p.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("rendered program failed to parse: {e}\n{text}"));
        assert_eq!(p, reparsed);
    }
}

/// Parsing each bundled paper program, pretty-printing it and parsing it
/// back is the identity. Spans differ between the two parses (the rendered
/// text is formatted differently), so this also pins down that equality is
/// span-insensitive.
#[test]
fn bundled_programs_round_trip() {
    for src in [
        dpc_ndlog::programs::PACKET_FORWARDING,
        dpc_ndlog::programs::DNS_RESOLUTION,
        dpc_ndlog::programs::DHCP,
        dpc_ndlog::programs::ARP,
    ] {
        let p = parse_program(src).unwrap();
        let text = p.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("rendered program failed to parse: {e}\n{text}"));
        assert_eq!(p, reparsed);
    }
}

/// The frontend is total: arbitrary input produces Ok or Err, never a
/// panic.
#[test]
fn parser_never_panics() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0xB000 + case);
        let len = rng.random_range(0..201u64) as usize;
        // Arbitrary printable unicode-ish soup: mix ASCII with a few
        // multi-byte code points.
        let s: String = (0..len)
            .map(|_| match rng.random_range(0..8u32) {
                0 => 'λ',
                1 => 'é',
                _ => (rng.random_range(0x20u32..0x7f) as u8) as char,
            })
            .collect();
        let _ = parse_program(&s);
    }
}

/// Arbitrary ASCII soup drawn from NDlog-ish characters — more likely to
/// reach deep parser states than uniform noise.
#[test]
fn parser_never_panics_on_ndlogish_soup() {
    let alphabet: Vec<char> =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_@(),.:=<>!+*/ \"\\-"
            .chars()
            .collect();
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0xC000 + case);
        let len = rng.random_range(0..121u64) as usize;
        let s: String = (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect();
        let _ = parse_program(&s);
    }
}
