//! One deliberately broken program per diagnostic code, asserting the
//! code, the primary span and the rendered rustc-style excerpt.
//!
//! These are golden-style tests for the user-visible surface of the
//! analyzer: if a message, span or rendering regresses, the assertion
//! names the exact source line the user would have seen.

use dpc_ndlog::{analyze, analyze_structure, parse_program, Code, Diagnostic, Mode, Severity};

const FILE: &str = "test.ndlog";

/// Analyze `src` in strict mode and return the first diagnostic with
/// `code` plus its rendering against the source.
fn diag(src: &str, code: Code) -> (Diagnostic, String) {
    diag_mode(src, code, Mode::Strict)
}

fn diag_mode(src: &str, code: Code, mode: Mode) -> (Diagnostic, String) {
    let program = parse_program(src).expect("program should parse");
    let analysis = analyze(&program, mode);
    let d = analysis
        .by_code(code)
        .next()
        .unwrap_or_else(|| {
            panic!(
                "expected {code:?} on {src:?}, got {:?}",
                analysis
                    .diagnostics
                    .iter()
                    .map(|d| d.code)
                    .collect::<Vec<_>>()
            )
        })
        .clone();
    let rendered = d.render(src, FILE);
    (d, rendered)
}

fn assert_span(d: &Diagnostic, line: usize, col: usize) {
    assert_eq!(
        (d.primary.span.line, d.primary.span.col),
        (line, col),
        "wrong primary span for {:?}: {}",
        d.code,
        d.message
    );
}

#[test]
fn e0101_empty_program() {
    let (d, rendered) = diag("", Code::E0101);
    assert_eq!(d.severity, Severity::Error);
    assert!(rendered.starts_with("error[E0101]"), "{rendered}");
}

#[test]
fn e0102_rule_without_event_atom() {
    let src = "r1 out(@X) :- X == X.";
    let (d, rendered) = diag(src, Code::E0102);
    assert_span(&d, 1, 1);
    assert!(d.message.contains("`r1`"), "{}", d.message);
    assert!(rendered.contains("error[E0102]"), "{rendered}");
    assert!(rendered.contains("--> test.ndlog:1:1"), "{rendered}");
    assert!(rendered.contains("1 | r1 out(@X) :- X == X."), "{rendered}");
}

#[test]
fn e0103_rule_not_leading_with_event() {
    let src = "r1 out(@X) :- X == X, e(@X).";
    let (d, rendered) = diag(src, Code::E0103);
    // The primary span is the constraint that runs before the event.
    assert_span(&d, 1, 15);
    assert!(!d.secondary.is_empty(), "should point at the event atom");
    assert!(
        rendered.contains("^^^^^^ this runs before the event binds its variables"),
        "{rendered}"
    );
}

#[test]
fn e0104_non_dependent_consecutive_rules() {
    let src = "r1 mid(@X) :- e(@X).\nr2 out(@X) :- other(@X).";
    let (d, rendered) = diag(src, Code::E0104);
    // Primary: the event atom of r2 that should have been `mid`.
    assert_span(&d, 2, 15);
    assert!(d.message.contains("`mid`"), "{}", d.message);
    assert!(d.message.contains("`other`"), "{}", d.message);
    assert!(
        rendered.contains("^^^^^^^^^ expected event relation `mid`"),
        "{rendered}"
    );
    assert!(
        rendered.contains("--- `mid` is derived here"),
        "secondary label should mark the deriving head: {rendered}"
    );
}

#[test]
fn e0105_dependency_arity_mismatch() {
    let src = "r1 mid(@X, Y) :- e(@X, Y).\nr2 out(@X) :- mid(@X).";
    let (d, rendered) = diag(src, Code::E0105);
    assert_span(&d, 2, 15);
    assert!(d.message.contains("arity 2"), "{}", d.message);
    assert!(d.message.contains("arity 1"), "{}", d.message);
    assert!(
        rendered.contains("consumed here with arity 1"),
        "{rendered}"
    );
}

#[test]
fn e0106_inconsistent_relation_arity() {
    let src = "r1 mid(@X) :- e(@X, Y), s(@X, Y).\nr2 out(@X) :- mid(@X), s(@X).";
    let (d, rendered) = diag(src, Code::E0106);
    // `s` is used with arity 2 in r1, arity 1 in r2.
    assert_span(&d, 2, 24);
    assert!(d.message.contains("`s`"), "{}", d.message);
    assert!(
        rendered.contains("^^^^^ used here with arity 1"),
        "{rendered}"
    );
    assert!(
        rendered.contains("first used with arity 2 here"),
        "{rendered}"
    );
}

#[test]
fn e0107_head_relation_as_condition() {
    let src = "r1 mid(@X) :- e(@X).\nr2 out(@X) :- mid(@X), mid(@X).";
    let (d, rendered) = diag(src, Code::E0107);
    // The second `mid` atom of r2 (a condition, not the event).
    assert_span(&d, 2, 24);
    assert!(
        rendered.contains("used as a slow-changing condition here"),
        "{rendered}"
    );
}

#[test]
fn e0108_unbound_head_variable() {
    let src = "r1 out(@X, W) :- e(@X).";
    let (d, rendered) = diag(src, Code::E0108);
    // The `W` in the head.
    assert_span(&d, 1, 12);
    assert!(d.message.contains("`W`"), "{}", d.message);
    assert!(
        rendered.contains("^ not bound by any atom or assignment"),
        "{rendered}"
    );
}

#[test]
fn e0109_input_event_also_slow() {
    let src = "r1 out(@X) :- e(@X), e(@X).";
    let (d, rendered) = diag(src, Code::E0109);
    // The second `e`, used as a condition.
    assert_span(&d, 1, 22);
    assert!(d.message.contains("`e`"), "{}", d.message);
    assert!(
        rendered.contains("the program's input event"),
        "secondary should mark the input event: {rendered}"
    );
}

#[test]
fn e0110_no_output_relation() {
    let src = "r1 a(@X) :- b(@X).\nr2 b(@X) :- a(@X).";
    let (d, rendered) = diag(src, Code::E0110);
    // Reported on the last head that is also consumed.
    assert_span(&d, 2, 4);
    assert!(
        rendered.contains("this head is also consumed as an event"),
        "{rendered}"
    );
}

#[test]
fn e0111_duplicate_rule_label() {
    // The parser already rejects duplicate labels, so exercise the
    // analyzer on a hand-built program (how rewrites could produce one).
    let p1 = parse_program("r1 mid(@X) :- e(@X).").unwrap();
    let p2 = parse_program("r1 out(@X) :- mid(@X).").unwrap();
    let mut program = p1;
    program.rules.extend(p2.rules);
    let diags = analyze_structure(&program, Mode::Strict);
    let d = diags.iter().find(|d| d.code == Code::E0111).expect("E0111");
    assert!(d.message.contains("`r1`"), "{}", d.message);
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn parser_rejects_duplicate_labels_with_position() {
    let err = parse_program("r1 mid(@X) :- e(@X).\nr1 out(@X) :- mid(@X).").unwrap_err();
    match err {
        dpc_common::Error::Parse { line, col, msg } => {
            assert_eq!((line, col), (2, 1));
            assert!(msg.contains("duplicate rule label `r1`"), "{msg}");
            assert!(msg.contains("first defined at 1:1"), "{msg}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn w0201_unused_variable() {
    let src = "r1 out(@X, Y) :- e(@X, Y, Z).";
    let (d, rendered) = diag(src, Code::W0201);
    assert_eq!(d.severity, Severity::Warning);
    // The `Z` in the event atom.
    assert_span(&d, 1, 27);
    assert!(rendered.contains("warning[W0201]"), "{rendered}");
    assert!(
        rendered.contains("^ bound here, never used again"),
        "{rendered}"
    );
}

#[test]
fn w0202_unbound_expression_variable() {
    let src = "r1 out(@X, Y) :- e(@X, Z), Y := Q + 1.";
    let (d, rendered) = diag(src, Code::W0202);
    assert!(d.message.contains("`Q`"), "{}", d.message);
    // The `Q` in the assignment right-hand side.
    assert_span(&d, 1, 33);
    assert!(rendered.contains("warning[W0202]"), "{rendered}");
}

#[test]
fn w0203_constant_head_location() {
    let src = "r1 out(@5, Y) :- e(@X, Y), s(@X, X).";
    let (d, rendered) = diag(src, Code::W0203);
    // The `5` after `@` in the head.
    assert_span(&d, 1, 9);
    assert!(rendered.contains("warning[W0203]"), "{rendered}");
}

#[test]
fn w0204_non_local_condition() {
    let src = "r1 out(@X, Y) :- e(@X, Y), s(@Y, Z), Z == Z.";
    let (d, rendered) = diag(src, Code::W0204);
    assert!(d.message.contains("`s`"), "{}", d.message);
    // The `Y` location specifier of the `s` atom.
    assert_span(&d, 1, 31);
    assert!(rendered.contains("location specifier here"), "{rendered}");
    assert!(rendered.contains("the event executes at `X`"), "{rendered}");
}

#[test]
fn w0205_dead_rule() {
    // Relaxed mode: r2 is never reachable from the input event `e`.
    let src = "r1 out(@X, Y) :- e(@X, Y), s(@X, Y).\nr2 out2(@X, Y) :- f(@X, Y), s(@X, Y).";
    let (d, rendered) = diag_mode(src, Code::W0205, Mode::Relaxed);
    assert!(d.message.contains("`r2`"), "{}", d.message);
    assert_eq!(d.primary.span.line, 2);
    assert!(rendered.contains("warning[W0205]"), "{rendered}");
}

#[test]
fn w0206_shadowed_assignment() {
    let src = "r1 out(@X, Y) :- e(@X, Y), Y := Y + 1.";
    let (d, rendered) = diag(src, Code::W0206);
    // The `Y` on the left of `:=`.
    assert_span(&d, 1, 28);
    assert!(rendered.contains("^ rebound here"), "{rendered}");
    assert!(rendered.contains("- first bound here"), "{rendered}");
}

#[test]
fn w0207_keys_cover_all_attributes() {
    let src = "r1 recvd(@L, D) :- pkt(@L, D), route(@L, D).";
    let (d, rendered) = diag(src, Code::W0207);
    assert!(d.message.contains("all 2 attributes"), "{}", d.message);
    // The `pkt(@L, D)` event atom.
    assert_span(&d, 1, 20);
    assert!(
        rendered.contains("every attribute of this event is an equivalence key"),
        "{rendered}"
    );
}

#[test]
fn w0208_conflicting_attribute_kinds() {
    let src = r#"r1 out(@X, Y) :- e(@X, Y), s(@X, Y), Y > 5, Y == "a"."#;
    let (d, rendered) = diag(src, Code::W0208);
    assert!(
        d.message.contains("conflicting value kinds"),
        "{}",
        d.message
    );
    assert!(!d.secondary.is_empty(), "evidence spans expected");
    assert!(rendered.contains("warning[W0208]"), "{rendered}");
}

#[test]
fn clean_program_renders_nothing() {
    let analysis = analyze(
        &parse_program(dpc_ndlog::programs::PACKET_FORWARDING).unwrap(),
        Mode::Strict,
    );
    assert!(
        analysis.diagnostics.is_empty(),
        "{:?}",
        analysis.diagnostics
    );
}
