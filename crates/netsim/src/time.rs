//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// Nanosecond resolution is fine enough that transmission delays of single
/// bytes on gigabit links are still nonzero, and a `u64` still covers ~584
/// simulated years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whole seconds (truncating) — used for per-second traffic buckets.
    pub const fn whole_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(13));
    }

    #[test]
    fn conversions() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.whole_secs(), 1);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        SimTime::from_secs_f64(-1.0);
    }
}
