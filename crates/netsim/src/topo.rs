//! Topology generators.
//!
//! [`transit_stub`] reproduces the GT-ITM-style graph of the paper's packet
//! forwarding evaluation (Section 6.1): 4 transit nodes, each attached to 3
//! stub domains of 8 nodes — 100 nodes total — with the paper's per-class
//! link latencies and bandwidths. [`tree`] builds the hierarchical
//! nameserver topology of the DNS evaluation (Section 6.2). The small
//! deterministic shapes ([`line()`], [`star()`], [`ring()`], [`complete()`]) serve
//! tests and examples.

use dpc_common::NodeId;
use dpc_common::Rng;

use crate::link::Link;
use crate::network::Network;
use crate::time::SimTime;

/// Parameters for [`transit_stub`].
#[derive(Debug, Clone)]
pub struct TransitStubParams {
    /// Number of transit (backbone) nodes.
    pub transit_nodes: usize,
    /// Stub domains attached to each transit node.
    pub stub_domains_per_transit: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Extra intra-domain edges beyond the spanning tree, per domain.
    pub extra_stub_edges: usize,
    /// Link class between transit nodes.
    pub transit_transit: Link,
    /// Link class between a transit node and a stub-domain gateway.
    pub transit_stub: Link,
    /// Link class inside stub domains.
    pub stub_stub: Link,
}

impl Default for TransitStubParams {
    /// The paper's configuration: 4 transit nodes × 3 domains × 8 stub
    /// nodes = 100 nodes; 50 ms/1 Gbps, 10 ms/100 Mbps and 2 ms/50 Mbps
    /// link classes.
    fn default() -> Self {
        TransitStubParams {
            transit_nodes: 4,
            stub_domains_per_transit: 3,
            stub_nodes_per_domain: 8,
            extra_stub_edges: 2,
            transit_transit: Link::TRANSIT_TRANSIT,
            transit_stub: Link::TRANSIT_STUB,
            stub_stub: Link::STUB_STUB,
        }
    }
}

/// A generated transit-stub topology.
#[derive(Debug, Clone)]
pub struct TransitStub {
    /// The network graph.
    pub net: Network,
    /// Transit (backbone) nodes.
    pub transit: Vec<NodeId>,
    /// Stub nodes, where traffic originates and terminates.
    pub stub: Vec<NodeId>,
}

/// Generate a random transit-stub topology.
pub fn transit_stub(rng: &mut impl Rng, params: &TransitStubParams) -> TransitStub {
    let mut net = Network::new();
    let mut transit = Vec::with_capacity(params.transit_nodes);
    let mut stub = Vec::new();

    for _ in 0..params.transit_nodes {
        transit.push(net.add_node());
    }
    // Transit domain: complete graph (with 4 nodes this matches GT-ITM's
    // densely connected backbone).
    for i in 0..transit.len() {
        for j in i + 1..transit.len() {
            net.add_link(transit[i], transit[j], params.transit_transit)
                .expect("fresh nodes, no duplicate links");
        }
    }

    for &t in &transit {
        for _ in 0..params.stub_domains_per_transit {
            let mut domain = Vec::with_capacity(params.stub_nodes_per_domain);
            for _ in 0..params.stub_nodes_per_domain {
                let node = net.add_node();
                // Random spanning tree inside the domain.
                if let Some(&parent) = pick(rng, &domain) {
                    net.add_link(node, parent, params.stub_stub)
                        .expect("fresh node");
                }
                domain.push(node);
                stub.push(node);
            }
            // A few chords to make the domain less tree-like.
            let mut added = 0;
            let mut attempts = 0;
            while added < params.extra_stub_edges && attempts < 32 {
                attempts += 1;
                if domain.len() < 2 {
                    break;
                }
                let a = domain[rng.random_range(0..domain.len())];
                let b = domain[rng.random_range(0..domain.len())];
                if a != b && net.link(a, b).is_none() {
                    net.add_link(a, b, params.stub_stub).expect("checked");
                    added += 1;
                }
            }
            // Gateway: the domain's first node attaches to the transit node.
            net.add_link(domain[0], t, params.transit_stub)
                .expect("gateway link is fresh");
        }
    }

    TransitStub { net, transit, stub }
}

fn pick<'a, T>(rng: &mut impl Rng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.random_range(0..xs.len())])
    }
}

/// Parameters for [`tree`].
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Total number of nodes (including the root).
    pub nodes: usize,
    /// Probability that a new node extends the most recently added chain
    /// instead of attaching to a uniformly random node. Higher values make
    /// deeper trees; the paper's DNS topology has 100 nodes and maximum
    /// depth 27.
    pub chain_bias: f64,
    /// Link class for parent-child edges.
    pub link: Link,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            nodes: 100,
            chain_bias: 0.55,
            link: Link::new(SimTime::from_millis(10), 100_000_000),
        }
    }
}

/// A generated rooted tree topology (DNS nameserver hierarchy).
#[derive(Debug, Clone)]
pub struct Tree {
    /// The network graph.
    pub net: Network,
    /// The root node (always `NodeId(0)`).
    pub root: NodeId,
    /// Parent of each node; `parent[0]` is `None`.
    pub parent: Vec<Option<NodeId>>,
}

impl Tree {
    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent[cur.index()] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn max_depth(&self) -> usize {
        (0..self.parent.len())
            .map(|i| self.depth(NodeId(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Children of `node`, in id order.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(node))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Generate a random rooted tree.
pub fn tree(rng: &mut impl Rng, params: &TreeParams) -> Tree {
    assert!(params.nodes >= 1, "tree needs at least a root");
    let mut net = Network::new();
    let root = net.add_node();
    let mut parent: Vec<Option<NodeId>> = vec![None];
    let mut last = root;
    for _ in 1..params.nodes {
        let node = net.add_node();
        let p = if rng.random_bool(params.chain_bias.clamp(0.0, 1.0)) {
            last
        } else {
            NodeId(rng.random_range(0..node.0))
        };
        net.add_link(node, p, params.link).expect("fresh node");
        parent.push(Some(p));
        last = node;
    }
    Tree { net, root, parent }
}

/// A line of `n` nodes: `0-1-2-...-(n-1)`.
pub fn line(n: usize, link: Link) -> Network {
    let mut net = Network::with_nodes(n);
    for i in 1..n {
        net.add_link(NodeId(i as u32 - 1), NodeId(i as u32), link)
            .expect("line links are unique");
    }
    net
}

/// A star: node 0 is the hub.
pub fn star(n: usize, link: Link) -> Network {
    let mut net = Network::with_nodes(n);
    for i in 1..n {
        net.add_link(NodeId(0), NodeId(i as u32), link)
            .expect("star links are unique");
    }
    net
}

/// A ring of `n >= 3` nodes.
pub fn ring(n: usize, link: Link) -> Network {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut net = line(n, link);
    net.add_link(NodeId(n as u32 - 1), NodeId(0), link)
        .expect("closing edge is unique");
    net
}

/// A complete graph on `n` nodes.
pub fn complete(n: usize, link: Link) -> Network {
    let mut net = Network::with_nodes(n);
    for i in 0..n {
        for j in i + 1..n {
            net.add_link(NodeId(i as u32), NodeId(j as u32), link)
                .expect("complete-graph links are unique");
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::SeededRng;

    #[test]
    fn transit_stub_default_matches_paper_shape() {
        let mut rng = SeededRng::seed_from_u64(7);
        let ts = transit_stub(&mut rng, &TransitStubParams::default());
        assert_eq!(ts.net.node_count(), 100);
        assert_eq!(ts.transit.len(), 4);
        assert_eq!(ts.stub.len(), 96);
        assert!(ts.net.is_connected());
        // Paper: diameter 12, average distance 5.3 — ours should be in the
        // same ballpark.
        let diam = ts.net.diameter_hops();
        assert!((6..=16).contains(&diam), "diameter {diam}");
        let avg = ts.net.average_distance_hops();
        assert!((3.0..=8.0).contains(&avg), "avg distance {avg}");
    }

    #[test]
    fn transit_stub_is_deterministic_per_seed() {
        let p = TransitStubParams::default();
        let a = transit_stub(&mut SeededRng::seed_from_u64(1), &p);
        let b = transit_stub(&mut SeededRng::seed_from_u64(1), &p);
        assert_eq!(a.net.link_count(), b.net.link_count());
        for n in a.net.nodes() {
            let an: Vec<_> = a.net.neighbors(n).map(|(m, _)| m).collect();
            let bn: Vec<_> = b.net.neighbors(n).map(|(m, _)| m).collect();
            assert_eq!(an, bn);
        }
    }

    #[test]
    fn transit_links_use_right_classes() {
        let mut rng = SeededRng::seed_from_u64(2);
        let ts = transit_stub(&mut rng, &TransitStubParams::default());
        let l = ts.net.link(ts.transit[0], ts.transit[1]).unwrap();
        assert_eq!(l, Link::TRANSIT_TRANSIT);
    }

    #[test]
    fn tree_default_matches_paper_shape() {
        let mut rng = SeededRng::seed_from_u64(11);
        let t = tree(&mut rng, &TreeParams::default());
        assert_eq!(t.net.node_count(), 100);
        assert!(t.net.is_connected());
        let depth = t.max_depth();
        // Paper: 100 nameservers, max depth 27. The generator should land
        // in a deep-tree regime.
        assert!((10..=60).contains(&depth), "depth {depth}");
    }

    #[test]
    fn tree_parent_structure_is_consistent() {
        let mut rng = SeededRng::seed_from_u64(3);
        let t = tree(
            &mut rng,
            &TreeParams {
                nodes: 30,
                ..TreeParams::default()
            },
        );
        assert_eq!(t.parent.len(), 30);
        assert!(t.parent[0].is_none());
        for i in 1..30 {
            let p = t.parent[i].unwrap();
            assert!(p.index() < i, "parents precede children");
            assert!(t.net.link(NodeId(i as u32), p).is_some());
        }
        // Sum of children counts = n - 1.
        let total: usize = (0..30).map(|i| t.children(NodeId(i as u32)).len()).sum();
        assert_eq!(total, 29);
    }

    #[test]
    fn single_node_tree() {
        let mut rng = SeededRng::seed_from_u64(4);
        let t = tree(
            &mut rng,
            &TreeParams {
                nodes: 1,
                ..TreeParams::default()
            },
        );
        assert_eq!(t.net.node_count(), 1);
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn simple_shapes() {
        let l = Link::new(SimTime::from_millis(1), 1_000);
        assert_eq!(line(5, l).link_count(), 4);
        assert_eq!(star(5, l).link_count(), 4);
        assert_eq!(ring(5, l).link_count(), 5);
        assert_eq!(complete(5, l).link_count(), 10);
        assert!(line(5, l).is_connected());
        assert_eq!(line(5, l).diameter_hops(), 4);
        assert_eq!(star(5, l).diameter_hops(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        ring(2, Link::new(SimTime::ZERO, 1));
    }
}
