//! The network topology: nodes, links and shortest paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dpc_common::{Error, NodeId, Result};

use crate::link::Link;
use crate::time::SimTime;

/// An undirected network of point-to-point links.
#[derive(Debug, Clone, Default)]
pub struct Network {
    /// adjacency list per node: (neighbor, link).
    adj: Vec<Vec<(NodeId, Link)>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Create a network with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Network {
        Network {
            adj: vec![Vec::new(); n],
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() as u32 - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Add an undirected link between `a` and `b`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, link: Link) -> Result<()> {
        if a == b {
            return Err(Error::Network(format!("self-link at {a}")));
        }
        self.check(a)?;
        self.check(b)?;
        if self.link(a, b).is_some() {
            return Err(Error::Network(format!("duplicate link {a}-{b}")));
        }
        self.adj[a.index()].push((b, link));
        self.adj[b.index()].push((a, link));
        Ok(())
    }

    fn check(&self, n: NodeId) -> Result<()> {
        if n.index() >= self.adj.len() {
            return Err(Error::Network(format!("unknown node {n}")));
        }
        Ok(())
    }

    /// The link between two adjacent nodes, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<Link> {
        self.adj
            .get(a.index())?
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Neighbors of `n` with their links.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, Link)> + '_ {
        self.adj.get(n.index()).into_iter().flatten().copied()
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Shortest path from `src` to `dst` minimizing hop count.
    ///
    /// Returns the node sequence including both endpoints, or an error if
    /// disconnected. Used to install the paper's precomputed `route` tables.
    pub fn path_by_hops(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>> {
        self.shortest_path(src, dst, |_| 1)
    }

    /// Shortest path from `src` to `dst` minimizing summed link latency.
    pub fn path_by_latency(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>> {
        self.shortest_path(src, dst, |l| l.latency.as_nanos().max(1))
    }

    /// One-way latency along the latency-shortest path — the cost model for
    /// the distributed provenance query (nodes talk to non-adjacent nodes
    /// via network routing).
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> Result<SimTime> {
        if src == dst {
            return Ok(SimTime::ZERO);
        }
        let path = self.path_by_latency(src, dst)?;
        let mut total = SimTime::ZERO;
        for w in path.windows(2) {
            total += self
                .link(w[0], w[1])
                .expect("path consists of adjacent nodes")
                .latency;
        }
        Ok(total)
    }

    /// The minimum bandwidth along the latency-shortest path, used to model
    /// transfer time of multi-hop responses.
    pub fn path_bottleneck_bps(&self, src: NodeId, dst: NodeId) -> Result<u64> {
        if src == dst {
            return Ok(u64::MAX);
        }
        let path = self.path_by_latency(src, dst)?;
        Ok(path
            .windows(2)
            .map(|w| self.link(w[0], w[1]).expect("adjacent").bandwidth_bps)
            .min()
            .expect("path has at least one hop"))
    }

    fn shortest_path(
        &self,
        src: NodeId,
        dst: NodeId,
        cost: impl Fn(&Link) -> u64,
    ) -> Result<Vec<NodeId>> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Ok(vec![src]);
        }
        let n = self.adj.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0;
        heap.push(Reverse((0u64, src.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            let u = NodeId(u);
            if d > dist[u.index()] {
                continue;
            }
            if u == dst {
                break;
            }
            for (v, link) in self.neighbors(u) {
                let nd = d + cost(&link);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(u);
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
        if dist[dst.index()] == u64::MAX {
            return Err(Error::Network(format!("{src} and {dst} are disconnected")));
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], src);
        Ok(path)
    }

    /// Render the topology in Graphviz dot format, labeling links with
    /// their latency. Output is deterministic.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "graph \"{title}\" {{").expect("write to String");
        for n in self.nodes() {
            writeln!(out, "  \"{n}\";").expect("write to String");
        }
        for a in self.nodes() {
            let mut nbrs: Vec<(NodeId, Link)> = self.neighbors(a).collect();
            nbrs.sort_by_key(|(m, _)| m.0);
            for (b, link) in nbrs {
                if a.0 < b.0 {
                    writeln!(out, "  \"{a}\" -- \"{b}\" [label=\"{}\"];", link.latency)
                        .expect("write to String");
                }
            }
        }
        writeln!(out, "}}").expect("write to String");
        out
    }

    /// Graph diameter in hops (longest shortest path over all pairs).
    /// O(V·E); intended for topology sanity checks, not hot paths.
    pub fn diameter_hops(&self) -> usize {
        let mut best = 0;
        for s in self.nodes() {
            let ecc = self.bfs_depths(s).into_iter().flatten().max().unwrap_or(0);
            best = best.max(ecc);
        }
        best
    }

    /// Average shortest-path hop distance across all connected ordered
    /// pairs.
    pub fn average_distance_hops(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for s in self.nodes() {
            for d in self.bfs_depths(s).into_iter().flatten() {
                if d > 0 {
                    total += d;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    /// Is the network connected?
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_depths(NodeId(0)).iter().all(Option::is_some)
    }

    fn bfs_depths(&self, src: NodeId) -> Vec<Option<usize>> {
        let mut depth = vec![None; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        depth[src.index()] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = depth[u.index()].expect("queued nodes have depth");
            for (v, _) in self.neighbors(u) {
                if depth[v.index()].is_none() {
                    depth[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A 4-node line with one slow long-cut: 0-1-2-3 plus a direct 0-3 link
    /// with huge latency.
    fn line_with_shortcut() -> Network {
        let mut net = Network::with_nodes(4);
        let fast = Link::new(SimTime::from_millis(1), 1_000_000);
        let slow = Link::new(SimTime::from_millis(100), 1_000_000);
        net.add_link(n(0), n(1), fast).unwrap();
        net.add_link(n(1), n(2), fast).unwrap();
        net.add_link(n(2), n(3), fast).unwrap();
        net.add_link(n(0), n(3), slow).unwrap();
        net
    }

    #[test]
    fn add_and_query_links() {
        let net = line_with_shortcut();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 4);
        assert!(net.link(n(0), n(1)).is_some());
        assert!(net.link(n(1), n(0)).is_some());
        assert!(net.link(n(0), n(2)).is_none());
    }

    #[test]
    fn self_and_duplicate_links_rejected() {
        let mut net = Network::with_nodes(2);
        let l = Link::new(SimTime::ZERO, 1);
        assert!(net.add_link(n(0), n(0), l).is_err());
        net.add_link(n(0), n(1), l).unwrap();
        assert!(net.add_link(n(1), n(0), l).is_err());
        assert!(net.add_link(n(0), n(5), l).is_err());
    }

    #[test]
    fn hop_path_prefers_fewer_hops() {
        let net = line_with_shortcut();
        assert_eq!(net.path_by_hops(n(0), n(3)).unwrap(), vec![n(0), n(3)]);
    }

    #[test]
    fn latency_path_prefers_low_latency() {
        let net = line_with_shortcut();
        assert_eq!(
            net.path_by_latency(n(0), n(3)).unwrap(),
            vec![n(0), n(1), n(2), n(3)]
        );
        assert_eq!(
            net.path_latency(n(0), n(3)).unwrap(),
            SimTime::from_millis(3)
        );
    }

    #[test]
    fn path_to_self_is_trivial() {
        let net = line_with_shortcut();
        assert_eq!(net.path_by_hops(n(2), n(2)).unwrap(), vec![n(2)]);
        assert_eq!(net.path_latency(n(2), n(2)).unwrap(), SimTime::ZERO);
    }

    #[test]
    fn disconnected_pair_errors() {
        let mut net = Network::with_nodes(3);
        net.add_link(n(0), n(1), Link::new(SimTime::ZERO, 1))
            .unwrap();
        assert!(net.path_by_hops(n(0), n(2)).is_err());
        assert!(!net.is_connected());
    }

    #[test]
    fn diameter_and_average_distance() {
        let mut net = Network::with_nodes(4);
        let l = Link::new(SimTime::from_millis(1), 1);
        net.add_link(n(0), n(1), l).unwrap();
        net.add_link(n(1), n(2), l).unwrap();
        net.add_link(n(2), n(3), l).unwrap();
        assert_eq!(net.diameter_hops(), 3);
        // line of 4: distances 1,2,3,1,2,1 (each direction) -> avg 5/3? No:
        // ordered pairs: 12 pairs, total = 2*(1+2+3+1+2+1)=20, avg=20/12.
        assert!((net.average_distance_hops() - 20.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn dot_export_lists_nodes_and_links() {
        let net = line_with_shortcut();
        let dot = net.to_dot("topo");
        assert!(dot.contains("\"n0\";"));
        assert!(dot.contains("\"n3\";"));
        let link_lines = dot.lines().filter(|l| l.contains("--")).count();
        assert_eq!(link_lines, net.link_count());
        assert!(dot.contains("label=\"100.000ms\""));
        assert_eq!(dot, line_with_shortcut().to_dot("topo"));
    }

    #[test]
    fn bottleneck_bandwidth() {
        let mut net = Network::with_nodes(3);
        net.add_link(n(0), n(1), Link::new(SimTime::from_millis(1), 100))
            .unwrap();
        net.add_link(n(1), n(2), Link::new(SimTime::from_millis(1), 10))
            .unwrap();
        assert_eq!(net.path_bottleneck_bps(n(0), n(2)).unwrap(), 10);
        assert_eq!(net.path_bottleneck_bps(n(1), n(1)).unwrap(), u64::MAX);
    }
}
