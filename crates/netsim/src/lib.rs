#![warn(missing_docs)]

//! Discrete-event network simulator.
//!
//! This crate stands in for the paper's use of the ns-3 simulator: it
//! provides simulated time, point-to-point links with latency and
//! bandwidth, a message scheduler with per-link transmission queuing, and
//! per-second traffic accounting. The topology generators reproduce the
//! paper's evaluation setups: a GT-ITM-style transit-stub graph (packet
//! forwarding, Section 6.1) and a hierarchical nameserver tree (DNS,
//! Section 6.2).
//!
//! The simulator is generic over the message type `M`, so the declarative
//! networking engine layers its tuples (and the provenance query engine its
//! fetch requests) on top without this crate knowing about either.

pub mod link;
pub mod network;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topo;

pub use link::Link;
pub use network::Network;
pub use sim::Sim;
pub use stats::TrafficStats;
pub use time::SimTime;
