//! Point-to-point links.

use crate::time::SimTime;

/// A bidirectional point-to-point link with propagation latency and
/// transmission bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One-way propagation latency.
    pub latency: SimTime,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl Link {
    /// Construct a link from latency and bandwidth.
    pub const fn new(latency: SimTime, bandwidth_bps: u64) -> Link {
        Link {
            latency,
            bandwidth_bps,
        }
    }

    /// The paper's transit-transit links: 50 ms, 1 Gbps.
    pub const TRANSIT_TRANSIT: Link = Link::new(SimTime::from_millis(50), 1_000_000_000);
    /// The paper's transit-stub links: 10 ms, 100 Mbps.
    pub const TRANSIT_STUB: Link = Link::new(SimTime::from_millis(10), 100_000_000);
    /// The paper's stub-stub links: 2 ms, 50 Mbps.
    pub const STUB_STUB: Link = Link::new(SimTime::from_millis(2), 50_000_000);

    /// Time to serialize `bytes` onto the wire.
    pub fn transmission_delay(&self, bytes: usize) -> SimTime {
        assert!(self.bandwidth_bps > 0, "link has zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000 / self.bandwidth_bps as u128;
        SimTime::from_nanos(ns as u64)
    }

    /// Total one-message delay (transmission + propagation) on an idle link.
    pub fn delay(&self, bytes: usize) -> SimTime {
        self.transmission_delay(bytes) + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_scales_with_size() {
        let l = Link::new(SimTime::ZERO, 8_000_000_000); // 1 GB/s
        assert_eq!(l.transmission_delay(1), SimTime::from_nanos(1));
        assert_eq!(l.transmission_delay(1000), SimTime::from_nanos(1000));
    }

    #[test]
    fn delay_includes_latency() {
        let l = Link::new(SimTime::from_millis(2), 8_000); // 1 KB/s
                                                           // 1000 bytes at 1 KB/s = 1 s transmission.
        assert_eq!(
            l.delay(1000),
            SimTime::from_secs(1) + SimTime::from_millis(2)
        );
    }

    #[test]
    fn paper_link_presets() {
        assert_eq!(Link::TRANSIT_TRANSIT.latency, SimTime::from_millis(50));
        assert_eq!(Link::TRANSIT_TRANSIT.bandwidth_bps, 1_000_000_000);
        assert_eq!(Link::TRANSIT_STUB.latency, SimTime::from_millis(10));
        assert_eq!(Link::STUB_STUB.bandwidth_bps, 50_000_000);
    }

    #[test]
    fn zero_bytes_is_pure_latency() {
        let l = Link::STUB_STUB;
        assert_eq!(l.delay(0), l.latency);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        Link::new(SimTime::ZERO, 0).transmission_delay(1);
    }
}
