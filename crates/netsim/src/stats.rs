//! Traffic accounting: total bytes, per-second series and per-link totals.

use std::collections::{BTreeMap, HashMap};

use dpc_common::NodeId;

use crate::time::SimTime;

/// Accumulated traffic statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    total_bytes: u64,
    messages: u64,
    per_second: BTreeMap<u64, u64>,
    per_link: HashMap<(NodeId, NodeId), u64>,
}

impl TrafficStats {
    /// Fresh, empty stats.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Record one message of `bytes` sent from `src` to `dst` at `at`.
    pub fn record(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: usize) {
        self.total_bytes += bytes as u64;
        self.messages += 1;
        *self.per_second.entry(at.whole_secs()).or_insert(0) += bytes as u64;
        // Normalize link direction so a link's two directions aggregate.
        let key = if src.0 <= dst.0 {
            (src, dst)
        } else {
            (dst, src)
        };
        *self.per_link.entry(key).or_insert(0) += bytes as u64;
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bytes sent during simulated second `sec`.
    pub fn bytes_in_second(&self, sec: u64) -> u64 {
        self.per_second.get(&sec).copied().unwrap_or(0)
    }

    /// The per-second byte series from second 0 through the last non-empty
    /// second (inclusive); empty if nothing was sent.
    pub fn per_second_series(&self) -> Vec<u64> {
        let Some((&last, _)) = self.per_second.iter().next_back() else {
            return Vec::new();
        };
        (0..=last).map(|s| self.bytes_in_second(s)).collect()
    }

    /// Total bytes carried by the (undirected) link `a`-`b`.
    pub fn link_bytes(&self, a: NodeId, b: NodeId) -> u64 {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.per_link.get(&key).copied().unwrap_or(0)
    }

    /// All per-link byte totals, sorted by endpoint pair (links are
    /// undirected; the lower node id comes first). The stable ordering
    /// makes this directly usable in machine-readable reports.
    pub fn per_link_totals(&self) -> Vec<((NodeId, NodeId), u64)> {
        let mut v: Vec<_> = self.per_link.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_unstable_by_key(|&((a, b), _)| (a.0, b.0));
        v
    }

    /// Mean bandwidth in bytes/second over `[0, duration)`.
    pub fn mean_bandwidth(&self, duration: SimTime) -> f64 {
        let secs = duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / secs
        }
    }

    /// Reset all counters (e.g. between measurement phases).
    pub fn clear(&mut self) {
        *self = TrafficStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn totals_accumulate() {
        let mut s = TrafficStats::new();
        s.record(SimTime::from_millis(100), n(0), n(1), 500);
        s.record(SimTime::from_millis(200), n(1), n(0), 300);
        assert_eq!(s.total_bytes(), 800);
        assert_eq!(s.messages(), 2);
    }

    #[test]
    fn per_second_buckets() {
        let mut s = TrafficStats::new();
        s.record(SimTime::from_millis(500), n(0), n(1), 10);
        s.record(SimTime::from_millis(999), n(0), n(1), 10);
        s.record(SimTime::from_millis(1000), n(0), n(1), 7);
        assert_eq!(s.bytes_in_second(0), 20);
        assert_eq!(s.bytes_in_second(1), 7);
        assert_eq!(s.bytes_in_second(2), 0);
        assert_eq!(s.per_second_series(), vec![20, 7]);
    }

    #[test]
    fn per_second_series_fills_gaps() {
        let mut s = TrafficStats::new();
        s.record(SimTime::from_secs(0), n(0), n(1), 1);
        s.record(SimTime::from_secs(3), n(0), n(1), 2);
        assert_eq!(s.per_second_series(), vec![1, 0, 0, 2]);
    }

    #[test]
    fn link_direction_is_normalized() {
        let mut s = TrafficStats::new();
        s.record(SimTime::ZERO, n(2), n(5), 10);
        s.record(SimTime::ZERO, n(5), n(2), 5);
        assert_eq!(s.link_bytes(n(2), n(5)), 15);
        assert_eq!(s.link_bytes(n(5), n(2)), 15);
        assert_eq!(s.link_bytes(n(0), n(1)), 0);
    }

    #[test]
    fn mean_bandwidth() {
        let mut s = TrafficStats::new();
        s.record(SimTime::ZERO, n(0), n(1), 1000);
        assert!((s.mean_bandwidth(SimTime::from_secs(2)) - 500.0).abs() < 1e-9);
        assert_eq!(s.mean_bandwidth(SimTime::ZERO), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut s = TrafficStats::new();
        s.record(SimTime::ZERO, n(0), n(1), 10);
        s.clear();
        assert_eq!(s.total_bytes(), 0);
        assert!(s.per_second_series().is_empty());
    }

    #[test]
    fn empty_series() {
        assert!(TrafficStats::new().per_second_series().is_empty());
    }

    #[test]
    fn per_link_totals_are_sorted_and_normalized() {
        let mut s = TrafficStats::new();
        s.record(SimTime::ZERO, n(5), n(2), 10);
        s.record(SimTime::ZERO, n(0), n(1), 3);
        s.record(SimTime::ZERO, n(2), n(5), 4);
        assert_eq!(
            s.per_link_totals(),
            vec![((n(0), n(1)), 3), ((n(2), n(5)), 14)]
        );
    }

    /// Regression: traffic exactly on a second boundary belongs to the
    /// *starting* second, and the series covers second 0 through the last
    /// non-empty second even when early seconds are silent.
    #[test]
    fn second_boundary_accounting() {
        let mut s = TrafficStats::new();
        // 1.999_999_999 s is still second 1; 2.0 s exactly is second 2.
        s.record(SimTime::from_nanos(1_999_999_999), n(0), n(1), 5);
        s.record(SimTime::from_secs(2), n(0), n(1), 7);
        assert_eq!(s.bytes_in_second(0), 0);
        assert_eq!(s.bytes_in_second(1), 5);
        assert_eq!(s.bytes_in_second(2), 7);
        assert_eq!(s.per_second_series(), vec![0, 5, 7]);
        // A leading-silence run still starts the series at second 0.
        let mut s = TrafficStats::new();
        s.record(SimTime::from_secs(3), n(0), n(1), 1);
        assert_eq!(s.per_second_series(), vec![0, 0, 0, 1]);
        assert_eq!(s.bytes_in_second(2), 0);
        assert_eq!(s.bytes_in_second(3), 1);
        assert_eq!(s.bytes_in_second(4), 0);
    }
}
