//! The discrete-event scheduler.
//!
//! [`Sim`] combines a [`Network`], a simulated clock, a priority queue of
//! pending message deliveries, per-direction link serialization (a message
//! must finish transmitting before the next one starts) and traffic
//! accounting. It is generic over the message payload `M`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use dpc_common::{Error, NodeId, Result};
use dpc_telemetry::{AttrValue, SpanContext, TelemetryHandle, TraceKind};

use crate::network::Network;
use crate::stats::TrafficStats;
use crate::time::SimTime;

/// A pending delivery: the message plus the trace context it rides under
/// (the envelope that carries causality across hops).
struct Pending<M> {
    at: SimTime,
    seq: u64,
    dst: NodeId,
    msg: M,
    span: SpanContext,
}

// Ordering for the heap: earliest time first, ties broken by insertion
// sequence so delivery is deterministic and FIFO-per-link.
impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A delivered message: when, to whom, the payload, and the trace
/// context the sender attached (the last hop's span for traced network
/// sends, so the receiver's spans parent to the wire time).
#[derive(Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Simulated delivery time.
    pub at: SimTime,
    /// Receiving node.
    pub dst: NodeId,
    /// The payload.
    pub msg: M,
    /// Propagated trace context ([`SpanContext::NONE`] when untraced).
    pub span: SpanContext,
}

/// Deterministic per-link loss state: every `every`-th message on the
/// directed link is dropped.
#[derive(Debug, Clone)]
struct Loss {
    every: u64,
    count: u64,
}

/// The discrete-event simulator.
pub struct Sim<M> {
    net: Network,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Pending<M>>>,
    /// Next instant each directed link is free to start transmitting.
    link_free: HashMap<(NodeId, NodeId), SimTime>,
    /// Cumulative transmission time charged per directed link,
    /// nanoseconds (drives the utilization time series).
    link_busy: HashMap<(NodeId, NodeId), u64>,
    /// Fault injection (see [`Sim::inject_loss`]).
    loss: HashMap<(NodeId, NodeId), Loss>,
    dropped: u64,
    stats: TrafficStats,
    telemetry: Option<TelemetryHandle>,
}

impl<M> Sim<M> {
    /// Wrap a network in a simulator starting at time zero.
    pub fn new(net: Network) -> Sim<M> {
        Sim {
            net,
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            link_free: HashMap::new(),
            link_busy: HashMap::new(),
            loss: HashMap::new(),
            dropped: 0,
            stats: TrafficStats::new(),
            telemetry: None,
        }
    }

    /// Attach a telemetry sink: per-node message/byte counters, a drop
    /// counter and a queueing-delay histogram are recorded through it.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetryHandle> {
        self.telemetry.as_ref()
    }

    /// Record one hop's telemetry: `queued` is how long the message waited
    /// for the directed link to free up before transmission began.
    fn record_hop(&self, src: NodeId, bytes: usize, queued: SimTime) {
        if let Some(t) = &self.telemetry {
            t.count("net.msgs_sent", Some(src.0), 1);
            t.count("net.bytes_sent", Some(src.0), bytes as u64);
            t.observe("net.queue_delay_ns", None, queued.as_nanos());
            t.trace(self.now.as_nanos(), Some(src.0), TraceKind::MsgSend);
        }
    }

    /// The underlying network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network (e.g. to add links mid-run).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Mutable traffic statistics (e.g. to clear between phases).
    pub fn stats_mut(&mut self) -> &mut TrafficStats {
        &mut self.stats
    }

    /// Number of pending deliveries.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Inject deterministic loss on the directed link `src -> dst`: every
    /// `every`-th message transmitted on it is silently dropped (the
    /// bandwidth it consumed is still accounted — it was on the wire).
    /// Used for failure-injection testing.
    pub fn inject_loss(&mut self, src: NodeId, dst: NodeId, every: u64) {
        assert!(every >= 1, "loss period must be at least 1");
        self.loss.insert((src, dst), Loss { every, count: 0 });
    }

    /// Remove loss injection from a directed link.
    pub fn clear_loss(&mut self, src: NodeId, dst: NodeId) {
        self.loss.remove(&(src, dst));
    }

    /// Messages dropped by fault injection so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Does the fault injector claim the next message on this hop?
    fn hop_drops(&mut self, src: NodeId, dst: NodeId) -> bool {
        if let Some(l) = self.loss.get_mut(&(src, dst)) {
            l.count += 1;
            if l.count % l.every == 0 {
                self.dropped += 1;
                if let Some(t) = &self.telemetry {
                    t.count("net.msgs_dropped", Some(src.0), 1);
                    t.trace(self.now.as_nanos(), Some(src.0), TraceKind::MsgDrop);
                }
                return true;
            }
        }
        false
    }

    /// Record one traced link hop as a `net.hop` span with
    /// `net.enqueue` / `net.serialize` / `net.propagate` children. All
    /// times are known at send time (discrete-event simulation), so the
    /// spans are created closed — traced sends can never leak open spans,
    /// even when the hop drops the message. Returns the hop span, the
    /// context the delivered message should carry.
    #[allow(clippy::too_many_arguments)]
    fn hop_span(
        &self,
        ctx: SpanContext,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        start: SimTime,
        free: SimTime,
        tx_done: SimTime,
        arrival: SimTime,
        dropped: bool,
    ) -> SpanContext {
        if !ctx.sampled {
            return ctx;
        }
        let Some(t) = &self.telemetry else {
            return ctx;
        };
        let node = Some(src.0);
        let hop = t.span_child("net.hop", node, ctx, start.as_nanos());
        t.span_attr(hop, "link", AttrValue::Str(format!("{}->{}", src.0, dst.0)));
        t.span_attr(hop, "bytes", AttrValue::UInt(bytes as u64));
        let enq = t.span_child("net.enqueue", node, hop, start.as_nanos());
        t.span_end(enq, free.as_nanos());
        let ser = t.span_child("net.serialize", node, hop, free.as_nanos());
        t.span_end(ser, tx_done.as_nanos());
        if dropped {
            t.span_attr(hop, "dropped", AttrValue::UInt(1));
            t.span_end(hop, tx_done.as_nanos());
        } else {
            let prop = t.span_child("net.propagate", node, hop, tx_done.as_nanos());
            t.span_end(prop, arrival.as_nanos());
            t.span_end(hop, arrival.as_nanos());
        }
        hop
    }

    /// Send `msg` of size `bytes` from `src` to adjacent `dst`.
    ///
    /// Delivery time accounts for propagation latency, transmission delay
    /// and queueing behind earlier messages on the same directed link.
    /// Returns the delivery time.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, msg: M) -> Result<SimTime> {
        self.send_traced(src, dst, bytes, msg, SpanContext::NONE)
    }

    /// [`Sim::send`] carrying a trace context: the hop is recorded as a
    /// closed `net.hop` span tree under `ctx`, and the delivered message
    /// carries the hop span so the receiver's work parents to it.
    pub fn send_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
        ctx: SpanContext,
    ) -> Result<SimTime> {
        let link = self
            .net
            .link(src, dst)
            .ok_or_else(|| Error::Network(format!("no link {src}-{dst}")))?;
        let free = self
            .link_free
            .get(&(src, dst))
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(self.now);
        let tx_done = free + link.transmission_delay(bytes);
        self.link_free.insert((src, dst), tx_done);
        *self.link_busy.entry((src, dst)).or_insert(0) += tx_done.as_nanos() - free.as_nanos();
        let at = tx_done + link.latency;
        self.stats.record(self.now, src, dst, bytes);
        self.record_hop(
            src,
            bytes,
            SimTime::from_nanos(free.as_nanos() - self.now.as_nanos()),
        );
        let dropped = self.hop_drops(src, dst);
        let hop = self.hop_span(ctx, src, dst, bytes, self.now, free, tx_done, at, dropped);
        if !dropped {
            self.push(at, dst, msg, hop);
        }
        Ok(at)
    }

    /// Send `msg` from `src` to a possibly non-adjacent `dst`, hop by hop
    /// along the latency-shortest path. Every traversed link carries the
    /// message (and is charged in the traffic stats); per-direction link
    /// queuing applies at each hop. If `src == dst` the message is
    /// delivered locally with zero delay. Returns the delivery time.
    pub fn send_routed(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
    ) -> Result<SimTime> {
        self.send_routed_traced(src, dst, bytes, msg, SpanContext::NONE)
    }

    /// [`Sim::send_routed`] carrying a trace context: every traversed
    /// link records one closed `net.hop` span tree under `ctx`, and the
    /// delivered message carries the final hop's span.
    pub fn send_routed_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        msg: M,
        ctx: SpanContext,
    ) -> Result<SimTime> {
        if src == dst {
            let at = self.now;
            self.push(at, dst, msg, ctx);
            return Ok(at);
        }
        let path = self.net.path_by_latency(src, dst)?;
        let mut t = self.now;
        let mut carried = ctx;
        for w in path.windows(2) {
            let link = self
                .net
                .link(w[0], w[1])
                .expect("path consists of adjacent nodes");
            let free = self
                .link_free
                .get(&(w[0], w[1]))
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(t);
            let tx_done = free + link.transmission_delay(bytes);
            self.link_free.insert((w[0], w[1]), tx_done);
            *self.link_busy.entry((w[0], w[1])).or_insert(0) +=
                tx_done.as_nanos() - free.as_nanos();
            self.stats.record(t, w[0], w[1], bytes);
            self.record_hop(
                w[0],
                bytes,
                SimTime::from_nanos(free.as_nanos() - t.as_nanos()),
            );
            let start = t;
            t = tx_done + link.latency;
            let dropped = self.hop_drops(w[0], w[1]);
            carried = self.hop_span(ctx, w[0], w[1], bytes, start, free, tx_done, t, dropped);
            if dropped {
                // Lost en route: the hops so far carried it, nothing is
                // delivered. The returned time is the would-have-been
                // arrival at the drop point.
                return Ok(t);
            }
        }
        self.push(t, dst, msg, carried);
        Ok(t)
    }

    /// Schedule a local event at `node` after `delay` (no network traffic).
    pub fn schedule_local(&mut self, node: NodeId, delay: SimTime, msg: M) -> SimTime {
        self.schedule_local_traced(node, delay, msg, SpanContext::NONE)
    }

    /// [`Sim::schedule_local`] carrying a trace context through to the
    /// delivery.
    pub fn schedule_local_traced(
        &mut self,
        node: NodeId,
        delay: SimTime,
        msg: M,
        ctx: SpanContext,
    ) -> SimTime {
        let at = self.now + delay;
        self.push(at, node, msg, ctx);
        at
    }

    /// Schedule an event at an absolute time (used by workload injectors).
    /// Times in the past are clamped to `now`.
    pub fn schedule_at(&mut self, node: NodeId, at: SimTime, msg: M) -> SimTime {
        self.schedule_at_traced(node, at, msg, SpanContext::NONE)
    }

    /// [`Sim::schedule_at`] carrying a trace context through to the
    /// delivery.
    pub fn schedule_at_traced(
        &mut self,
        node: NodeId,
        at: SimTime,
        msg: M,
        ctx: SpanContext,
    ) -> SimTime {
        let at = at.max(self.now);
        self.push(at, node, msg, ctx);
        at
    }

    fn push(&mut self, at: SimTime, dst: NodeId, msg: M, span: SpanContext) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending {
            at,
            seq,
            dst,
            msg,
            span,
        }));
    }

    /// Pop the next delivery and advance the clock to it.
    pub fn pop(&mut self) -> Option<Delivery<M>> {
        let Reverse(p) = self.heap.pop()?;
        debug_assert!(p.at >= self.now, "time went backwards");
        self.now = p.at;
        Some(Delivery {
            at: p.at,
            dst: p.dst,
            msg: p.msg,
            span: p.span,
        })
    }

    /// Record the network layer's time-series gauges at sampling stamp
    /// `stamp` (from [`dpc_telemetry::Telemetry::sample_tick`] /
    /// `sample_now`): event-heap depth, cumulative bytes on the wire,
    /// per-directed-link queue backlog (nanoseconds until the link is
    /// free) and utilization (busy time over elapsed simulated time,
    /// clamped to 1.0 — transmission time is charged at send time for
    /// the future, so it can momentarily exceed the elapsed clock), and
    /// per-undirected-link cumulative bytes. No-op when the telemetry
    /// sink is absent or sampling is disabled.
    pub fn record_timeseries(&self, stamp: u64) {
        let Some(t) = &self.telemetry else {
            return;
        };
        let mut entries: Vec<(String, f64)> = vec![
            ("net.heap_depth".to_string(), self.heap.len() as f64),
            (
                "net.bytes_total".to_string(),
                self.stats.total_bytes() as f64,
            ),
        ];
        let now = self.now.as_nanos();
        let mut links: Vec<_> = self.link_free.iter().collect();
        links.sort_by_key(|(&(a, b), _)| (a.0, b.0));
        for (&(a, b), &free) in links {
            let backlog = free.as_nanos().saturating_sub(now);
            entries.push((
                format!("net.link_backlog_ns#{}->{}", a.0, b.0),
                backlog as f64,
            ));
            let busy = self.link_busy.get(&(a, b)).copied().unwrap_or(0);
            let util = if stamp == 0 {
                0.0
            } else {
                (busy as f64 / stamp as f64).min(1.0)
            };
            entries.push((format!("net.link_util#{}->{}", a.0, b.0), util));
        }
        for ((a, b), bytes) in self.stats.per_link_totals() {
            entries.push((format!("net.link_bytes#{}-{}", a.0, b.0), bytes as f64));
        }
        t.ts_record_all(stamp, entries);
    }

    /// Pop the next delivery only if it occurs at or before `deadline`.
    /// If none does, the clock advances to `deadline` and `None` returns.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<Delivery<M>> {
        match self.heap.peek() {
            Some(Reverse(p)) if p.at <= deadline => self.pop(),
            _ => {
                self.now = self.now.max(deadline);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn two_node_sim() -> Sim<&'static str> {
        let mut net = Network::with_nodes(2);
        // 1 ms latency, 8 Kbps => 1 byte takes 1 ms to transmit.
        net.add_link(n(0), n(1), Link::new(SimTime::from_millis(1), 8_000))
            .unwrap();
        Sim::new(net)
    }

    #[test]
    fn send_computes_delay() {
        let mut sim = two_node_sim();
        let at = sim.send(n(0), n(1), 1, "a").unwrap();
        // 1 ms transmission + 1 ms latency.
        assert_eq!(at, SimTime::from_millis(2));
        let d = sim.pop().unwrap();
        assert_eq!(d.dst, n(1));
        assert_eq!(d.msg, "a");
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn link_serializes_back_to_back_sends() {
        let mut sim = two_node_sim();
        let a = sim.send(n(0), n(1), 1, "a").unwrap();
        let b = sim.send(n(0), n(1), 1, "b").unwrap();
        // Second message queues behind the first's transmission.
        assert_eq!(a, SimTime::from_millis(2));
        assert_eq!(b, SimTime::from_millis(3));
        assert_eq!(sim.pop().unwrap().msg, "a");
        assert_eq!(sim.pop().unwrap().msg, "b");
    }

    #[test]
    fn opposite_directions_do_not_queue() {
        let mut sim = two_node_sim();
        let a = sim.send(n(0), n(1), 1, "a").unwrap();
        let b = sim.send(n(1), n(0), 1, "b").unwrap();
        assert_eq!(a, b, "directions are independent");
    }

    #[test]
    fn send_requires_adjacency() {
        let mut net = Network::with_nodes(3);
        net.add_link(n(0), n(1), Link::new(SimTime::ZERO, 1_000))
            .unwrap();
        let mut sim: Sim<()> = Sim::new(net);
        assert!(sim.send(n(0), n(2), 1, ()).is_err());
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let mut sim = two_node_sim();
        sim.schedule_local(n(0), SimTime::from_millis(5), "late");
        sim.schedule_local(n(0), SimTime::from_millis(1), "early");
        assert_eq!(sim.pop().unwrap().msg, "early");
        assert_eq!(sim.pop().unwrap().msg, "late");
        assert!(sim.pop().is_none());
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut sim = two_node_sim();
        for name in ["a", "b", "c"] {
            sim.schedule_local(n(0), SimTime::from_millis(1), name);
        }
        assert_eq!(sim.pop().unwrap().msg, "a");
        assert_eq!(sim.pop().unwrap().msg, "b");
        assert_eq!(sim.pop().unwrap().msg, "c");
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut sim = two_node_sim();
        sim.schedule_local(n(0), SimTime::from_millis(10), "x");
        assert!(sim.pop_until(SimTime::from_millis(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(5));
        let d = sim.pop_until(SimTime::from_millis(20)).unwrap();
        assert_eq!(d.msg, "x");
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn schedule_at_clamps_past_times() {
        let mut sim = two_node_sim();
        sim.schedule_local(n(0), SimTime::from_millis(10), "first");
        sim.pop().unwrap();
        let at = sim.schedule_at(n(0), SimTime::from_millis(1), "past");
        assert_eq!(at, SimTime::from_millis(10));
    }

    #[test]
    fn send_routed_charges_every_hop() {
        // 3-node line; routed send 0 -> 2 crosses both links.
        let mut net = Network::with_nodes(3);
        let l = Link::new(SimTime::from_millis(1), 8_000); // 1 B/ms
        net.add_link(n(0), n(1), l).unwrap();
        net.add_link(n(1), n(2), l).unwrap();
        let mut sim = Sim::new(net);
        let at = sim.send_routed(n(0), n(2), 1, "x").unwrap();
        // Per hop: 1 ms tx + 1 ms latency; two hops.
        assert_eq!(at, SimTime::from_millis(4));
        assert_eq!(sim.stats().link_bytes(n(0), n(1)), 1);
        assert_eq!(sim.stats().link_bytes(n(1), n(2)), 1);
        assert_eq!(sim.stats().total_bytes(), 2);
        let d = sim.pop().unwrap();
        assert_eq!(d.dst, n(2));
    }

    #[test]
    fn send_routed_to_self_is_immediate_and_free() {
        let mut sim = two_node_sim();
        let at = sim.send_routed(n(0), n(0), 100, "x").unwrap();
        assert_eq!(at, SimTime::ZERO);
        assert_eq!(sim.stats().total_bytes(), 0);
        assert_eq!(sim.pop().unwrap().dst, n(0));
    }

    #[test]
    fn send_routed_disconnected_errors() {
        let net = Network::with_nodes(2); // no links
        let mut sim: Sim<()> = Sim::new(net);
        assert!(sim.send_routed(n(0), n(1), 1, ()).is_err());
    }

    #[test]
    fn traffic_is_recorded() {
        let mut sim = two_node_sim();
        sim.send(n(0), n(1), 100, "a").unwrap();
        sim.send(n(0), n(1), 50, "b").unwrap();
        assert_eq!(sim.stats().total_bytes(), 150);
        assert_eq!(sim.stats().messages(), 2);
        assert_eq!(sim.stats().link_bytes(n(0), n(1)), 150);
    }

    /// Accounting boundary: on a multi-hop run, the per-link totals are a
    /// complete partition of the global byte count — nothing is double
    /// counted across hops and nothing escapes attribution.
    #[test]
    fn per_link_bytes_partition_global_total() {
        // 4-node line; every routed send crosses 1..=3 links.
        let mut net = Network::with_nodes(4);
        let l = Link::new(SimTime::from_millis(1), 8_000);
        for i in 0..3 {
            net.add_link(n(i), n(i + 1), l).unwrap();
        }
        let mut sim = Sim::new(net);
        sim.send_routed(n(0), n(3), 100, "far").unwrap(); // 3 hops
        sim.send_routed(n(3), n(1), 40, "back").unwrap(); // 2 hops
        sim.send_routed(n(1), n(2), 7, "near").unwrap(); // 1 hop
        sim.send(n(2), n(3), 11, "direct").unwrap();
        let per_link: u64 = sim.stats().per_link_totals().iter().map(|&(_, b)| b).sum();
        assert_eq!(per_link, sim.stats().total_bytes());
        assert_eq!(sim.stats().total_bytes(), 3 * 100 + 2 * 40 + 7 + 11);
        // The sampled per-link series agree with the same partition.
        let telemetry = dpc_telemetry::Telemetry::handle();
        sim.set_telemetry(telemetry.clone());
        telemetry.set_timeseries(1_000_000, 64);
        sim.record_timeseries(1_000_000);
        let sampled: f64 = telemetry
            .timeseries()
            .iter()
            .filter(|(k, _)| k.starts_with("net.link_bytes#"))
            .map(|(_, pts)| pts.last().expect("sampled").1)
            .sum();
        assert_eq!(sampled as u64, sim.stats().total_bytes());
    }

    #[test]
    fn loss_injection_drops_every_nth() {
        let mut sim = two_node_sim();
        sim.inject_loss(n(0), n(1), 3);
        for name in ["a", "b", "c", "d", "e", "f"] {
            sim.send(n(0), n(1), 1, name).unwrap();
        }
        let mut delivered = Vec::new();
        while let Some(d) = sim.pop() {
            delivered.push(d.msg);
        }
        // Every 3rd message ("c" and "f") is dropped.
        assert_eq!(delivered, vec!["a", "b", "d", "e"]);
        assert_eq!(sim.dropped(), 2);
        // Bandwidth was still consumed by the dropped messages.
        assert_eq!(sim.stats().messages(), 6);
    }

    #[test]
    fn loss_is_per_direction() {
        let mut sim = two_node_sim();
        sim.inject_loss(n(0), n(1), 1); // drop everything 0 -> 1
        sim.send(n(0), n(1), 1, "lost").unwrap();
        sim.send(n(1), n(0), 1, "fine").unwrap();
        assert_eq!(sim.pop().unwrap().msg, "fine");
        assert!(sim.pop().is_none());
        assert_eq!(sim.dropped(), 1);
    }

    #[test]
    fn clear_loss_restores_delivery() {
        let mut sim = two_node_sim();
        sim.inject_loss(n(0), n(1), 1);
        sim.send(n(0), n(1), 1, "lost").unwrap();
        sim.clear_loss(n(0), n(1));
        sim.send(n(0), n(1), 1, "fine").unwrap();
        assert_eq!(sim.pop().unwrap().msg, "fine");
        assert!(sim.pop().is_none());
    }

    #[test]
    fn routed_send_drops_mid_path() {
        let mut net = Network::with_nodes(3);
        let l = Link::new(SimTime::from_millis(1), 8_000);
        net.add_link(n(0), n(1), l).unwrap();
        net.add_link(n(1), n(2), l).unwrap();
        let mut sim = Sim::new(net);
        sim.inject_loss(n(1), n(2), 1);
        sim.send_routed(n(0), n(2), 1, "lost").unwrap();
        assert!(sim.pop().is_none());
        // The first hop still carried the message.
        assert_eq!(sim.stats().link_bytes(n(0), n(1)), 1);
        assert_eq!(sim.stats().link_bytes(n(1), n(2)), 1);
        assert_eq!(sim.dropped(), 1);
    }

    #[test]
    fn local_scheduling_costs_no_traffic() {
        let mut sim = two_node_sim();
        sim.schedule_local(n(0), SimTime::from_millis(1), "x");
        assert_eq!(sim.stats().total_bytes(), 0);
    }

    #[test]
    fn traced_send_records_hop_span_tree() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut sim = two_node_sim();
        sim.set_telemetry(t.clone());
        let root = t.span_root("query", Some(0), 0);
        assert!(root.sampled);
        let at = sim.send_traced(n(0), n(1), 1, "a", root).unwrap();
        assert_eq!(at, SimTime::from_millis(2));
        let d = sim.pop().unwrap();
        // The delivered context is the hop span, same trace as the root.
        assert_ne!(d.span.span, root.span);
        assert_eq!(d.span.trace, root.trace);
        t.span_end(root, sim.now().as_nanos());
        let spans = t.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "query",
                "net.hop",
                "net.enqueue",
                "net.serialize",
                "net.propagate"
            ]
        );
        let hop = spans.iter().find(|s| s.name == "net.hop").unwrap();
        assert_eq!(hop.parent, Some(root.span));
        assert_eq!(hop.start_ns, 0);
        assert_eq!(hop.end_ns, Some(SimTime::from_millis(2).as_nanos()));
        assert!(matches!(
            hop.attr("link"),
            Some(dpc_telemetry::AttrValue::Str(s)) if s == "0->1"
        ));
        let prop = spans.iter().find(|s| s.name == "net.propagate").unwrap();
        assert_eq!(prop.parent, Some(hop.id));
        assert_eq!(prop.start_ns, SimTime::from_millis(1).as_nanos());
        // Every span closed; the group forms a well-formed tree.
        assert_eq!(t.open_span_count(), 0);
        for (_, tree) in dpc_telemetry::spans_by_trace(&spans) {
            dpc_telemetry::check_well_formed(&tree).unwrap();
        }
    }

    #[test]
    fn dropped_traced_send_leaves_no_open_spans() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut sim = two_node_sim();
        sim.set_telemetry(t.clone());
        sim.inject_loss(n(0), n(1), 1);
        let root = t.span_root("query", Some(0), 0);
        sim.send_traced(n(0), n(1), 1, "lost", root).unwrap();
        assert!(sim.pop().is_none());
        t.span_end(root, sim.now().as_nanos());
        let spans = t.spans();
        let hop = spans.iter().find(|s| s.name == "net.hop").unwrap();
        // The hop span ends when transmission finishes, is flagged
        // dropped, and has no propagate child.
        assert_eq!(hop.end_ns, Some(SimTime::from_millis(1).as_nanos()));
        assert!(matches!(
            hop.attr("dropped"),
            Some(dpc_telemetry::AttrValue::UInt(1))
        ));
        assert!(!spans.iter().any(|s| s.name == "net.propagate"));
        assert_eq!(t.open_span_count(), 0);
        for (_, tree) in dpc_telemetry::spans_by_trace(&spans) {
            dpc_telemetry::check_well_formed(&tree).unwrap();
        }
    }

    #[test]
    fn untraced_sends_record_no_spans() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_span_sampling(1);
        let mut sim = two_node_sim();
        sim.set_telemetry(t.clone());
        sim.send(n(0), n(1), 1, "a").unwrap();
        let d = sim.pop().unwrap();
        assert_eq!(d.span, SpanContext::NONE);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn timeseries_records_network_gauges() {
        let t = dpc_telemetry::Telemetry::handle();
        t.set_timeseries(1_000_000, 64); // 1 ms cadence
        let mut sim = two_node_sim();
        sim.set_telemetry(t.clone());
        sim.send(n(0), n(1), 1, "a").unwrap(); // 1 ms tx + 1 ms latency
        sim.send(n(0), n(1), 1, "b").unwrap();
        let stamp = SimTime::from_millis(1).as_nanos();
        sim.record_timeseries(stamp);
        assert_eq!(
            t.timeseries_get("net.heap_depth").unwrap(),
            vec![(stamp, 2.0)]
        );
        assert_eq!(
            t.timeseries_get("net.bytes_total").unwrap(),
            vec![(stamp, 2.0)]
        );
        // Two back-to-back 1-ms transmissions: 2 ms busy at a 1 ms stamp
        // clamps to full utilization; the second transmission is still
        // queued so the directed link has backlog.
        assert_eq!(
            t.timeseries_get("net.link_util#0->1").unwrap(),
            vec![(stamp, 1.0)]
        );
        let backlog = t.timeseries_get("net.link_backlog_ns#0->1").unwrap()[0].1;
        assert!(backlog > 0.0, "second send still transmitting: {backlog}");
        assert_eq!(
            t.timeseries_get("net.link_bytes#0-1").unwrap(),
            vec![(stamp, 2.0)]
        );
    }

    #[test]
    fn telemetry_counts_sends_and_drops() {
        let t = dpc_telemetry::Telemetry::handle();
        let mut sim = two_node_sim();
        sim.set_telemetry(t.clone());
        sim.inject_loss(n(0), n(1), 2);
        sim.send(n(0), n(1), 10, "a").unwrap();
        sim.send(n(0), n(1), 10, "b").unwrap(); // dropped
        assert_eq!(t.counter_total("net.msgs_sent"), 2);
        assert_eq!(t.counter_total("net.bytes_sent"), 20);
        assert_eq!(t.counter_total("net.msgs_dropped"), 1);
        // The second send queued behind the first's transmission: the
        // queueing-delay histogram saw one zero and one positive wait.
        let snap = t.snapshot(sim.now().as_nanos());
        let h = &snap.hists[&("net.queue_delay_ns".to_string(), None)];
        assert_eq!(h.count, 2);
        assert!(h.max > 0);
        assert_eq!(h.min, 0);
    }
}
