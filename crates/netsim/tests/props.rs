//! Randomized tests of the network layer: shortest-path invariants over
//! random connected topologies, and simulator delivery invariants.
//!
//! Driven by the in-tree seeded PRNG so every failing case reproduces
//! from its case number.

use dpc_common::{NodeId, Rng, SeededRng};
use dpc_netsim::{Link, Network, Sim, SimTime};

const CASES: u64 = 64;

/// A random connected network: a spanning tree plus extra chords, with
/// random link latencies.
fn random_network(rng: &mut SeededRng) -> Network {
    let n = rng.random_range(2..12u64) as usize;
    let mut net = Network::with_nodes(n);
    for i in 1..n {
        let p = rng.random_range(0..i as u64) as usize; // parent precedes child
        net.add_link(
            NodeId(i as u32),
            NodeId(p as u32),
            Link::new(SimTime::from_millis(rng.random_range(1..100u64)), 1_000_000),
        )
        .expect("tree edges are fresh");
    }
    for _ in 0..rng.random_range(0..6u64) {
        let a = NodeId(rng.random_range(0..n as u64) as u32);
        let b = NodeId(rng.random_range(0..n as u64) as u32);
        if a != b && net.link(a, b).is_none() {
            net.add_link(
                a,
                b,
                Link::new(SimTime::from_millis(rng.random_range(1..100u64)), 1_000_000),
            )
            .expect("checked for duplicates");
        }
    }
    net
}

/// Generated networks are connected, and every shortest path is a
/// walk over existing links with the claimed total latency.
#[test]
fn paths_are_valid_walks() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x11_000 + case);
        let net = random_network(&mut rng);
        assert!(net.is_connected());
        let n = net.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId(a), NodeId(b));
                let path = net.path_by_latency(a, b).unwrap();
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                let mut total = SimTime::ZERO;
                for w in path.windows(2) {
                    let link = net.link(w[0], w[1]);
                    assert!(link.is_some(), "non-adjacent hop");
                    total += link.unwrap().latency;
                }
                assert_eq!(net.path_latency(a, b).unwrap(), total);
            }
        }
    }
}

/// Latency metric properties: symmetry and the triangle inequality.
#[test]
fn latency_is_a_metric() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x12_000 + case);
        let net = random_network(&mut rng);
        let n = net.node_count() as u32;
        let d = |a: u32, b: u32| net.path_latency(NodeId(a), NodeId(b)).unwrap();
        for a in 0..n {
            assert_eq!(d(a, a), SimTime::ZERO);
            for b in 0..n {
                assert_eq!(d(a, b), d(b, a));
                for c in 0..n.min(6) {
                    assert!(d(a, b) <= d(a, c) + d(c, b), "triangle violated");
                }
            }
        }
    }
}

/// Hop-shortest paths never have more hops than latency-shortest ones.
#[test]
fn hop_paths_minimize_hops() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x13_000 + case);
        let net = random_network(&mut rng);
        let n = net.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId(a), NodeId(b));
                let hops = net.path_by_hops(a, b).unwrap().len();
                let lat = net.path_by_latency(a, b).unwrap().len();
                assert!(hops <= lat);
            }
        }
    }
}

/// The simulator delivers every routed message exactly once, in
/// nondecreasing time order, regardless of the send pattern.
#[test]
fn routed_sends_deliver_once_in_time_order() {
    for case in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(0x14_000 + case);
        let net = random_network(&mut rng);
        let n = net.node_count();
        let mut sim: Sim<usize> = Sim::new(net);
        let mut expected = Vec::new();
        let sends = rng.random_range(1..30u64) as usize;
        for i in 0..sends {
            let a = NodeId(rng.random_range(0..n as u64) as u32);
            let b = NodeId(rng.random_range(0..n as u64) as u32);
            let bytes = rng.random_range(1..2000u64) as usize;
            sim.send_routed(a, b, bytes, i).unwrap();
            expected.push((i, b));
        }
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some(d) = sim.pop() {
            assert!(d.at >= last, "time went backwards");
            last = d.at;
            seen.push((d.msg, d.dst));
        }
        seen.sort_unstable();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
