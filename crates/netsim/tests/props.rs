//! Property tests of the network layer: shortest-path invariants over
//! random connected topologies, and simulator delivery invariants.

use dpc_common::NodeId;
use dpc_netsim::{Link, Network, Sim, SimTime};
use proptest::prelude::*;

/// A random connected network: a spanning tree plus extra chords, with
/// random link latencies.
fn network() -> impl Strategy<Value = Network> {
    (2usize..12).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let latencies = proptest::collection::vec(1u64..100, n - 1);
        let chords = proptest::collection::vec((0usize..n, 0usize..n, 1u64..100), 0..6);
        (parents, latencies, chords).prop_map(move |(parents, lat, chords)| {
            let mut net = Network::with_nodes(n);
            for i in 1..n {
                let p = parents[i - 1] % i; // parent precedes child
                net.add_link(
                    NodeId(i as u32),
                    NodeId(p as u32),
                    Link::new(SimTime::from_millis(lat[i - 1]), 1_000_000),
                )
                .expect("tree edges are fresh");
            }
            for (a, b, l) in chords {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                if a != b && net.link(a, b).is_none() {
                    net.add_link(a, b, Link::new(SimTime::from_millis(l), 1_000_000))
                        .expect("checked for duplicates");
                }
            }
            net
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated networks are connected, and every shortest path is a
    /// walk over existing links with the claimed total latency.
    #[test]
    fn paths_are_valid_walks(net in network()) {
        prop_assert!(net.is_connected());
        let n = net.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId(a), NodeId(b));
                let path = net.path_by_latency(a, b).unwrap();
                prop_assert_eq!(path[0], a);
                prop_assert_eq!(*path.last().unwrap(), b);
                let mut total = SimTime::ZERO;
                for w in path.windows(2) {
                    let link = net.link(w[0], w[1]);
                    prop_assert!(link.is_some(), "non-adjacent hop");
                    total += link.unwrap().latency;
                }
                prop_assert_eq!(net.path_latency(a, b).unwrap(), total);
            }
        }
    }

    /// Latency metric properties: symmetry and the triangle inequality.
    #[test]
    fn latency_is_a_metric(net in network()) {
        let n = net.node_count() as u32;
        let d = |a: u32, b: u32| net.path_latency(NodeId(a), NodeId(b)).unwrap();
        for a in 0..n {
            prop_assert_eq!(d(a, a), SimTime::ZERO);
            for b in 0..n {
                prop_assert_eq!(d(a, b), d(b, a));
                for c in 0..n.min(6) {
                    prop_assert!(d(a, b) <= d(a, c) + d(c, b), "triangle violated");
                }
            }
        }
    }

    /// Hop-shortest paths never have more hops than latency-shortest ones.
    #[test]
    fn hop_paths_minimize_hops(net in network()) {
        let n = net.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId(a), NodeId(b));
                let hops = net.path_by_hops(a, b).unwrap().len();
                let lat = net.path_by_latency(a, b).unwrap().len();
                prop_assert!(hops <= lat);
            }
        }
    }

    /// The simulator delivers every routed message exactly once, in
    /// nondecreasing time order, regardless of the send pattern.
    #[test]
    fn routed_sends_deliver_once_in_time_order(
        net in network(),
        sends in proptest::collection::vec((0usize..12, 0usize..12, 1usize..2000), 1..30),
    ) {
        let n = net.node_count();
        let mut sim: Sim<usize> = Sim::new(net);
        let mut expected = Vec::new();
        for (i, (a, b, bytes)) in sends.into_iter().enumerate() {
            let (a, b) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            sim.send_routed(a, b, bytes, i).unwrap();
            expected.push((i, b));
        }
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some(d) = sim.pop() {
            prop_assert!(d.at >= last, "time went backwards");
            last = d.at;
            seen.push((d.msg, d.dst));
        }
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }
}
