#![warn(missing_docs)]

//! Network applications written as DELPs, with deployment helpers.
//!
//! * [`forwarding`] — the paper's running example (Figure 1): tuple
//!   constructors and shortest-path route installation (the paper
//!   pre-computes routes with a declarative routing protocol; we install
//!   the same shortest paths directly).
//! * [`dns`] — recursive DNS resolution (Figure 19): builds the nameserver
//!   hierarchy over a tree topology, installs delegations and address
//!   records, and registers `f_isSubDomain`.
//! * [`firewall`] — forwarding with per-hop ACL admission: rules joining
//!   two slow-changing relations.
//! * [`dhcp`] — a DHCP-style address-assignment DELP.
//! * [`arp`] — an ARP-style resolution DELP.

pub mod arp;
pub mod dhcp;
pub mod dns;
pub mod firewall;
pub mod forwarding;
