//! An ARP-style address-resolution application (Section 3.1 lists ARP as
//! expressible in DELP): a who-has query travels to the gateway, which
//! answers from its binding table.

use dpc_common::{NodeId, Result, Tuple, Value};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::programs;
use dpc_netsim::Network;

/// Build a `whoHas(@client, ip, rqid)` input event.
pub fn who_has(client: NodeId, ip: impl Into<String>, rqid: i64) -> Tuple {
    Tuple::new(
        "whoHas",
        vec![Value::Addr(client), Value::Str(ip.into()), Value::Int(rqid)],
    )
}

/// Create an ARP runtime over `net`.
pub fn make_runtime<R: ProvRecorder>(net: Network, recorder: R) -> Runtime<R> {
    Runtime::new(programs::arp(), net, recorder)
}

/// Configure `clients` to use `gateway` and install `(ip, mac)` bindings
/// there.
pub fn deploy<R: ProvRecorder>(
    rt: &mut Runtime<R>,
    gateway: NodeId,
    clients: &[NodeId],
    bindings: &[(&str, &str)],
) -> Result<()> {
    for &c in clients {
        rt.install(Tuple::new(
            "gateway",
            vec![Value::Addr(c), Value::Addr(gateway)],
        ))?;
    }
    for (ip, mac) in bindings {
        rt.install(Tuple::new(
            "binding",
            vec![Value::Addr(gateway), Value::str(*ip), Value::str(*mac)],
        ))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_engine::NoopRecorder;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn resolves_known_binding() {
        let net = topo::star(3, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        deploy(
            &mut rt,
            n(0),
            &[n(1), n(2)],
            &[("10.0.0.5", "aa:bb:cc:dd:ee:05")],
        )
        .unwrap();
        rt.inject(who_has(n(1), "10.0.0.5", 3)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        let reply = &rt.outputs()[0].tuple;
        assert_eq!(reply.rel(), "arpReply");
        assert_eq!(reply.loc().unwrap(), n(1));
        assert_eq!(reply.args()[2], Value::str("aa:bb:cc:dd:ee:05"));
    }

    #[test]
    fn unknown_ip_goes_unanswered() {
        let net = topo::star(3, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        deploy(&mut rt, n(0), &[n(1)], &[("10.0.0.5", "aa")]).unwrap();
        rt.inject(who_has(n(1), "10.9.9.9", 4)).unwrap();
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
    }

    #[test]
    fn equivalence_classes_are_per_client_and_ip() {
        use dpc_core::AdvancedRecorder;
        use dpc_ndlog::equivalence_keys;
        let keys = equivalence_keys(&programs::arp());
        assert_eq!(keys.indices(), &[0, 1]);
        let net = topo::star(3, Link::STUB_STUB);
        let mut rt = make_runtime(net, AdvancedRecorder::new(3, keys));
        deploy(
            &mut rt,
            n(0),
            &[n(1), n(2)],
            &[("10.0.0.5", "aa"), ("10.0.0.6", "bb")],
        )
        .unwrap();
        // Same client+ip twice (one class), then a different ip.
        rt.inject(who_has(n(1), "10.0.0.5", 1)).unwrap();
        rt.run().unwrap();
        rt.inject(who_has(n(1), "10.0.0.5", 2)).unwrap();
        rt.run().unwrap();
        rt.inject(who_has(n(1), "10.0.0.6", 3)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 3);
        // r2 at the gateway: one row per class -> 2.
        assert_eq!(rt.recorder().row_counts(n(0)).1, 2);
        assert_eq!(rt.recorder().hmap_misses(), 0);
    }
}
