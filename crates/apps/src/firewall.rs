//! Firewall-filtered packet forwarding: Figure 1 extended with a
//! per-source ACL — each hop forwards only if its access-control list
//! admits the packet's source.
//!
//! This is the workspace's exercise of rules joining *several*
//! slow-changing relations: `r1` joins both `acl` and `route`, so both
//! tuples appear in every provenance tree level, and the static analysis
//! identifies the source attribute as an equivalence key (packets from
//! different sources can take different fates even on the same route).

use dpc_common::{NodeId, Result, Tuple, Value};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{parse_program, Delp};
use dpc_netsim::Network;

/// The firewall-forwarding DELP: like Figure 1's program, with an `acl`
/// join at every forwarding hop.
pub const FIREWALL_FORWARDING: &str = r#"
    r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), acl(@L, S), route(@L, D, N).
    r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
"#;

/// Parse-and-validate [`FIREWALL_FORWARDING`].
pub fn program() -> Delp {
    Delp::new(parse_program(FIREWALL_FORWARDING).expect("firewall program parses"))
        .expect("firewall program is a valid DELP")
}

/// Build an `acl(@loc, src)` admission tuple.
pub fn acl(loc: NodeId, src: NodeId) -> Tuple {
    Tuple::new("acl", vec![Value::Addr(loc), Value::Addr(src)])
}

/// Create a firewall-forwarding runtime over `net`.
pub fn make_runtime<R: ProvRecorder>(net: Network, recorder: R) -> Runtime<R> {
    Runtime::new(program(), net, recorder)
}

/// Admit `src` at every node along the hop-shortest `src -> dst` path
/// (the destination needs no ACL entry: `r2` does not consult it).
pub fn admit_along_path<R: ProvRecorder>(
    rt: &mut Runtime<R>,
    src: NodeId,
    dst: NodeId,
) -> Result<()> {
    let path = rt.net().path_by_hops(src, dst)?;
    for w in path.windows(2) {
        rt.install(acl(w[0], src))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding;
    use dpc_core::{query_advanced, AdvancedRecorder, GroundTruthRecorder, QueryCtx};
    use dpc_engine::{NoopRecorder, TeeRecorder};
    use dpc_ndlog::equivalence_keys;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn deploy<R: ProvRecorder>(rec: R) -> Runtime<R> {
        let net = topo::line(4, Link::STUB_STUB);
        let mut rt = make_runtime(net, rec);
        forwarding::install_routes_for_pairs(&mut rt, &[(n(0), n(3)), (n(1), n(3))]).unwrap();
        rt
    }

    #[test]
    fn keys_include_the_source() {
        // acl joins the source attribute: (loc, src, dst) are all keys.
        let k = equivalence_keys(&program());
        assert_eq!(k.rel(), "packet");
        assert_eq!(k.indices(), &[0, 1, 2]);
    }

    #[test]
    fn admitted_packets_pass_blocked_packets_die() {
        let mut rt = deploy(NoopRecorder);
        admit_along_path(&mut rt, n(0), n(3)).unwrap();
        // n1 as a source is NOT admitted anywhere.
        rt.inject(forwarding::packet(n(0), n(0), n(3), "ok"))
            .unwrap();
        rt.inject(forwarding::packet(n(1), n(1), n(3), "blocked"))
            .unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        assert_eq!(rt.outputs()[0].tuple.args()[3], Value::str("ok"));
    }

    #[test]
    fn mid_path_block_drops_silently() {
        let mut rt = deploy(NoopRecorder);
        // Admit at n0 and n1 but not n2: the packet dies two hops in.
        rt.install(acl(n(0), n(0))).unwrap();
        rt.install(acl(n(1), n(0))).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), n(3), "x"))
            .unwrap();
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
        assert_eq!(rt.rules_fired(), 2); // r1 at n0 and n1 only
    }

    #[test]
    fn provenance_trees_carry_both_slow_tuples() {
        let keys = equivalence_keys(&program());
        let rec = TeeRecorder::new(AdvancedRecorder::new(4, keys), GroundTruthRecorder::new());
        let mut rt = deploy(rec);
        admit_along_path(&mut rt, n(0), n(3)).unwrap();
        rt.inject(forwarding::packet(n(0), n(0), n(3), "a"))
            .unwrap();
        rt.run().unwrap();
        rt.inject(forwarding::packet(n(0), n(0), n(3), "b"))
            .unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 2);
        assert_eq!(rt.recorder().primary.hmap_misses(), 0);

        let ctx = QueryCtx::from_runtime(&rt);
        for out in rt.outputs() {
            let got = query_advanced(&ctx, &rt.recorder().primary, &out.tuple, &out.evid).unwrap();
            let want = rt
                .recorder()
                .shadow
                .tree_for(&out.tuple, &out.evid)
                .unwrap();
            assert_eq!(&got.tree, want);
            // Every r1 level joined an acl AND a route tuple.
            let mut cur = Some(&got.tree);
            while let Some(t) = cur {
                if t.rule() == "r1" {
                    assert_eq!(t.slow().len(), 2, "{}", t.output());
                    assert_eq!(t.slow()[0].rel(), "acl");
                    assert_eq!(t.slow()[1].rel(), "route");
                }
                cur = t.child();
            }
        }
        // The two packets share one equivalence class (same loc/src/dst).
        assert_eq!(rt.recorder().primary.row_counts(n(0)).1, 1);
    }

    #[test]
    fn different_sources_are_different_classes() {
        let keys = equivalence_keys(&program());
        let mut rt = deploy(AdvancedRecorder::new(4, keys));
        admit_along_path(&mut rt, n(0), n(3)).unwrap();
        // Admit n9 (a spoofed source id) along the same path.
        for i in 0..3u32 {
            rt.install(acl(n(i), n(9))).unwrap();
        }
        rt.inject(forwarding::packet(n(0), n(0), n(3), "x"))
            .unwrap();
        rt.run().unwrap();
        rt.inject(forwarding::packet(n(0), n(9), n(3), "x"))
            .unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 2);
        // Same route, different acl tuple -> separate trees at n0.
        assert_eq!(rt.recorder().row_counts(n(0)).1, 2);
    }
}
