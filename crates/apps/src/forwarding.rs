//! Packet forwarding (Figure 1) deployment helpers.

use dpc_common::{NodeId, Result, Tuple, Value};
use dpc_engine::{ProvRecorder, Runtime, RuntimeBuilder};
use dpc_ndlog::programs;
use dpc_netsim::Network;

/// Build a `packet(@loc, src, dst, payload)` tuple.
pub fn packet(loc: NodeId, src: NodeId, dst: NodeId, payload: impl Into<String>) -> Tuple {
    Tuple::new(
        "packet",
        vec![
            Value::Addr(loc),
            Value::Addr(src),
            Value::Addr(dst),
            Value::Str(payload.into()),
        ],
    )
}

/// Build a `route(@loc, dst, next)` tuple.
pub fn route(loc: NodeId, dst: NodeId, next: NodeId) -> Tuple {
    Tuple::new(
        "route",
        vec![Value::Addr(loc), Value::Addr(dst), Value::Addr(next)],
    )
}

/// Build a `recv(@loc, src, dst, payload)` tuple (the output relation).
pub fn recv(loc: NodeId, src: NodeId, dst: NodeId, payload: impl Into<String>) -> Tuple {
    Tuple::new(
        "recv",
        vec![
            Value::Addr(loc),
            Value::Addr(src),
            Value::Addr(dst),
            Value::Str(payload.into()),
        ],
    )
}

/// Start a forwarding runtime builder over `net` — chain `.recorder(..)`,
/// `.config(..)` etc. before `.build()`.
pub fn runtime_builder(net: Network) -> RuntimeBuilder<dpc_engine::NoopRecorder> {
    Runtime::builder(programs::packet_forwarding(), net)
}

/// Create a forwarding runtime over `net` with the given recorder.
pub fn make_runtime<R: ProvRecorder>(net: Network, recorder: R) -> Runtime<R> {
    Runtime::new(programs::packet_forwarding(), net, recorder)
}

/// Install hop-by-hop routes for every `(src, dst)` pair along the
/// hop-shortest path — the paper's precomputed routing state.
pub fn install_routes_for_pairs<R: ProvRecorder>(
    rt: &mut Runtime<R>,
    pairs: &[(NodeId, NodeId)],
) -> Result<()> {
    // Collect first: route tables must not depend on install order, and
    // duplicate (loc, dst) entries across overlapping pairs are fine (the
    // engine's tables dedup) as long as the next hop is consistent, which
    // it is because paths come from the same deterministic shortest-path
    // computation.
    let mut routes = Vec::new();
    for &(s, d) in pairs {
        let path = rt.net().path_by_hops(s, d)?;
        for w in path.windows(2) {
            routes.push(route(w[0], d, w[1]));
        }
    }
    for r in routes {
        rt.install(r)?;
    }
    Ok(())
}

/// The payload used in the paper's experiments: 500 characters, made
/// unique per packet by a sequence prefix.
pub fn payload(seq: u64) -> String {
    let prefix = format!("pkt-{seq}-");
    let mut s = String::with_capacity(500);
    s.push_str(&prefix);
    while s.len() < 500 {
        s.push('x');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::SeededRng;
    use dpc_engine::NoopRecorder;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn routes_follow_shortest_paths() {
        let net = topo::line(4, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        install_routes_for_pairs(&mut rt, &[(n(0), n(3))]).unwrap();
        assert!(rt.db(n(0)).contains(&route(n(0), n(3), n(1))));
        assert!(rt.db(n(1)).contains(&route(n(1), n(3), n(2))));
        assert!(rt.db(n(2)).contains(&route(n(2), n(3), n(3))));
        assert_eq!(rt.db(n(3)).count("route"), 0);
    }

    #[test]
    fn pairs_forward_end_to_end_on_transit_stub() {
        let mut rng = SeededRng::seed_from_u64(42);
        let ts = topo::transit_stub(&mut rng, &topo::TransitStubParams::default());
        let (s, d) = (ts.stub[0], ts.stub[95]);
        let mut rt = make_runtime(ts.net, NoopRecorder);
        install_routes_for_pairs(&mut rt, &[(s, d)]).unwrap();
        rt.inject(packet(s, s, d, payload(0))).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        assert_eq!(rt.outputs()[0].node, d);
    }

    #[test]
    fn payload_is_500_chars_and_unique() {
        let a = payload(1);
        let b = payload(2);
        assert_eq!(a.len(), 500);
        assert_eq!(b.len(), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn overlapping_pairs_share_route_entries() {
        let net = topo::line(5, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        install_routes_for_pairs(&mut rt, &[(n(0), n(4)), (n(1), n(4))]).unwrap();
        // n1's route to n4 serves both pairs; only one row exists.
        assert_eq!(rt.db(n(1)).count("route"), 1);
    }
}
