//! A DHCP-style address-assignment application (Section 3.1 lists DHCP as
//! expressible in DELP).
//!
//! `discover(@CL, RQID)` relays to the client's configured DHCP server,
//! which offers every address in its pool; the client turns offers into
//! leases. A multi-address pool makes one execution derive several
//! outputs — exercising the engine's (and recorders') handling of
//! branching executions.

use dpc_common::{NodeId, Result, Tuple, Value};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::programs;
use dpc_netsim::Network;

/// Build a `discover(@client, rqid)` input event.
pub fn discover(client: NodeId, rqid: i64) -> Tuple {
    Tuple::new("discover", vec![Value::Addr(client), Value::Int(rqid)])
}

/// Create a DHCP runtime over `net`.
pub fn make_runtime<R: ProvRecorder>(net: Network, recorder: R) -> Runtime<R> {
    Runtime::new(programs::dhcp(), net, recorder)
}

/// Point `clients` at `server` and stock the server's address pool.
pub fn deploy<R: ProvRecorder>(
    rt: &mut Runtime<R>,
    server: NodeId,
    clients: &[NodeId],
    pool: &[&str],
) -> Result<()> {
    for &c in clients {
        rt.install(Tuple::new(
            "dhcpServer",
            vec![Value::Addr(c), Value::Addr(server)],
        ))?;
    }
    for ip in pool {
        rt.install(Tuple::new(
            "addressPool",
            vec![Value::Addr(server), Value::str(*ip)],
        ))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_engine::NoopRecorder;
    use dpc_netsim::{topo, Link};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn lease_round_trip() {
        // Star: server at hub 0, clients 1..4.
        let net = topo::star(5, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        deploy(&mut rt, n(0), &[n(1), n(2), n(3), n(4)], &["10.0.0.9"]).unwrap();
        rt.inject(discover(n(2), 77)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        let lease = &rt.outputs()[0].tuple;
        assert_eq!(lease.rel(), "lease");
        assert_eq!(lease.loc().unwrap(), n(2));
        assert_eq!(lease.args()[2], Value::str("10.0.0.9"));
        assert_eq!(lease.args()[3], Value::Int(77));
    }

    #[test]
    fn multi_address_pool_offers_all() {
        let net = topo::star(3, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        deploy(
            &mut rt,
            n(0),
            &[n(1)],
            &["10.0.0.1", "10.0.0.2", "10.0.0.3"],
        )
        .unwrap();
        rt.inject(discover(n(1), 1)).unwrap();
        rt.run().unwrap();
        // One lease per pool address — a branching execution.
        assert_eq!(rt.outputs().len(), 3);
        let ips: std::collections::BTreeSet<_> = rt
            .outputs()
            .iter()
            .map(|o| o.tuple.args()[2].as_str().unwrap().to_string())
            .collect();
        assert_eq!(ips.len(), 3);
    }

    #[test]
    fn client_without_server_config_gets_nothing() {
        let net = topo::star(3, Link::STUB_STUB);
        let mut rt = make_runtime(net, NoopRecorder);
        deploy(&mut rt, n(0), &[n(1)], &["10.0.0.1"]).unwrap();
        rt.inject(discover(n(2), 5)).unwrap(); // n2 not configured
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
    }

    #[test]
    fn equivalence_classes_are_per_client() {
        use dpc_core::AdvancedRecorder;
        use dpc_ndlog::equivalence_keys;
        let keys = equivalence_keys(&programs::dhcp());
        let net = topo::star(4, Link::STUB_STUB);
        let mut rt = make_runtime(net, AdvancedRecorder::new(4, keys));
        deploy(&mut rt, n(0), &[n(1), n(2)], &["10.0.0.1"]).unwrap();
        // Two discovers from n1 (same class), one from n2 (new class).
        rt.inject(discover(n(1), 1)).unwrap();
        rt.run().unwrap();
        rt.inject(discover(n(1), 2)).unwrap();
        rt.run().unwrap();
        rt.inject(discover(n(2), 3)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 3);
        let rec = rt.recorder();
        assert_eq!(rec.hmap_misses(), 0);
        // r2 fires at the server for classes {n1, n2} -> 2 rows.
        assert_eq!(rec.row_counts(n(0)).1, 2);
    }
}
