//! Recursive DNS resolution (Figure 19, Section 6.2) deployment helpers.
//!
//! Nameservers form a tree; each node owns a domain (`d<k>.<parent's
//! domain>`, the root owning the empty zone). Parents hold `nameServer`
//! delegation rows for their children, URL owners hold `addressRecord`
//! rows, and hosts hold a `rootServer` row pointing at the root. The
//! `f_isSubDomain` predicate checks label-boundary domain suffixes.

use dpc_common::{Error, NodeId, Result, Tuple, Value};
use dpc_engine::{NoopRecorder, ProvRecorder, Runtime, RuntimeBuilder};
use dpc_ndlog::programs;
use dpc_netsim::topo::Tree;

/// Build a `url(@host, url, rqid)` input event.
pub fn url_event(host: NodeId, url: impl Into<String>, rqid: i64) -> Tuple {
    Tuple::new(
        "url",
        vec![Value::Addr(host), Value::Str(url.into()), Value::Int(rqid)],
    )
}

/// The domain owned by `node` in `tree`: label path to the root, e.g.
/// `"d7.d2"`; the root owns `""`.
pub fn domain_of(tree: &Tree, node: NodeId) -> String {
    let mut labels = Vec::new();
    let mut cur = node;
    while let Some(p) = tree.parent[cur.index()] {
        labels.push(format!("d{}", cur.0));
        cur = p;
    }
    labels.join(".")
}

/// The canonical URL hosted by `node`: `www.<domain>` (or `www` at the
/// root).
pub fn url_for(tree: &Tree, node: NodeId) -> String {
    let d = domain_of(tree, node);
    if d.is_empty() {
        "www".to_string()
    } else {
        format!("www.{d}")
    }
}

/// `f_isSubDomain(DM, URL)`: is `URL` within the zone `DM`? True when the
/// URL equals the domain or ends with `".<domain>"` (label boundary).
pub fn is_sub_domain(dm: &str, url: &str) -> bool {
    !dm.is_empty() && (url == dm || url.ends_with(&format!(".{dm}")))
}

/// A deployed DNS setup.
#[derive(Debug, Clone)]
pub struct DnsDeployment {
    /// The root nameserver.
    pub root: NodeId,
    /// Hosts that can issue `url` events.
    pub clients: Vec<NodeId>,
    /// `(url, owning nameserver, ip)` for each deployable URL.
    pub urls: Vec<(String, NodeId, String)>,
}

/// Start a DNS runtime builder over the tree's network, with
/// `f_isSubDomain` pre-registered — chain `.recorder(..)`, `.config(..)`,
/// `.interest(..)` before `.build()`.
pub fn runtime_builder(tree: &Tree) -> RuntimeBuilder<NoopRecorder> {
    Runtime::builder(programs::dns_resolution(), tree.net.clone()).register_fn(
        "f_isSubDomain",
        |args| {
            let (Some(dm), Some(url)) = (args[0].as_str(), args[1].as_str()) else {
                return Err(Error::Eval(
                    "f_isSubDomain expects (domain, url) strings".into(),
                ));
            };
            Ok(Value::Bool(is_sub_domain(dm, url)))
        },
    )
}

/// Create a DNS runtime over the tree's network.
pub fn make_runtime<R: ProvRecorder>(tree: &Tree, recorder: R) -> Runtime<R> {
    runtime_builder(tree)
        .recorder(recorder)
        .build()
        .expect("the DNS program needs no interest validation")
}

/// Deploy the nameserver hierarchy: delegations at every parent, one
/// `addressRecord` per URL at its owning server, `rootServer` rows at the
/// clients. URLs are hosted at the deepest non-root servers (deep chains
/// are where resolution work — and therefore provenance — accumulates),
/// cycling when `num_urls` exceeds the server count: real nameservers
/// hold many records, and the extra URLs get distinct `www<k>.` hosts in
/// the same zone.
pub fn deploy<R: ProvRecorder>(
    rt: &mut Runtime<R>,
    tree: &Tree,
    num_urls: usize,
    clients: &[NodeId],
) -> Result<DnsDeployment> {
    let n = tree.net.node_count();
    if n < 2 && num_urls > 0 {
        return Err(Error::Schema(format!(
            "cannot host {num_urls} URLs on {n} servers"
        )));
    }

    // Delegations.
    for i in 0..n {
        let node = NodeId(i as u32);
        for child in tree.children(node) {
            rt.install(Tuple::new(
                "nameServer",
                vec![
                    Value::Addr(node),
                    Value::Str(domain_of(tree, child)),
                    Value::Addr(child),
                ],
            ))?;
        }
    }

    // URL owners: deepest non-root nodes first, wrapping around (with
    // fresh host labels) when there are more URLs than servers.
    let mut by_depth: Vec<NodeId> = (1..n).map(|i| NodeId(i as u32)).collect();
    by_depth.sort_by_key(|&nd| std::cmp::Reverse(tree.depth(nd)));
    let hosts = by_depth.len();
    let mut urls = Vec::with_capacity(num_urls);
    for k in 0..num_urls {
        let server = by_depth[k % hosts];
        let url = if k < hosts {
            url_for(tree, server)
        } else {
            format!("www{}.{}", k / hosts, domain_of(tree, server))
        };
        let ip = format!("10.{}.{}.{}", k / 256, k % 256, server.0 % 256);
        rt.install(Tuple::new(
            "addressRecord",
            vec![
                Value::Addr(server),
                Value::Str(url.clone()),
                Value::Str(ip.clone()),
            ],
        ))?;
        urls.push((url, server, ip));
    }

    // Clients know the root.
    for &c in clients {
        rt.install(Tuple::new(
            "rootServer",
            vec![Value::Addr(c), Value::Addr(tree.root)],
        ))?;
    }

    Ok(DnsDeployment {
        root: tree.root,
        clients: clients.to_vec(),
        urls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_common::SeededRng;
    use dpc_engine::NoopRecorder;
    use dpc_netsim::topo::{tree, TreeParams};

    fn small_tree() -> Tree {
        let mut rng = SeededRng::seed_from_u64(5);
        tree(
            &mut rng,
            &TreeParams {
                nodes: 20,
                chain_bias: 0.6,
                ..TreeParams::default()
            },
        )
    }

    #[test]
    fn domains_follow_the_tree() {
        let t = small_tree();
        assert_eq!(domain_of(&t, t.root), "");
        for i in 1..20u32 {
            let d = domain_of(&t, NodeId(i));
            assert!(d.starts_with(&format!("d{i}")), "{d}");
            let parent = t.parent[i as usize].unwrap();
            let pd = domain_of(&t, parent);
            if pd.is_empty() {
                assert_eq!(d, format!("d{i}"));
            } else {
                assert_eq!(d, format!("d{i}.{pd}"));
            }
        }
    }

    #[test]
    fn is_sub_domain_respects_label_boundaries() {
        assert!(is_sub_domain("d1", "www.d1"));
        assert!(is_sub_domain("d1", "www.d3.d1"));
        assert!(is_sub_domain("d3.d1", "www.d3.d1"));
        assert!(!is_sub_domain("d1", "www.d11")); // not a label boundary
        assert!(!is_sub_domain("d3.d1", "www.d1"));
        assert!(!is_sub_domain("", "www.d1")); // the root zone never matches
        assert!(is_sub_domain("d1", "d1")); // the zone apex itself
    }

    #[test]
    fn every_url_resolves() {
        let t = small_tree();
        let mut rt = make_runtime(&t, NoopRecorder);
        let dep = deploy(&mut rt, &t, 8, &[t.root]).unwrap();
        for (i, (url, _server, ip)) in dep.urls.iter().enumerate() {
            rt.inject(url_event(t.root, url.clone(), i as i64)).unwrap();
            rt.run().unwrap();
            let out = rt.outputs().last().unwrap();
            assert_eq!(out.tuple.rel(), "reply");
            assert_eq!(out.tuple.args()[1], Value::Str(url.clone()), "url {url}");
            assert_eq!(out.tuple.args()[2], Value::Str(ip.clone()));
        }
        assert_eq!(rt.outputs().len(), 8);
    }

    #[test]
    fn resolution_walks_the_delegation_chain() {
        let t = small_tree();
        let mut rt = make_runtime(&t, NoopRecorder);
        let dep = deploy(&mut rt, &t, 4, &[t.root]).unwrap();
        // The deepest URL owner: resolution takes depth+? rule firings:
        // r1 once, r2 per delegation hop, r3 once, r4 once.
        let (url, server, _) = dep.urls[0].clone();
        let depth = t.depth(server);
        rt.inject(url_event(t.root, url, 0)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        assert_eq!(rt.rules_fired(), 1 + depth as u64 + 1 + 1);
    }

    #[test]
    fn unknown_url_produces_no_reply() {
        let t = small_tree();
        let mut rt = make_runtime(&t, NoopRecorder);
        deploy(&mut rt, &t, 4, &[t.root]).unwrap();
        rt.inject(url_event(t.root, "www.nonexistent", 9)).unwrap();
        rt.run().unwrap();
        assert!(rt.outputs().is_empty());
    }

    #[test]
    fn more_urls_than_servers_wrap_around() {
        let t = small_tree();
        let mut rt = make_runtime(&t, NoopRecorder);
        let dep = deploy(&mut rt, &t, 50, &[t.root]).unwrap();
        assert_eq!(dep.urls.len(), 50);
        // All URLs are distinct, and every one resolves.
        let distinct: std::collections::HashSet<_> =
            dep.urls.iter().map(|(u, _, _)| u.clone()).collect();
        assert_eq!(distinct.len(), 50);
        let (wrapped, _, _) = dep.urls[dep.urls.len() - 1].clone();
        rt.inject(url_event(t.root, wrapped, 1)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
    }

    #[test]
    fn client_can_be_a_leaf() {
        let t = small_tree();
        let mut rt = make_runtime(&t, NoopRecorder);
        let client = NodeId(19);
        let dep = deploy(&mut rt, &t, 4, &[client]).unwrap();
        let (url, _, _) = dep.urls[0].clone();
        rt.inject(url_event(client, url, 1)).unwrap();
        rt.run().unwrap();
        assert_eq!(rt.outputs().len(), 1);
        assert_eq!(rt.outputs()[0].node, client); // reply returns to client
    }
}
