//! Micro-benchmarks for the evaluation hot path introduced by the
//! compiled-plan work: naive AST interpretation vs [`RulePlan`]
//! evaluation across table sizes, secondary-index probes vs full scans,
//! `Table` insert/remove, and the cached `Tuple::vid` digest.
//!
//! Runs on the in-tree `dpc_bench::microbench` harness (offline builds
//! carry no criterion); enable with `--features microbench`.

use dpc_bench::microbench::Bench;
use dpc_common::{NodeId, Tuple, Value};
use dpc_engine::plan::{EvalStats, RulePlan};
use dpc_engine::{eval_rule, Database, FnRegistry, Table};
use dpc_ndlog::programs;
use std::hint::black_box;

fn route(loc: u32, dst: u32, next: u32) -> Tuple {
    Tuple::new(
        "route",
        vec![
            Value::Addr(NodeId(loc)),
            Value::Addr(NodeId(dst)),
            Value::Addr(NodeId(next)),
        ],
    )
}

fn packet(loc: u32, dst: u32) -> Tuple {
    Tuple::new(
        "packet",
        vec![
            Value::Addr(NodeId(loc)),
            Value::Addr(NodeId(0)),
            Value::Addr(NodeId(dst)),
            Value::str("payload"),
        ],
    )
}

/// A forwarding database with `n` route rows at node 1, destinations
/// `0..n` — one matching row per packet, `n - 1` non-matching.
fn route_db(n: u32) -> Database {
    let mut db = Database::new();
    for d in 0..n {
        db.insert(route(1, d, (d + 1) % n.max(1)));
    }
    db
}

fn main() {
    let mut b = Bench::from_args();

    let delp = programs::packet_forwarding();
    let r1 = &delp.rules()[0];
    let plan = RulePlan::compile(r1).expect("r1 compiles");
    let fns = FnRegistry::new();
    let ev = packet(1, 7);

    // The tentpole comparison: one rule evaluation against growing slow
    // state. The naive path scans every route row; the compiled path
    // probes the (loc, dst) index.
    for n in [16u32, 256, 4096] {
        let db = route_db(n);
        b.bench(&format!("eval_rule_naive_{n}"), || {
            eval_rule(black_box(r1), black_box(&ev), &db, &fns).unwrap()
        });
        let mut db = route_db(n);
        // Warm the index once so the steady state is measured.
        let mut stats = EvalStats::default();
        plan.eval(&ev, &mut db, &fns, &mut stats).unwrap();
        b.bench(&format!("eval_rule_compiled_{n}"), || {
            let mut stats = EvalStats::default();
            plan.eval(black_box(&ev), &mut db, &fns, &mut stats)
                .unwrap()
        });
    }

    // Index probe vs the scan it replaces, on the bare table.
    let mut table = Table::new();
    for d in 0..4096u32 {
        table.insert(route(1, d, d + 1));
    }
    table.ensure_index(&[0, 1]);
    let mut key = Vec::new();
    Value::Addr(NodeId(1)).encode_into(&mut key);
    Value::Addr(NodeId(7)).encode_into(&mut key);
    b.bench("table_probe_indexed_4096", || {
        table
            .probe(black_box(&[0, 1]), black_box(&key))
            .map(|it| it.count())
    });
    let target = route(1, 7, 8);
    b.bench("table_scan_4096", || {
        table.iter().filter(|t| **t == target).count()
    });

    // Insert + tombstone remove round-trip (index maintenance included).
    let mut churn = Table::new();
    for d in 0..1024u32 {
        churn.insert(route(2, d, d + 1));
    }
    churn.ensure_index(&[0, 1]);
    let mut i = 0u32;
    b.bench("table_insert_remove_1024", || {
        let t = route(3, i % 64, i);
        i = i.wrapping_add(1);
        churn.insert(t.clone());
        churn.remove(&t)
    });

    // Cached digest: the first vid() hashes, clones share the cache.
    let big = Tuple::new(
        "packet",
        vec![
            Value::Addr(NodeId(1)),
            Value::Addr(NodeId(0)),
            Value::Addr(NodeId(3)),
            Value::str("x".repeat(500)),
        ],
    );
    big.vid();
    b.bench("tuple_vid_cached", || black_box(&big).vid());
    b.bench("tuple_vid_fresh", || {
        let t = Tuple::new(
            "packet",
            vec![
                Value::Addr(NodeId(1)),
                Value::Addr(NodeId(0)),
                Value::Addr(NodeId(3)),
                Value::str("x".repeat(500)),
            ],
        );
        t.vid()
    });
    b.bench("tuple_clone_shares_cache", || black_box(&big).clone().vid());

    b.finish();
}
