//! Criterion micro-benchmarks: wall-clock cost of executing provenance
//! queries (table walks plus reconstruction), per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_apps::forwarding;
use dpc_common::NodeId;
use dpc_core::{
    query_advanced, query_basic, query_exspan, AdvancedRecorder, BasicRecorder, ExspanRecorder,
    QueryCtx,
};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};
use std::hint::black_box;

const LINE: usize = 10;

fn setup<R: ProvRecorder>(rec: R) -> Runtime<R> {
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    let dst = NodeId(LINE as u32 - 1);
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), dst)]).expect("connected");
    for i in 0..20 {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i),
        ))
        .expect("valid");
    }
    rt.run().expect("run");
    rt
}

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_9hop_chain");

    let rt = setup(ExspanRecorder::new(LINE));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    g.bench_function("exspan", |b| {
        b.iter(|| query_exspan(&ctx, rt.recorder(), black_box(&out.tuple)).unwrap())
    });

    let rt = setup(BasicRecorder::new(LINE));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    g.bench_function("basic", |b| {
        b.iter(|| query_basic(&ctx, rt.recorder(), black_box(&out.tuple)).unwrap())
    });

    let keys = equivalence_keys(&programs::packet_forwarding());
    let rt = setup(AdvancedRecorder::new(LINE, keys.clone()));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    g.bench_function("advanced", |b| {
        b.iter(|| query_advanced(&ctx, rt.recorder(), black_box(&out.tuple), &out.evid).unwrap())
    });

    let rt = setup(AdvancedRecorder::with_inter_class(LINE, keys));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    g.bench_function("advanced_interclass", |b| {
        b.iter(|| query_advanced(&ctx, rt.recorder(), black_box(&out.tuple), &out.evid).unwrap())
    });
    g.finish();
}

/// Ablation: Basic's query-time re-derivation cost as the chain grows —
/// the trade Section 4 makes to drop intermediate tuples from storage.
fn bench_reconstruction_by_chain_length(c: &mut Criterion) {
    use dpc_core::reconstruct::{reconstruct, ChainLevel};
    let delp = programs::packet_forwarding();
    let fns = dpc_engine::FnRegistry::new();
    let mut g = c.benchmark_group("reconstruct_chain");
    for hops in [2usize, 4, 8, 16] {
        // A chain of `hops` r1 levels plus the final r2.
        let mut chain = vec![ChainLevel {
            rule: "r2".into(),
            slow: vec![],
        }];
        for i in (0..hops).rev() {
            chain.push(ChainLevel {
                rule: "r1".into(),
                slow: vec![forwarding::route(
                    NodeId(i as u32),
                    NodeId(hops as u32),
                    NodeId(i as u32 + 1),
                )],
            });
        }
        let event = forwarding::packet(
            NodeId(0),
            NodeId(0),
            NodeId(hops as u32),
            forwarding::payload(0),
        );
        g.bench_function(format!("{hops}_hops"), |b| {
            b.iter(|| reconstruct(&delp, &fns, black_box(&chain), black_box(&event)).unwrap())
        });
    }
    g.finish();
}

/// Short measurement windows: these benches gate CI-style runs, not
/// microsecond-precision regressions.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_queries, bench_reconstruction_by_chain_length
}
criterion_main!(benches);
