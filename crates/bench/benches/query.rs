//! Micro-benchmarks: wall-clock cost of executing provenance queries
//! (table walks plus reconstruction), per scheme.
//!
//! Runs on the in-tree `dpc_bench::microbench` harness; enable with
//! `--features microbench`.

use dpc_apps::forwarding;
use dpc_bench::microbench::Bench;
use dpc_common::NodeId;
use dpc_core::{
    query_advanced, query_basic, query_exspan, AdvancedRecorder, BasicRecorder, ExspanRecorder,
    QueryCtx,
};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};
use std::hint::black_box;

const LINE: usize = 10;

fn setup<R: ProvRecorder>(rec: R) -> Runtime<R> {
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    let dst = NodeId(LINE as u32 - 1);
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), dst)]).expect("connected");
    for i in 0..20 {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i),
        ))
        .expect("valid");
    }
    rt.run().expect("run");
    rt
}

fn main() {
    let mut b = Bench::from_args();

    let rt = setup(ExspanRecorder::new(LINE));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    b.bench("query_9hop_chain/exspan", || {
        query_exspan(&ctx, rt.recorder(), black_box(&out.tuple)).unwrap()
    });

    let rt = setup(BasicRecorder::new(LINE));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    b.bench("query_9hop_chain/basic", || {
        query_basic(&ctx, rt.recorder(), black_box(&out.tuple)).unwrap()
    });

    let keys = equivalence_keys(&programs::packet_forwarding());
    let rt = setup(AdvancedRecorder::new(LINE, keys.clone()));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    b.bench("query_9hop_chain/advanced", || {
        query_advanced(&ctx, rt.recorder(), black_box(&out.tuple), &out.evid).unwrap()
    });

    let rt = setup(AdvancedRecorder::with_inter_class(LINE, keys));
    let out = rt.outputs()[7].clone();
    let ctx = QueryCtx::from_runtime(&rt);
    b.bench("query_9hop_chain/advanced_interclass", || {
        query_advanced(&ctx, rt.recorder(), black_box(&out.tuple), &out.evid).unwrap()
    });

    // Ablation: Basic's query-time re-derivation cost as the chain grows —
    // the trade Section 4 makes to drop intermediate tuples from storage.
    use dpc_core::reconstruct::{reconstruct, ChainLevel};
    let delp = programs::packet_forwarding();
    let fns = dpc_engine::FnRegistry::new();
    for hops in [2usize, 4, 8, 16] {
        // A chain of `hops` r1 levels plus the final r2.
        let mut chain = vec![ChainLevel {
            rule: "r2".into(),
            slow: vec![],
        }];
        for i in (0..hops).rev() {
            chain.push(ChainLevel {
                rule: "r1".into(),
                slow: vec![forwarding::route(
                    NodeId(i as u32),
                    NodeId(hops as u32),
                    NodeId(i as u32 + 1),
                )],
            });
        }
        let event = forwarding::packet(
            NodeId(0),
            NodeId(0),
            NodeId(hops as u32),
            forwarding::payload(0),
        );
        b.bench(&format!("reconstruct_chain/{hops}_hops"), || {
            reconstruct(&delp, &fns, black_box(&chain), black_box(&event)).unwrap()
        });
    }

    b.finish();
}
