//! Criterion micro-benchmarks: per-event provenance maintenance overhead
//! of the recorders (the runtime cost the paper argues is negligible).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpc_apps::forwarding;
use dpc_common::NodeId;
use dpc_core::{AdvancedRecorder, BasicRecorder, ExspanRecorder, GroundTruthRecorder};
use dpc_engine::{NoopRecorder, ProvRecorder};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};

const PACKETS: usize = 100;
const LINE: usize = 8;

fn run_workload<R: ProvRecorder>(rec: R) -> usize {
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    let dst = NodeId(LINE as u32 - 1);
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), dst)]).expect("line is connected");
    for i in 0..PACKETS {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i as u64),
        ))
        .expect("valid packet");
    }
    rt.run().expect("run");
    rt.outputs().len()
}

fn bench_maintenance(c: &mut Criterion) {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut g = c.benchmark_group("maintenance_per_100_packets");
    g.bench_function("none", |b| {
        b.iter_batched(|| NoopRecorder, run_workload, BatchSize::SmallInput)
    });
    g.bench_function("exspan", |b| {
        b.iter_batched(
            || ExspanRecorder::new(LINE),
            run_workload,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("basic", |b| {
        b.iter_batched(
            || BasicRecorder::new(LINE),
            run_workload,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("advanced", |b| {
        b.iter_batched(
            || AdvancedRecorder::new(LINE, keys.clone()),
            run_workload,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("advanced_interclass", |b| {
        b.iter_batched(
            || AdvancedRecorder::with_inter_class(LINE, keys.clone()),
            run_workload,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ground_truth", |b| {
        b.iter_batched(
            GroundTruthRecorder::new,
            run_workload,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Short measurement windows: these benches gate CI-style runs, not
/// microsecond-precision regressions.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_maintenance
}
criterion_main!(benches);
