//! Micro-benchmarks: per-event provenance maintenance overhead of the
//! recorders (the runtime cost the paper argues is negligible).
//!
//! Runs on the in-tree `dpc_bench::microbench` harness; enable with
//! `--features microbench`.

use dpc_apps::forwarding;
use dpc_bench::microbench::Bench;
use dpc_common::NodeId;
use dpc_core::{AdvancedRecorder, BasicRecorder, ExspanRecorder, GroundTruthRecorder};
use dpc_engine::{NoopRecorder, ProvRecorder};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link};

const PACKETS: usize = 100;
const LINE: usize = 8;

fn run_workload<R: ProvRecorder>(rec: R) -> usize {
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, rec);
    let dst = NodeId(LINE as u32 - 1);
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), dst)]).expect("line is connected");
    for i in 0..PACKETS {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i as u64),
        ))
        .expect("valid packet");
    }
    rt.run().expect("run");
    rt.outputs().len()
}

fn main() {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut b = Bench::from_args();
    b.bench("maintenance_per_100_packets/none", || {
        run_workload(NoopRecorder)
    });
    b.bench("maintenance_per_100_packets/exspan", || {
        run_workload(ExspanRecorder::new(LINE))
    });
    b.bench("maintenance_per_100_packets/basic", || {
        run_workload(BasicRecorder::new(LINE))
    });
    b.bench("maintenance_per_100_packets/advanced", || {
        run_workload(AdvancedRecorder::new(LINE, keys.clone()))
    });
    b.bench("maintenance_per_100_packets/advanced_interclass", || {
        run_workload(AdvancedRecorder::with_inter_class(LINE, keys.clone()))
    });
    b.bench("maintenance_per_100_packets/ground_truth", || {
        run_workload(GroundTruthRecorder::new())
    });
    b.finish();
}
