//! Criterion micro-benchmarks: compile-time static analysis (parsing,
//! DELP validation, dependency-graph construction, `GetEquiKeys`) and the
//! per-event equivalence-key hashing of stage 1 — the O(1) check that
//! replaces node-by-node tree comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_common::{NodeId, Tuple, Value};
use dpc_ndlog::{equivalence_keys, parse_program, programs, Delp, DepGraph};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("parse_forwarding_program", |b| {
        b.iter(|| parse_program(black_box(programs::PACKET_FORWARDING)).unwrap())
    });
    c.bench_function("parse_dns_program", |b| {
        b.iter(|| parse_program(black_box(programs::DNS_RESOLUTION)).unwrap())
    });
    let prog = parse_program(programs::DNS_RESOLUTION).unwrap();
    c.bench_function("validate_delp_dns", |b| {
        b.iter(|| Delp::new(black_box(prog.clone())).unwrap())
    });
    let delp = programs::dns_resolution();
    c.bench_function("dependency_graph_dns", |b| {
        b.iter(|| DepGraph::build(black_box(&delp)))
    });
    c.bench_function("equivalence_keys_dns", |b| {
        b.iter(|| equivalence_keys(black_box(&delp)))
    });
}

fn bench_key_check(c: &mut Criterion) {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let pkt = Tuple::new(
        "packet",
        vec![
            Value::Addr(NodeId(1)),
            Value::Addr(NodeId(1)),
            Value::Addr(NodeId(3)),
            Value::str("x".repeat(500)),
        ],
    );
    // Stage 1's O(1) key hash...
    c.bench_function("equiv_key_hash", |b| {
        b.iter(|| keys.hash(black_box(&pkt)).unwrap())
    });
    // ...vs the full-content hash it avoids re-deriving trees for.
    c.bench_function("full_tuple_vid", |b| b.iter(|| black_box(&pkt).vid()));
    c.bench_function("sha1_1k", |b| {
        let data = vec![0xa5u8; 1024];
        b.iter(|| dpc_common::sha1(black_box(&data)))
    });
}

/// Short measurement windows: these benches gate CI-style runs, not
/// microsecond-precision regressions.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = short();
    targets = bench_frontend, bench_key_check
}
criterion_main!(benches);
