//! Micro-benchmarks: compile-time static analysis (parsing, DELP
//! validation, dependency-graph construction, `GetEquiKeys`) and the
//! per-event equivalence-key hashing of stage 1 — the O(1) check that
//! replaces node-by-node tree comparison.
//!
//! Runs on the in-tree `dpc_bench::microbench` harness (offline builds
//! carry no criterion); enable with `--features microbench`.

use dpc_bench::microbench::Bench;
use dpc_common::{NodeId, Tuple, Value};
use dpc_ndlog::{equivalence_keys, parse_program, programs, Delp, DepGraph};
use std::hint::black_box;

fn main() {
    let mut b = Bench::from_args();

    b.bench("parse_forwarding_program", || {
        parse_program(black_box(programs::PACKET_FORWARDING)).unwrap()
    });
    b.bench("parse_dns_program", || {
        parse_program(black_box(programs::DNS_RESOLUTION)).unwrap()
    });
    let prog = parse_program(programs::DNS_RESOLUTION).unwrap();
    b.bench("validate_delp_dns", || {
        Delp::new(black_box(prog.clone())).unwrap()
    });
    let delp = programs::dns_resolution();
    b.bench("dependency_graph_dns", || DepGraph::build(black_box(&delp)));
    b.bench("equivalence_keys_dns", || {
        equivalence_keys(black_box(&delp))
    });

    let keys = equivalence_keys(&programs::packet_forwarding());
    let pkt = Tuple::new(
        "packet",
        vec![
            Value::Addr(NodeId(1)),
            Value::Addr(NodeId(1)),
            Value::Addr(NodeId(3)),
            Value::str("x".repeat(500)),
        ],
    );
    // Stage 1's O(1) key hash...
    b.bench("equiv_key_hash", || keys.hash(black_box(&pkt)).unwrap());
    // ...vs the full-content hash it avoids re-deriving trees for.
    b.bench("full_tuple_vid", || black_box(&pkt).vid());
    let data = vec![0xa5u8; 1024];
    b.bench("sha1_1k", || dpc_common::sha1(black_box(&data)));

    b.finish();
}
