//! Ablation micro-benchmark: native recorder hooks vs the self-hosted
//! rewrite (Section 6's compile-time instrumentation path). The rewrite
//! pays for hash recomputation in the language (`f_vid`/`f_arid` calls
//! per rule firing) plus the extra provenance-rule evaluations.
//!
//! Runs on the in-tree `dpc_bench::microbench` harness; enable with
//! `--features microbench`.

use dpc_apps::forwarding;
use dpc_bench::microbench::Bench;
use dpc_common::NodeId;
use dpc_core::{
    extend_input_event_advanced, register_advanced_fns, register_provenance_fns, AdvancedRecorder,
};
use dpc_engine::{NoopRecorder, Runtime};
use dpc_ndlog::rewrite::rewrite_advanced;
use dpc_ndlog::{equivalence_keys, programs, Delp};
use dpc_netsim::{topo, Link};

const LINE: usize = 6;
const PACKETS: usize = 50;

fn run_native() -> usize {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = forwarding::make_runtime(net, AdvancedRecorder::new(LINE, keys));
    let dst = NodeId(LINE as u32 - 1);
    forwarding::install_routes_for_pairs(&mut rt, &[(NodeId(0), dst)]).expect("connected");
    for i in 0..PACKETS {
        rt.inject(forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i as u64),
        ))
        .expect("inject");
    }
    rt.run().expect("run");
    rt.outputs().len()
}

fn run_self_hosted() -> usize {
    let delp = programs::packet_forwarding();
    let keys = equivalence_keys(&delp);
    let rewritten = Delp::new_relaxed(rewrite_advanced(&delp, &keys)).expect("validates");
    let net = topo::line(LINE, Link::STUB_STUB);
    let mut rt = Runtime::new(rewritten, net, NoopRecorder);
    register_provenance_fns(&mut rt);
    register_advanced_fns(&mut rt);
    let dst = NodeId(LINE as u32 - 1);
    for i in 0..LINE as u32 - 1 {
        rt.install(forwarding::route(NodeId(i), dst, NodeId(i + 1)))
            .expect("install");
    }
    for i in 0..PACKETS {
        rt.inject(extend_input_event_advanced(&forwarding::packet(
            NodeId(0),
            NodeId(0),
            dst,
            forwarding::payload(i as u64),
        )))
        .expect("inject");
    }
    rt.run().expect("run");
    rt.outputs()
        .iter()
        .filter(|o| o.tuple.rel() == "recv")
        .count()
}

fn main() {
    let mut b = Bench::from_args();
    b.bench(
        "advanced_instrumentation_per_50_packets/native_recorder_hooks",
        run_native,
    );
    b.bench(
        "advanced_instrumentation_per_50_packets/self_hosted_rewrite",
        run_self_hosted,
    );
    b.finish();
}
