//! The causal-tracing harness behind `dpc-trace`: run the forwarding
//! workload with span tracing on, execute simulated provenance queries
//! on a shared trace timeline, then attribute latency.
//!
//! Maintenance executions and queries share one telemetry registry, so
//! the exported Chrome trace shows both phases on a single timeline:
//! the queries start where the maintenance run ended, each offset by the
//! previous query's latency so they never overlay.

use dpc_core::{
    simulate_query_advanced, AdvancedRecorder, QueryCostModel, QueryTrace, TupleResolver,
};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_telemetry::json::Json;
use dpc_telemetry::{
    critical_path, duration_histograms, spans_by_trace, AttrValue, Breakdown, SpanRecord,
    TelemetryHandle, TraceId,
};

use crate::fwdrun::{prepare, sample_outputs};
use crate::FwdConfig;
use dpc_common::SeededRng;

/// One traced query's latency attribution.
#[derive(Debug, Clone)]
pub struct QuerySummary {
    /// The query's trace id.
    pub trace: TraceId,
    /// Root span duration (= simulated query latency), nanoseconds.
    pub latency_ns: u64,
    /// Critical-path attribution; components sum to `latency_ns`.
    pub breakdown: Breakdown,
    /// Chain hops walked.
    pub hops: u64,
    /// Bytes shipped by the query protocol.
    pub bytes: u64,
}

/// Output of a traced run: the recorded spans plus per-query summaries.
pub struct TraceRunOutput {
    /// Every span recorded (maintenance executions and queries).
    pub spans: Vec<SpanRecord>,
    /// Per-query critical-path summaries, slowest first.
    pub queries: Vec<QuerySummary>,
    /// The run's telemetry registry.
    pub telemetry: TelemetryHandle,
}

/// Run the forwarding workload under the Advanced scheme with execution
/// tracing sampled 1-in-`cfg.trace_sample`, then run `queries` simulated
/// provenance queries (all traced) on the same timeline.
pub fn run_traced_queries(cfg: &FwdConfig, queries: usize) -> TraceRunOutput {
    let mut cfg = cfg.clone();
    if cfg.trace_sample == 0 {
        cfg.trace_sample = 1;
    }
    let keys = equivalence_keys(&programs::packet_forwarding());
    let (mut rt, _) = prepare(&cfg, move |n| AdvancedRecorder::new(n, keys));
    rt.run().expect("drain");
    let telemetry = rt.telemetry().cloned().expect("prepare attaches telemetry");

    // Queries are the point of this harness: trace every one of them,
    // whatever the maintenance sampling was.
    telemetry.set_span_sampling(1);
    let mut rng = SeededRng::seed_from_u64(cfg.seed ^ 0x7ace);
    let outs = sample_outputs(&rt, queries, &mut rng);
    let mut cursor = rt.now();
    for (t, evid) in &outs {
        let qt = QueryTrace {
            telemetry: telemetry.clone(),
            start: cursor,
        };
        let res = simulate_query_advanced(
            rt.net(),
            rt.recorder(),
            &rt as &dyn TupleResolver,
            rt.delp(),
            rt.fns(),
            QueryCostModel::default(),
            t,
            evid,
            Some(&qt),
        )
        .expect("stored output is queryable");
        cursor += res.latency;
    }

    let spans = telemetry.spans();
    let queries = query_summaries(&spans);
    TraceRunOutput {
        spans,
        queries,
        telemetry,
    }
}

/// Extract per-query critical-path summaries from recorded spans,
/// slowest first. Only traces rooted at a `query` span count.
pub fn query_summaries(spans: &[SpanRecord]) -> Vec<QuerySummary> {
    let mut out = Vec::new();
    for (trace, tree) in spans_by_trace(spans) {
        let Some(root) = tree.iter().find(|s| s.parent.is_none()) else {
            continue;
        };
        if root.name != "query" {
            continue;
        }
        let Some(breakdown) = critical_path(&tree) else {
            continue;
        };
        let uint = |key: &str| match root.attr(key) {
            Some(AttrValue::UInt(v)) => *v,
            _ => 0,
        };
        out.push(QuerySummary {
            trace,
            latency_ns: root.duration_ns(),
            breakdown,
            hops: uint("hops"),
            bytes: uint("bytes"),
        });
    }
    out.sort_by(|a, b| b.latency_ns.cmp(&a.latency_ns).then(a.trace.cmp(&b.trace)));
    out
}

/// Aggregate attribution across queries: the sum of every query's
/// breakdown (components still sum to the summed root durations).
pub fn aggregate_breakdown(queries: &[QuerySummary]) -> Breakdown {
    let mut total = Breakdown::default();
    for q in queries {
        total.add(&q.breakdown);
    }
    total
}

fn breakdown_fields(b: &Breakdown) -> Vec<(&'static str, Json)> {
    let mut fields = Vec::new();
    for (name, ns) in b.components() {
        fields.push((name, Json::UInt(ns)));
    }
    fields.push(("total_ns", Json::UInt(b.total())));
    for (name, ns) in b.components() {
        let key: &'static str = match name {
            "network" => "network_pct",
            "join" => "join_pct",
            "equivalence" => "equivalence_pct",
            "storage" => "storage_pct",
            _ => "other_pct",
        };
        fields.push((key, Json::Float(b.pct(ns))));
    }
    fields
}

/// The compact JSON-lines trace summary folded into `--json` run
/// records: aggregate critical-path attribution plus the top-`k` slowest
/// queries.
pub fn trace_summary_json(figure: &str, scheme: &str, queries: &[QuerySummary], k: usize) -> Json {
    let agg = aggregate_breakdown(queries);
    let mut fields = vec![
        ("record", Json::Str("trace_summary".into())),
        ("figure", Json::Str(figure.into())),
        ("scheme", Json::Str(scheme.into())),
        ("queries", Json::UInt(queries.len() as u64)),
    ];
    fields.extend(breakdown_fields(&agg));
    fields.push((
        "slowest",
        Json::Arr(
            queries
                .iter()
                .take(k)
                .map(|q| {
                    let mut f = vec![
                        ("trace", Json::Str(q.trace.to_string())),
                        ("latency_ns", Json::UInt(q.latency_ns)),
                        ("hops", Json::UInt(q.hops)),
                        ("bytes", Json::UInt(q.bytes)),
                    ];
                    f.extend(breakdown_fields(&q.breakdown));
                    Json::obj(f)
                })
                .collect(),
        ),
    ));
    Json::obj(fields)
}

/// Per-(name, rule/link/scheme) span-duration histograms as JSON-lines
/// records (`"record":"span_hist"`), longest mean first.
pub fn span_histograms_json(spans: &[SpanRecord]) -> Vec<Json> {
    let mut rows: Vec<_> = duration_histograms(spans).into_iter().collect();
    rows.sort_by(|a, b| b.1.mean().total_cmp(&a.1.mean()).then(a.0.cmp(&b.0)));
    rows.into_iter()
        .map(|(key, h)| {
            Json::obj([
                ("record", Json::Str("span_hist".into())),
                ("key", Json::Str(key)),
                ("count", Json::UInt(h.count)),
                ("mean_ns", Json::Float(h.mean())),
                ("min_ns", Json::UInt(h.min)),
                ("max_ns", Json::UInt(h.max)),
            ])
        })
        .collect()
}

/// Print the human-readable critical-path report: aggregate attribution,
/// then the top-`k` slowest queries.
pub fn print_trace_report(queries: &[QuerySummary], k: usize) {
    let agg = aggregate_breakdown(queries);
    println!("# critical path across {} queries", queries.len());
    println!("{:<14} {:>12} {:>8}", "component", "time (ms)", "share");
    for (name, ns) in agg.components() {
        println!(
            "{:<14} {:>12.3} {:>7.1}%",
            name,
            ns as f64 / 1e6,
            agg.pct(ns)
        );
    }
    println!(
        "{:<14} {:>12.3} {:>7.1}%",
        "total",
        agg.total() as f64 / 1e6,
        100.0
    );
    println!();
    println!("# top {} slowest queries", k.min(queries.len()));
    println!(
        "{:<8} {:>12} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "trace", "latency ms", "hops", "net%", "join%", "eq%", "store%", "other%"
    );
    for q in queries.iter().take(k) {
        let b = &q.breakdown;
        println!(
            "{:<8} {:>12.3} {:>6} {:>8.1} {:>8.1} {:>6.1} {:>6.1} {:>6.1}",
            q.trace.to_string(),
            q.latency_ns as f64 / 1e6,
            q.hops,
            b.pct(b.network),
            b.pct(b.join),
            b.pct(b.equivalence),
            b.pct(b.storage),
            b.pct(b.other),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_netsim::SimTime;

    fn tiny() -> FwdConfig {
        FwdConfig {
            pairs: 4,
            rate_per_pair: 2.0,
            duration: SimTime::from_secs(1),
            trace_sample: 4,
            ..FwdConfig::default()
        }
    }

    #[test]
    fn traced_run_attributes_every_query() {
        let out = run_traced_queries(&tiny(), 5);
        assert_eq!(out.queries.len(), 5);
        assert_eq!(out.telemetry.open_span_count(), 0);
        // Slowest-first ordering, exact attribution per query.
        assert!(out
            .queries
            .windows(2)
            .all(|w| w[0].latency_ns >= w[1].latency_ns));
        for q in &out.queries {
            assert_eq!(q.breakdown.total(), q.latency_ns);
            assert!(q.hops > 0);
            assert!(q.bytes > 0);
        }
        // Both phases appear: exec roots from maintenance, query roots.
        let roots: Vec<&str> = out
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.name)
            .collect();
        assert!(roots.contains(&"exec"));
        assert!(roots.contains(&"query"));
        // Every sampled trace is a well-formed tree.
        for tree in spans_by_trace(&out.spans).values() {
            dpc_telemetry::check_well_formed(tree).unwrap();
        }
    }

    #[test]
    fn summary_json_percentages_sum_to_100() {
        let out = run_traced_queries(&tiny(), 3);
        let j = trace_summary_json("trace", "Advanced", &out.queries, 2).to_string();
        assert!(j.contains("\"record\":\"trace_summary\""));
        assert!(j.contains("\"queries\":3"));
        assert!(j.contains("\"slowest\":["));
        let agg = aggregate_breakdown(&out.queries);
        let pct_sum: f64 = agg.components().iter().map(|&(_, ns)| agg.pct(ns)).sum();
        assert!((pct_sum - 100.0).abs() < 1e-6, "{pct_sum}");
    }

    #[test]
    fn chrome_export_of_traced_run_is_valid_json() {
        let out = run_traced_queries(&tiny(), 2);
        let doc = dpc_telemetry::chrome_trace(&out.spans).to_string();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"query\""));
    }

    #[test]
    fn span_histograms_cover_rules_and_links() {
        let out = run_traced_queries(&tiny(), 2);
        let rows = span_histograms_json(&out.spans);
        let keys: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        let joined = keys.join("\n");
        assert!(joined.contains("engine.rule[rule="), "{joined}");
        assert!(joined.contains("net.hop[link="), "{joined}");
        assert!(joined.contains("query[scheme=advanced]"), "{joined}");
    }

    #[test]
    fn print_report_does_not_panic() {
        let out = run_traced_queries(&tiny(), 2);
        print_trace_report(&out.queries, 5);
    }
}
