//! The packet-forwarding experiment runner (Figures 8-12).

use dpc_common::NodeId;
use dpc_common::{Rng, SeededRng};
use dpc_core::{
    query_advanced, query_basic, query_exspan, AdvancedRecorder, BasicRecorder, ExspanRecorder,
    QueryCtx,
};
use dpc_engine::{ProvRecorder, Runtime};
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, SimTime};
use dpc_telemetry::Telemetry;
use dpc_workload::random_pairs;

use dpc_apps::forwarding;

use crate::{RunMeasurements, Scheme};

/// Configuration of a forwarding run.
#[derive(Debug, Clone)]
pub struct FwdConfig {
    /// Topology/workload RNG seed.
    pub seed: u64,
    /// Number of communicating `(src, dst)` pairs.
    pub pairs: usize,
    /// Packets per second per pair (ignored when `total_packets` is set).
    pub rate_per_pair: f64,
    /// Simulated duration of the injection phase.
    pub duration: SimTime,
    /// Packet payload size (the paper uses 500 characters).
    pub payload_len: usize,
    /// Storage snapshot interval (the paper samples every 10 s).
    pub snapshot_every: SimTime,
    /// If set, insert a routing-table entry at this interval (the
    /// Section 5.5 update workload; triggers `sig` broadcasts).
    pub route_update_every: Option<SimTime>,
    /// If set, send exactly this many packets, evenly spread over the
    /// pairs and the duration (Figure 10/11 style).
    pub total_packets: Option<usize>,
    /// Head-based span sampling: trace every `n`-th execution (0 = span
    /// tracing off, the default; 1 = trace everything).
    pub trace_sample: u64,
    /// Evaluate rules through compiled plans (the default). `false` runs
    /// the naive AST interpreter — the "before" baseline of
    /// `BENCH_pr3.json`.
    pub compiled_plans: bool,
    /// Transit-stub topology parameters (default: the paper's 100-node
    /// configuration). Larger topologies mean more destinations and thus
    /// bigger per-node `route` tables.
    pub topo: topo::TransitStubParams,
}

impl Default for FwdConfig {
    fn default() -> Self {
        FwdConfig {
            seed: 42,
            pairs: 20,
            rate_per_pair: 10.0,
            duration: SimTime::from_secs(10),
            payload_len: 500,
            snapshot_every: SimTime::from_secs(1),
            route_update_every: None,
            total_packets: None,
            trace_sample: 0,
            compiled_plans: true,
            topo: topo::TransitStubParams::default(),
        }
    }
}

impl FwdConfig {
    /// The paper's Figure 8/9 parameters: 100 pairs at 100 packets/second
    /// each for 100 seconds. Expect ExSPAN storage in the gigabytes.
    pub fn paper_scale(seed: u64) -> FwdConfig {
        FwdConfig {
            seed,
            pairs: 100,
            rate_per_pair: 100.0,
            duration: SimTime::from_secs(100),
            snapshot_every: SimTime::from_secs(10),
            ..FwdConfig::default()
        }
    }
}

/// Output of one forwarding run.
#[derive(Debug, Clone)]
pub struct FwdRunOutput {
    /// Storage/traffic measurements.
    pub m: RunMeasurements,
    /// Packets injected.
    pub injected: usize,
    /// Wall-clock seconds spent processing events (the drive phase —
    /// excludes topology generation, route installation and injection
    /// scheduling).
    pub processing_secs: f64,
}

fn payload_of(seq: u64, len: usize) -> String {
    let mut s = format!("pkt-{seq}-");
    while s.len() < len {
        s.push('x');
    }
    s.truncate(len.max(8));
    s
}

/// Run the forwarding workload under `scheme`. The scheme-to-recorder
/// mapping is [`Scheme::recorder`]; every scheme (including
/// [`Scheme::Noop`]) runs through the same generic driver.
pub fn run_forwarding(scheme: Scheme, cfg: &FwdConfig) -> FwdRunOutput {
    run_generic(cfg, |n| scheme.recorder(&programs::packet_forwarding(), n))
}

fn run_generic<R: ProvRecorder>(cfg: &FwdConfig, make: impl FnOnce(usize) -> R) -> FwdRunOutput {
    let (rt, injected) = prepare(cfg, make);
    let t0 = std::time::Instant::now();
    let (rt, m) = drive(rt, cfg);
    let processing_secs = t0.elapsed().as_secs_f64();
    drop(rt);
    FwdRunOutput {
        m,
        injected,
        processing_secs,
    }
}

/// Build the topology, install routes, inject the whole schedule.
pub(crate) fn prepare<R: ProvRecorder>(
    cfg: &FwdConfig,
    make: impl FnOnce(usize) -> R,
) -> (Runtime<R>, usize) {
    let mut rng = SeededRng::seed_from_u64(cfg.seed);
    let ts = topo::transit_stub(&mut rng, &cfg.topo);
    let n = ts.net.node_count();
    let mut rt = forwarding::make_runtime(ts.net, make(n));
    rt.set_compiled_plans(cfg.compiled_plans);
    let telemetry = Telemetry::handle();
    telemetry.set_snapshot_every_nanos(cfg.snapshot_every.as_nanos());
    telemetry.set_timeseries(
        cfg.snapshot_every.as_nanos(),
        dpc_telemetry::DEFAULT_SERIES_CAPACITY,
    );
    if cfg.trace_sample > 0 {
        telemetry.set_span_sampling(cfg.trace_sample);
    }
    rt.attach_telemetry(telemetry);
    let pairs = random_pairs(&mut rng, &ts.stub, cfg.pairs);
    forwarding::install_routes_for_pairs(&mut rt, &pairs).expect("transit-stub is connected");
    rt.clear_stats();

    // Injection schedule.
    let mut injected = 0usize;
    match cfg.total_packets {
        Some(total) => {
            let interval = SimTime::from_nanos(cfg.duration.as_nanos() / (total as u64).max(1));
            for i in 0..total {
                let (s, d) = pairs[i % pairs.len()];
                let at = SimTime::from_nanos(interval.as_nanos() * i as u64);
                rt.inject_at(
                    forwarding::packet(s, s, d, payload_of(i as u64, cfg.payload_len)),
                    at,
                )
                .expect("valid packet");
                injected += 1;
            }
        }
        None => {
            let per_pair = (cfg.duration.as_secs_f64() * cfg.rate_per_pair).floor() as usize;
            let interval = SimTime::from_secs_f64(1.0 / cfg.rate_per_pair);
            for (pi, &(s, d)) in pairs.iter().enumerate() {
                for k in 0..per_pair {
                    let at = SimTime::from_nanos(interval.as_nanos() * k as u64);
                    let seq = (pi * per_pair + k) as u64;
                    rt.inject_at(
                        forwarding::packet(s, s, d, payload_of(seq, cfg.payload_len)),
                        at,
                    )
                    .expect("valid packet");
                    injected += 1;
                }
            }
        }
    }

    // Optional slow-table update workload: periodically insert a fresh
    // route entry (toward an otherwise-unused destination id) at a random
    // stub node; each insert broadcasts `sig`.
    if let Some(every) = cfg.route_update_every {
        let mut t = every;
        let mut fake_dst = 10_000u32;
        while t < cfg.duration {
            let at_node = ts.stub[rng.random_range(0..ts.stub.len())];
            let neighbor = rt
                .net()
                .neighbors(at_node)
                .next()
                .map(|(m, _)| m)
                .expect("connected topology");
            rt.update_slow_at(forwarding::route(at_node, NodeId(fake_dst), neighbor), t)
                .expect("route is slow-changing");
            fake_dst += 1;
            t += every;
        }
    }

    (rt, injected)
}

/// Drive the run to completion. Storage-over-time comes from the
/// time-series sampler (enabled on the snapshot cadence in [`prepare`]),
/// which samples inside the event loop at deterministic virtual
/// timestamps — no hand-rolled stepping loop.
fn drive<R: ProvRecorder>(mut rt: Runtime<R>, cfg: &FwdConfig) -> (Runtime<R>, RunMeasurements) {
    let n = rt.net().node_count();
    rt.run().expect("drain");
    let duration = rt.now().max(cfg.duration);

    let per_node_storage: Vec<usize> = (0..n)
        .map(|i| rt.recorder().storage_at(NodeId(i as u32)))
        .collect();
    let telemetry = rt
        .telemetry()
        .cloned()
        .expect("prepare() always attaches telemetry");
    let snapshots = crate::snapshots_from_series(&crate::sum_timeseries(
        &telemetry,
        "recorder.storage_bytes#",
    ));
    let m = RunMeasurements {
        per_node_storage,
        snapshots,
        traffic_per_second: rt.stats().per_second_series(),
        total_traffic: rt.stats().total_bytes(),
        per_link_bytes: rt.stats().per_link_totals(),
        outputs: rt.outputs().len(),
        rules_fired: rt.rules_fired(),
        duration,
        telemetry,
    };
    (rt, m)
}

/// Run the workload under `scheme`, then execute `queries` random
/// provenance queries against random `recv` outputs and return their
/// modeled latencies in milliseconds (Figure 12).
pub fn forwarding_query_latencies(scheme: Scheme, cfg: &FwdConfig, queries: usize) -> Vec<f64> {
    let mut rng = SeededRng::seed_from_u64(cfg.seed ^ 0x51ab);
    match scheme {
        Scheme::Noop => panic!("the Noop scheme maintains no provenance to query"),
        Scheme::Exspan => {
            let (mut rt, _) = prepare(cfg, ExspanRecorder::new);
            rt.run().expect("drain");
            let outs = sample_outputs(&rt, queries, &mut rng);
            let ctx = QueryCtx::from_runtime(&rt);
            outs.iter()
                .map(|(t, _)| {
                    query_exspan(&ctx, rt.recorder(), t)
                        .expect("stored output is queryable")
                        .latency
                        .as_millis_f64()
                })
                .collect()
        }
        Scheme::Basic => {
            let (mut rt, _) = prepare(cfg, BasicRecorder::new);
            rt.run().expect("drain");
            let outs = sample_outputs(&rt, queries, &mut rng);
            let ctx = QueryCtx::from_runtime(&rt);
            outs.iter()
                .map(|(t, _)| {
                    query_basic(&ctx, rt.recorder(), t)
                        .expect("stored output is queryable")
                        .latency
                        .as_millis_f64()
                })
                .collect()
        }
        Scheme::Advanced | Scheme::AdvancedInterClass => {
            let keys = equivalence_keys(&programs::packet_forwarding());
            let inter = scheme == Scheme::AdvancedInterClass;
            let (mut rt, _) = prepare(cfg, move |n| {
                if inter {
                    AdvancedRecorder::with_inter_class(n, keys)
                } else {
                    AdvancedRecorder::new(n, keys)
                }
            });
            rt.run().expect("drain");
            let outs = sample_outputs(&rt, queries, &mut rng);
            let ctx = QueryCtx::from_runtime(&rt);
            outs.iter()
                .map(|(t, evid)| {
                    query_advanced(&ctx, rt.recorder(), t, evid)
                        .expect("stored output is queryable")
                        .latency
                        .as_millis_f64()
                })
                .collect()
        }
    }
}

/// Run the workload under ExSPAN and Advanced, then execute `queries`
/// random queries through the *simulated message* protocols
/// (`dpc_core::distquery`) and return the mean latencies in ms:
/// `(exspan, advanced)`. Used by fig12 to cross-check the analytic model.
pub fn simulated_query_means(cfg: &FwdConfig, queries: usize) -> (f64, f64) {
    use dpc_core::{simulate_query_advanced, simulate_query_exspan, QueryCostModel};
    let mut rng = SeededRng::seed_from_u64(cfg.seed ^ 0xd15c);

    let (mut rt_e, _) = prepare(cfg, ExspanRecorder::new);
    rt_e.run().expect("drain");
    let outs = sample_outputs(&rt_e, queries, &mut rng);
    let exspan_mean = outs
        .iter()
        .map(|(t, _)| {
            simulate_query_exspan(
                rt_e.net(),
                rt_e.recorder(),
                &rt_e,
                QueryCostModel::default(),
                t,
                None,
            )
            .expect("stored output is queryable")
            .latency
            .as_millis_f64()
        })
        .sum::<f64>()
        / outs.len() as f64;

    let keys = equivalence_keys(&programs::packet_forwarding());
    let (mut rt_a, _) = prepare(cfg, move |n| AdvancedRecorder::new(n, keys));
    rt_a.run().expect("drain");
    let outs = sample_outputs(&rt_a, queries, &mut rng);
    let adv_mean = outs
        .iter()
        .map(|(t, evid)| {
            simulate_query_advanced(
                rt_a.net(),
                rt_a.recorder(),
                &rt_a,
                rt_a.delp(),
                rt_a.fns(),
                QueryCostModel::default(),
                t,
                evid,
                None,
            )
            .expect("stored output is queryable")
            .latency
            .as_millis_f64()
        })
        .sum::<f64>()
        / outs.len() as f64;

    (exspan_mean, adv_mean)
}

pub(crate) fn sample_outputs<R: ProvRecorder>(
    rt: &Runtime<R>,
    k: usize,
    rng: &mut SeededRng,
) -> Vec<(dpc_common::Tuple, dpc_common::EvId)> {
    let mut outs: Vec<_> = rt
        .outputs()
        .iter()
        .map(|o| (o.tuple.clone(), o.evid))
        .collect();
    rng.shuffle(&mut outs);
    outs.truncate(k);
    assert!(!outs.is_empty(), "workload produced no outputs to query");
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FwdConfig {
        FwdConfig {
            pairs: 5,
            rate_per_pair: 5.0,
            duration: SimTime::from_secs(2),
            snapshot_every: SimTime::from_secs(1),
            ..FwdConfig::default()
        }
    }

    #[test]
    fn all_schemes_deliver_all_packets() {
        let cfg = tiny();
        for s in [
            Scheme::Exspan,
            Scheme::Basic,
            Scheme::Advanced,
            Scheme::AdvancedInterClass,
        ] {
            let out = run_forwarding(s, &cfg);
            assert_eq!(out.m.outputs, out.injected, "{}", s.name());
            assert!(out.m.total_storage() > 0, "{}", s.name());
        }
    }

    #[test]
    fn storage_ordering_matches_paper() {
        let cfg = tiny();
        let e = run_forwarding(Scheme::Exspan, &cfg).m.total_storage();
        let b = run_forwarding(Scheme::Basic, &cfg).m.total_storage();
        let a = run_forwarding(Scheme::Advanced, &cfg).m.total_storage();
        assert!(b < e, "basic {b} < exspan {e}");
        assert!(a < b, "advanced {a} < basic {b}");
        // With 10 packets per pair, Advanced should win by a wide margin.
        assert!(a * 3 < e, "advanced {a} should be far below exspan {e}");
    }

    #[test]
    fn snapshots_are_monotone() {
        let out = run_forwarding(Scheme::Exspan, &tiny());
        assert!(!out.m.snapshots.is_empty());
        assert!(out.m.snapshots.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn fixed_total_packet_mode() {
        let cfg = FwdConfig {
            total_packets: Some(40),
            pairs: 8,
            duration: SimTime::from_secs(2),
            ..FwdConfig::default()
        };
        let out = run_forwarding(Scheme::Advanced, &cfg);
        assert_eq!(out.injected, 40);
        assert_eq!(out.m.outputs, 40);
    }

    #[test]
    fn route_updates_add_sig_traffic() {
        let base = tiny();
        let with_updates = FwdConfig {
            route_update_every: Some(SimTime::from_millis(500)),
            ..base.clone()
        };
        let a = run_forwarding(Scheme::Advanced, &base);
        let b = run_forwarding(Scheme::Advanced, &with_updates);
        assert!(b.m.total_traffic > a.m.total_traffic);
        // The paper reports ~0.6% at its scale (updates every 10 s against
        // 500 pairs of traffic); this tiny run updates 40x as often
        // against 1/250 of the traffic, so allow a proportionally larger
        // yet still modest bound. fig11 reports the paper-scale number.
        let ratio = b.m.total_traffic as f64 / a.m.total_traffic as f64;
        assert!(ratio < 1.30, "update overhead ratio {ratio}");
    }

    #[test]
    fn query_latencies_have_paper_ordering() {
        let cfg = FwdConfig {
            pairs: 5,
            rate_per_pair: 2.0,
            duration: SimTime::from_secs(1),
            ..FwdConfig::default()
        };
        let le = forwarding_query_latencies(Scheme::Exspan, &cfg, 10);
        let lb = forwarding_query_latencies(Scheme::Basic, &cfg, 10);
        let la = forwarding_query_latencies(Scheme::Advanced, &cfg, 10);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&lb) < mean(&le),
            "basic {} < exspan {}",
            mean(&lb),
            mean(&le)
        );
        assert!(
            mean(&la) < mean(&le),
            "advanced {} < exspan {}",
            mean(&la),
            mean(&le)
        );
    }
}
