//! Bench-history records and the regression gate behind
//! `dpc-report bench-history`.
//!
//! The repo's perf memory is `BENCH_history.json`: a single JSON document
//! `{"record":"bench_history","runs":[...]}` holding normalized run
//! records (wall clock, bytes shipped, peak storage, index hit ratio).
//! `--record` appends the current run; `--check` compares the current
//! run against the *median* of the checked-in records with the same
//! `(workload, scheme, config, seed)` key and fails on regression.
//! Simulated metrics are deterministic, so their tolerance is tight; the
//! wall clock depends on the machine, so its tolerance is generous.

use dpc_telemetry::json::Json;

/// One normalized benchmark run for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name (`fwd`, `dns`).
    pub workload: String,
    /// Scheme name (`ExSPAN`, `Basic`, `Advanced`).
    pub scheme: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Workload-parameter fingerprint (e.g. `pairs=5,rate=5,dur=2s`);
    /// records only compare against baselines with an identical one.
    pub config: String,
    /// Wall-clock seconds of the drive phase (machine-dependent).
    pub wall_clock_secs: f64,
    /// Total bytes on the wire (deterministic).
    pub bytes_shipped: u64,
    /// Peak total provenance storage in bytes (deterministic).
    pub peak_storage_bytes: u64,
    /// Secondary-index hit ratio, when the engine probed indexes.
    pub index_hit_ratio: Option<f64>,
}

impl BenchRecord {
    fn key(&self) -> (&str, &str, u64, &str) {
        (&self.workload, &self.scheme, self.seed, &self.config)
    }

    /// Serialize as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("scheme", Json::Str(self.scheme.clone())),
            ("seed", Json::UInt(self.seed)),
            ("config", Json::Str(self.config.clone())),
            ("wall_clock_secs", Json::Float(self.wall_clock_secs)),
            ("bytes_shipped", Json::UInt(self.bytes_shipped)),
            ("peak_storage_bytes", Json::UInt(self.peak_storage_bytes)),
            (
                "index_hit_ratio",
                self.index_hit_ratio.map_or(Json::Null, Json::Float),
            ),
        ])
    }

    /// Parse one record back from its JSON object.
    pub fn from_json(j: &Json) -> Result<BenchRecord, String> {
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field `{k}`"))
        };
        let u64_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing integer field `{k}`"))
        };
        Ok(BenchRecord {
            workload: str_field("workload")?,
            scheme: str_field("scheme")?,
            seed: u64_field("seed")?,
            config: str_field("config")?,
            wall_clock_secs: j
                .get("wall_clock_secs")
                .and_then(Json::as_f64)
                .ok_or("record missing `wall_clock_secs`")?,
            bytes_shipped: u64_field("bytes_shipped")?,
            peak_storage_bytes: u64_field("peak_storage_bytes")?,
            index_hit_ratio: j.get("index_hit_ratio").and_then(Json::as_f64),
        })
    }
}

/// The whole `BENCH_history.json` document.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All recorded runs, oldest first.
    pub runs: Vec<BenchRecord>,
}

impl History {
    /// Parse the history document (an empty/missing file parses as an
    /// empty history via `History::default`).
    pub fn parse(src: &str) -> Result<History, String> {
        let doc = Json::parse(src)?;
        if doc.get("record").and_then(Json::as_str) != Some("bench_history") {
            return Err("not a bench_history document".to_string());
        }
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("bench_history document missing `runs` array")?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(History { runs })
    }

    /// Serialize the whole document (pretty enough for diffs: one run
    /// per line).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"record\":\"bench_history\",\"runs\":[\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&r.to_json().to_string());
            if i + 1 < self.runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Gate tolerances, as fractions of the baseline median.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// For the deterministic metrics (bytes shipped, peak storage, index
    /// hit ratio). The sim is deterministic, so regressions here are real
    /// behavior changes; keep this tight.
    pub metric: f64,
    /// For wall clock, which varies with the machine and its load.
    pub wall_clock: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            metric: 0.10,
            wall_clock: 2.0,
        }
    }
}

/// Outcome of one gate run.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Human-readable regression descriptions; empty means the gate
    /// passes.
    pub failures: Vec<String>,
    /// Metric comparisons performed.
    pub compared: usize,
    /// Current records with no matching baseline (not a failure: a new
    /// workload/config has no history yet).
    pub skipped: Vec<String>,
}

impl GateResult {
    /// Did the gate pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Compare `current` records against the medians of their matching
/// baseline records in `history`. Bytes shipped, peak storage and wall
/// clock regress *upward* (current must stay under `median * (1 + tol)`);
/// the index hit ratio regresses *downward* (current must stay above
/// `median * (1 - tol)`).
pub fn check(history: &History, current: &[BenchRecord], tol: Tolerance) -> GateResult {
    let mut res = GateResult::default();
    for c in current {
        let base: Vec<&BenchRecord> = history.runs.iter().filter(|r| r.key() == c.key()).collect();
        if base.is_empty() {
            res.skipped
                .push(format!("{}/{}: no baseline records", c.workload, c.scheme));
            continue;
        }
        let who = format!("{}/{}", c.workload, c.scheme);
        let mut upward = |name: &str, cur: f64, baseline: Vec<f64>, t: f64| {
            let med = median(baseline);
            res.compared += 1;
            if cur > med * (1.0 + t) {
                res.failures.push(format!(
                    "{who}: {name} regressed: {cur} > median {med} * (1 + {t})"
                ));
            }
        };
        upward(
            "bytes_shipped",
            c.bytes_shipped as f64,
            base.iter().map(|r| r.bytes_shipped as f64).collect(),
            tol.metric,
        );
        upward(
            "peak_storage_bytes",
            c.peak_storage_bytes as f64,
            base.iter().map(|r| r.peak_storage_bytes as f64).collect(),
            tol.metric,
        );
        upward(
            "wall_clock_secs",
            c.wall_clock_secs,
            base.iter().map(|r| r.wall_clock_secs).collect(),
            tol.wall_clock,
        );
        let base_ratios: Vec<f64> = base.iter().filter_map(|r| r.index_hit_ratio).collect();
        if let (Some(cur), false) = (c.index_hit_ratio, base_ratios.is_empty()) {
            let med = median(base_ratios);
            res.compared += 1;
            if cur < med * (1.0 - tol.metric) {
                res.failures.push(format!(
                    "{who}: index_hit_ratio regressed: {cur} < median {med} * (1 - {})",
                    tol.metric
                ));
            }
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(scheme: &str, bytes: u64, storage: u64, wall: f64, ratio: Option<f64>) -> BenchRecord {
        BenchRecord {
            workload: "fwd".into(),
            scheme: scheme.into(),
            seed: 42,
            config: "pairs=5,rate=5,dur=2s".into(),
            wall_clock_secs: wall,
            bytes_shipped: bytes,
            peak_storage_bytes: storage,
            index_hit_ratio: ratio,
        }
    }

    #[test]
    fn history_round_trips() {
        let h = History {
            runs: vec![
                rec("ExSPAN", 1000, 500, 0.1, None),
                rec("Advanced", 1100, 100, 0.2, Some(0.9)),
            ],
        };
        let parsed = History::parse(&h.to_json_string()).unwrap();
        assert_eq!(parsed.runs, h.runs);
        assert!(History::parse("{\"record\":\"other\"}").is_err());
        assert!(History::parse("[]").is_err());
    }

    #[test]
    fn identical_run_passes_gate() {
        let h = History {
            runs: vec![
                rec("ExSPAN", 1000, 500, 0.1, Some(0.9)),
                rec("ExSPAN", 1000, 500, 0.3, Some(0.9)),
            ],
        };
        let res = check(
            &h,
            &[rec("ExSPAN", 1000, 500, 0.2, Some(0.9))],
            Tolerance::default(),
        );
        assert!(res.passed(), "{:?}", res.failures);
        assert_eq!(res.compared, 4);
        assert!(res.skipped.is_empty());
    }

    #[test]
    fn regressions_fail_gate() {
        let h = History {
            runs: vec![rec("ExSPAN", 1000, 500, 0.1, Some(0.9))],
        };
        let tol = Tolerance::default();
        // +20% bytes shipped: fail.
        let res = check(&h, &[rec("ExSPAN", 1200, 500, 0.1, Some(0.9))], tol);
        assert_eq!(res.failures.len(), 1, "{:?}", res.failures);
        assert!(res.failures[0].contains("bytes_shipped"));
        // +20% storage: fail.
        let res = check(&h, &[rec("ExSPAN", 1000, 600, 0.1, Some(0.9))], tol);
        assert!(res.failures[0].contains("peak_storage_bytes"));
        // Hit ratio drop beyond tolerance: fail.
        let res = check(&h, &[rec("ExSPAN", 1000, 500, 0.1, Some(0.5))], tol);
        assert!(res.failures[0].contains("index_hit_ratio"));
        // Wall clock doubles: pass (generous tolerance).
        let res = check(&h, &[rec("ExSPAN", 1000, 500, 0.2, Some(0.9))], tol);
        assert!(res.passed(), "{:?}", res.failures);
        // Wall clock 4x median: fail.
        let res = check(&h, &[rec("ExSPAN", 1000, 500, 0.4, Some(0.9))], tol);
        assert!(res.failures[0].contains("wall_clock_secs"));
    }

    #[test]
    fn unmatched_records_are_skipped_not_failed() {
        let h = History {
            runs: vec![rec("ExSPAN", 1000, 500, 0.1, None)],
        };
        let mut other = rec("ExSPAN", 9999, 9999, 9.9, None);
        other.config = "different".into();
        let res = check(&h, &[other], Tolerance::default());
        assert!(res.passed());
        assert_eq!(res.skipped.len(), 1);
        assert_eq!(res.compared, 0);
    }

    #[test]
    fn median_of_even_and_odd_counts() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
