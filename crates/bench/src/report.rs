//! Figure rendering: plain-text series/rows matching the paper's plots,
//! plus the JSON-lines records behind every binary's `--json` mode.

use dpc_telemetry::json::Json;
use dpc_workload::Cdf;

use crate::RunMeasurements;

/// The JSON-lines record summarizing one run: per-node storage, per-link
/// traffic, rule firings and the `htequi` hit rate — the run-level fields
/// the paper's figures are computed from.
pub fn run_json(figure: &str, scheme: &str, m: &RunMeasurements) -> Json {
    run_json_with(figure, scheme, Vec::new(), m)
}

/// [`run_json`] with extra workload parameters (e.g. the pair count a
/// figure sweeps over) recorded under a `"params"` key.
pub fn run_json_with(
    figure: &str,
    scheme: &str,
    params: Vec<(&str, Json)>,
    m: &RunMeasurements,
) -> Json {
    let (hits, misses) = m.htequi_hits_misses();
    let (index_hits, index_misses) = m.index_hits_misses();
    let mut fields = vec![
        ("record", Json::Str("run".into())),
        ("figure", Json::Str(figure.into())),
        ("scheme", Json::Str(scheme.into())),
    ];
    if !params.is_empty() {
        fields.push(("params", Json::obj(params)));
    }
    fields.extend([
        (
            "per_node_storage_bytes",
            Json::Arr(
                m.per_node_storage
                    .iter()
                    .map(|&b| Json::UInt(b as u64))
                    .collect(),
            ),
        ),
        (
            "per_link_bytes",
            Json::Arr(
                m.per_link_bytes
                    .iter()
                    .map(|&((a, b), bytes)| {
                        Json::obj([
                            ("a", Json::UInt(a.0 as u64)),
                            ("b", Json::UInt(b.0 as u64)),
                            ("bytes", Json::UInt(bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "storage_snapshots",
            Json::Arr(
                m.snapshots
                    .iter()
                    .map(|&(sec, bytes)| Json::Arr(vec![Json::UInt(sec), Json::UInt(bytes as u64)]))
                    .collect(),
            ),
        ),
        ("total_traffic_bytes", Json::UInt(m.total_traffic)),
        ("outputs", Json::UInt(m.outputs as u64)),
        ("rules_fired", Json::UInt(m.rules_fired)),
        ("htequi_hits", Json::UInt(hits)),
        ("htequi_misses", Json::UInt(misses)),
        (
            "htequi_hit_rate",
            m.htequi_hit_rate().map_or(Json::Null, Json::Float),
        ),
        ("index_hits", Json::UInt(index_hits)),
        ("index_misses", Json::UInt(index_misses)),
        (
            "index_hit_ratio",
            m.index_hit_ratio().map_or(Json::Null, Json::Float),
        ),
        ("plans_compiled", Json::UInt(m.plans_compiled())),
        ("duration_secs", Json::Float(m.duration.as_secs_f64())),
    ]);
    Json::obj(fields)
}

/// Print the run record followed by the run's periodic telemetry
/// snapshots, one JSON object per line.
pub fn emit_run_json(figure: &str, scheme: &str, m: &RunMeasurements) {
    emit_run_json_with(figure, scheme, Vec::new(), m);
}

/// [`emit_run_json`] with extra workload parameters.
pub fn emit_run_json_with(
    figure: &str,
    scheme: &str,
    params: Vec<(&str, Json)>,
    m: &RunMeasurements,
) {
    println!("{}", run_json_with(figure, scheme, params, m));
    let snaps = m.telemetry.to_json_lines();
    if !snaps.is_empty() {
        print!("{snaps}");
    }
}

/// Print the run's sampled time series as JSON-lines `series` records
/// (one per series key; empty output when sampling was off). Figure
/// binaries call this under `--timeseries`.
pub fn emit_timeseries_json(m: &RunMeasurements) {
    let series = m.telemetry.timeseries_json_lines();
    if !series.is_empty() {
        print!("{series}");
    }
}

/// Print a CDF as `value fraction` rows under a header, at a fixed set of
/// fractions plus summary statistics.
pub fn print_cdf(title: &str, unit: &str, series: &[(&str, &Cdf)]) {
    println!("# {title}");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "p10", "p50", "p80", "p90", "max", "mean"
    );
    for (name, cdf) in series {
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            cdf.quantile(0.10),
            cdf.quantile(0.50),
            cdf.quantile(0.80),
            cdf.quantile(0.90),
            cdf.max(),
            cdf.mean(),
        );
    }
    println!("(values in {unit})");
}

/// Print an x/y series per scheme: one row per x value.
pub fn print_series(
    title: &str,
    x_label: &str,
    y_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
) {
    println!("# {title}");
    print!("{:<12}", x_label);
    for (name, _) in series {
        print!(" {name:>22}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:<12.2}");
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => print!(" {y:>22.3}"),
                None => print!(" {:>22}", "-"),
            }
        }
        println!();
    }
    println!("(y values in {y_label})");
}

/// Print a simple key/value table.
pub fn print_table(title: &str, rows: &[(&str, String)]) {
    println!("# {title}");
    for (k, v) in rows {
        println!("{k:<40} {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_json_schema() {
        use dpc_common::NodeId;
        use dpc_netsim::SimTime;
        let m = RunMeasurements {
            per_node_storage: vec![10, 20],
            snapshots: vec![(1, 5), (2, 30)],
            traffic_per_second: vec![3, 4],
            total_traffic: 7,
            per_link_bytes: vec![((NodeId(0), NodeId(1)), 7)],
            outputs: 2,
            rules_fired: 4,
            duration: SimTime::from_secs(2),
            telemetry: dpc_telemetry::Telemetry::handle(),
        };
        let line = run_json("fig08", "ExSPAN", &m).to_string();
        assert_eq!(
            line,
            r#"{"record":"run","figure":"fig08","scheme":"ExSPAN","per_node_storage_bytes":[10,20],"per_link_bytes":[{"a":0,"b":1,"bytes":7}],"storage_snapshots":[[1,5],[2,30]],"total_traffic_bytes":7,"outputs":2,"rules_fired":4,"htequi_hits":0,"htequi_misses":0,"htequi_hit_rate":null,"index_hits":0,"index_misses":0,"index_hit_ratio":null,"plans_compiled":0,"duration_secs":2}"#
        );
    }

    #[test]
    fn printing_does_not_panic() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        print_cdf("t", "ms", &[("a", &cdf)]);
        print_series(
            "t",
            "x",
            "MB",
            &[1.0, 2.0],
            &[("a", vec![1.0, 2.0]), ("b", vec![3.0])],
        );
        print_table("t", &[("k", "v".into())]);
    }
}
