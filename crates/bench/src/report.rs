//! Plain-text figure rendering: the harness binaries print the same
//! series/rows the paper's figures plot.

use dpc_workload::Cdf;

/// Print a CDF as `value fraction` rows under a header, at a fixed set of
/// fractions plus summary statistics.
pub fn print_cdf(title: &str, unit: &str, series: &[(&str, &Cdf)]) {
    println!("# {title}");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "p10", "p50", "p80", "p90", "max", "mean"
    );
    for (name, cdf) in series {
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            cdf.quantile(0.10),
            cdf.quantile(0.50),
            cdf.quantile(0.80),
            cdf.quantile(0.90),
            cdf.max(),
            cdf.mean(),
        );
    }
    println!("(values in {unit})");
}

/// Print an x/y series per scheme: one row per x value.
pub fn print_series(
    title: &str,
    x_label: &str,
    y_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
) {
    println!("# {title}");
    print!("{:<12}", x_label);
    for (name, _) in series {
        print!(" {name:>22}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:<12.2}");
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => print!(" {y:>22.3}"),
                None => print!(" {:>22}", "-"),
            }
        }
        println!();
    }
    println!("(y values in {y_label})");
}

/// Print a simple key/value table.
pub fn print_table(title: &str, rows: &[(&str, String)]) {
    println!("# {title}");
    for (k, v) in rows {
        println!("{k:<40} {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        print_cdf("t", "ms", &[("a", &cdf)]);
        print_series(
            "t",
            "x",
            "MB",
            &[1.0, 2.0],
            &[("a", vec![1.0, 2.0]), ("b", vec![3.0])],
        );
        print_table("t", &[("k", "v".into())]);
    }
}
