//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline with zero external dependencies, so the
//! `benches/` targets (behind the non-default `microbench` feature,
//! `harness = false`) measure with `std::time::Instant` instead of
//! criterion. The protocol per benchmark: calibrate an iteration count
//! that makes one sample take a measurable slice of time, take a fixed
//! number of samples, and report median/min/max nanoseconds per
//! iteration. These benches gate CI-style runs, not microsecond-precision
//! regression tracking.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per benchmark after calibration.
const SAMPLES: usize = 12;
/// Minimum wall time for one calibrated sample.
const MIN_SAMPLE: Duration = Duration::from_millis(10);
/// Warm-up budget before calibration counts.
const WARM_UP: Duration = Duration::from_millis(100);

/// A benchmark runner: parses CLI args (an optional substring filter;
/// cargo's `--bench` flag is accepted and ignored) and prints one line
/// per benchmark.
pub struct Bench {
    filter: Option<String>,
    ran: usize,
}

impl Bench {
    /// Build from `std::env::args`.
    pub fn from_args() -> Bench {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Bench { filter, ran: 0 }
    }

    /// Run one benchmark unless the name filter excludes it.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Warm up.
        let start = Instant::now();
        while start.elapsed() < WARM_UP {
            black_box(f());
        }

        // Calibrate: double the iteration count until one sample is long
        // enough to measure reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if t.elapsed() >= MIN_SAMPLE || iters >= 1 << 28 {
                break;
            }
            iters *= 2;
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<44} {:>12}/iter  (min {}, max {}, {iters} iters x {SAMPLES} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
    }

    /// Print a trailing summary; call at the end of `main`.
    pub fn finish(self) {
        if self.ran == 0 {
            println!("no benchmarks matched the filter");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
