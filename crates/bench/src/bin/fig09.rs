//! Figure 9: total provenance storage over time, packet forwarding.
//!
//! Paper result: at 90 s ExSPAN holds 11.8 GB, Basic 9.2 GB, Advanced
//! 0.92 GB — linear growth for ExSPAN/Basic (131 / 109 MB/s), an order of
//! magnitude less for Advanced (10.3 MB/s). Expect the same linear shapes
//! and a comparable ratio at the scaled workload.

use dpc_bench::{
    emit_run_json, emit_timeseries_json, print_series, run_forwarding_schemes, Cli, FwdConfig,
    Scheme,
};

fn main() {
    let cli = Cli::parse();
    let cfg = if cli.paper_scale {
        FwdConfig::paper_scale(cli.seed)
    } else {
        FwdConfig {
            seed: cli.seed,
            pairs: 100,
            rate_per_pair: 10.0,
            duration: dpc_netsim::SimTime::from_secs(10),
            ..FwdConfig::default()
        }
    };
    let runs = run_forwarding_schemes(&cfg, &Scheme::PAPER);
    if cli.json {
        for (scheme, out) in &runs {
            emit_run_json("fig09", scheme.name(), &out.m);
            if cli.timeseries {
                emit_timeseries_json(&out.m);
            }
        }
        return;
    }
    println!(
        "Figure 9 — total storage over time ({} pairs, {} pkt/s/pair)",
        cfg.pairs, cfg.rate_per_pair
    );
    // The storage trajectory comes from the runtime's time-series
    // sampler (summed per-node `recorder.storage_bytes#n` series).
    let mut xs: Vec<f64> = Vec::new();
    let mut series = Vec::new();
    for (scheme, out) in runs {
        let storage = out.m.storage_series();
        if xs.is_empty() {
            xs = storage.iter().map(|&(t, _)| t as f64 / 1e9).collect();
        }
        let ys: Vec<f64> = storage
            .iter()
            .map(|&(_, b)| dpc_workload::mb(b as usize))
            .collect();
        let growth = dpc_workload::mb(out.m.total_storage()) / cfg.duration.as_secs_f64();
        eprintln!("  {}: {:.2} MB/s average growth", scheme.name(), growth);
        series.push((scheme.name(), ys));
    }
    print_series("total provenance storage", "second", "MB", &xs, &series);
}
