//! Figure 10: total storage vs. number of communicating pairs, with the
//! total packet count held constant (2000 packets in the paper).
//!
//! Paper result: ExSPAN (~27 MB) and Basic (~21 MB) stay flat — storage
//! tracks the packet count; Advanced grows with the pair count because
//! each pair is one equivalence class, yet stays far below the other two.

use dpc_bench::{
    emit_run_json_with, print_series, run_forwarding, span_histograms_json, Cli, FwdConfig, Scheme,
};
use dpc_netsim::SimTime;
use dpc_telemetry::json::Json;

fn main() {
    let cli = Cli::parse();
    let total_packets = if cli.paper_scale { 2000 } else { 400 };
    let pair_counts: Vec<usize> = (1..=10).map(|k| k * 10).collect();
    if !cli.json {
        println!("Figure 10 — storage vs. communicating pairs ({total_packets} packets total)");
    }

    let xs: Vec<f64> = pair_counts.iter().map(|&p| p as f64).collect();
    let mut series = Vec::new();
    for scheme in Scheme::PAPER {
        let mut ys = Vec::new();
        for &pairs in &pair_counts {
            let cfg = FwdConfig {
                seed: cli.seed,
                pairs,
                total_packets: Some(total_packets),
                duration: SimTime::from_secs(4),
                trace_sample: if cli.trace { cli.trace_sample } else { 0 },
                ..FwdConfig::default()
            };
            let out = run_forwarding(scheme, &cfg);
            if cli.json {
                emit_run_json_with(
                    "fig10",
                    scheme.name(),
                    vec![("pairs", Json::UInt(pairs as u64))],
                    &out.m,
                );
                if cli.trace {
                    for row in span_histograms_json(&out.m.telemetry.spans()) {
                        println!("{row}");
                    }
                }
            }
            ys.push(dpc_workload::mb(out.m.total_storage()));
        }
        series.push((scheme.name(), ys));
    }
    if cli.json {
        return;
    }
    print_series("total storage", "pairs", "MB", &xs, &series);
}
