//! `dpc-report`: per-run timelines and the bench-history regression gate.
//!
//! ```text
//! dpc-report timelines [--workload fwd|dns] [--seed <n>] [--paper-scale]
//!                      [--out <file.json>] [--csv <file.csv>]
//! dpc-report bench-history --record [--file <BENCH_history.json>] [--seed <n>]
//! dpc-report bench-history --check  [--file <BENCH_history.json>] [--seed <n>]
//!                      [--tolerance <frac>] [--wall-tolerance <frac>]
//! ```
//!
//! `timelines` runs the paper's three schemes through the time-series
//! sampler and renders storage-over-time, bandwidth-over-time and the
//! compression ratio (ExSPAN storage over Basic/Advanced storage) as
//! text tables; `--out` additionally writes a JSON-lines artifact (run
//! records + every sampled series) and `--csv` a flat CSV.
//!
//! `bench-history` is the repo's perf memory (see
//! [`dpc_bench::history`]): `--record` appends normalized run records to
//! the history file, `--check` re-runs the same workload and fails
//! (exit 1) when a metric regresses past tolerance against the median of
//! the checked-in baseline.

use dpc_bench::history::{check, BenchRecord, History, Tolerance};
use dpc_bench::{
    print_series, print_table, run_dns_schemes, run_forwarding_schemes, run_json, DnsConfig,
    FwdConfig, RunMeasurements, Scheme,
};
use dpc_netsim::SimTime;

const USAGE: &str = "usage:
  dpc-report timelines [--workload fwd|dns] [--seed <n>] [--paper-scale] [--out <file.json>] [--csv <file.csv>]
  dpc-report bench-history --record [--file <path>] [--seed <n>]
  dpc-report bench-history --check  [--file <path>] [--seed <n>] [--tolerance <frac>] [--wall-tolerance <frac>]";

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("timelines") => timelines(&args[1..]),
        Some("bench-history") => bench_history(&args[1..]),
        Some("--help") | Some("-h") | None => die("missing subcommand"),
        Some(other) => die(&format!("unknown subcommand `{other}`")),
    }
}

/// One scheme's run, reduced to what both subcommands need.
struct SchemeRun {
    scheme: Scheme,
    m: RunMeasurements,
    wall_secs: f64,
}

/// The fixed small gate workload: fast enough for CI, big enough that
/// every metric is nonzero. Changing it invalidates existing history
/// records (the config fingerprint no longer matches).
fn gate_config(seed: u64) -> (FwdConfig, String) {
    let cfg = FwdConfig {
        seed,
        pairs: 5,
        rate_per_pair: 5.0,
        duration: SimTime::from_secs(2),
        snapshot_every: SimTime::from_secs(1),
        ..FwdConfig::default()
    };
    (cfg, "pairs=5,rate=5,dur=2s".to_string())
}

fn run_fwd(cfg: &FwdConfig) -> Vec<SchemeRun> {
    run_forwarding_schemes(cfg, &Scheme::PAPER)
        .into_iter()
        .map(|(scheme, out)| SchemeRun {
            scheme,
            m: out.m,
            wall_secs: out.processing_secs,
        })
        .collect()
}

fn run_dns_workload(cfg: &DnsConfig) -> Vec<SchemeRun> {
    run_dns_schemes(cfg, &Scheme::PAPER)
        .into_iter()
        .map(|(scheme, out)| SchemeRun {
            scheme,
            m: out.m,
            wall_secs: out.processing_secs,
        })
        .collect()
}

// --- timelines ---------------------------------------------------------

fn timelines(args: &[String]) {
    let mut workload = "fwd".to_string();
    let mut seed = 42u64;
    let mut paper_scale = false;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => match it.next().map(String::as_str) {
                Some(w @ ("fwd" | "dns")) => workload = w.to_string(),
                _ => die("--workload requires `fwd` or `dns`"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed requires an integer"),
            },
            "--paper-scale" => paper_scale = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => die("--out requires a path"),
            },
            "--csv" => match it.next() {
                Some(p) => csv_path = Some(p.clone()),
                None => die("--csv requires a path"),
            },
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let runs = if workload == "dns" {
        let cfg = if paper_scale {
            DnsConfig::paper_scale(seed)
        } else {
            DnsConfig {
                seed,
                ..DnsConfig::default()
            }
        };
        run_dns_workload(&cfg)
    } else {
        let cfg = if paper_scale {
            FwdConfig::paper_scale(seed)
        } else {
            FwdConfig {
                seed,
                pairs: 20,
                rate_per_pair: 10.0,
                duration: SimTime::from_secs(10),
                ..FwdConfig::default()
            }
        };
        run_fwd(&cfg)
    };

    println!("dpc-report — {workload} workload timelines (seed {seed})");

    // Storage over time (MB), one column per scheme.
    let mut xs: Vec<f64> = Vec::new();
    let mut storage_cols = Vec::new();
    for r in &runs {
        let storage = r.m.storage_series();
        if xs.is_empty() {
            xs = storage.iter().map(|&(t, _)| t as f64 / 1e9).collect();
        }
        let ys: Vec<f64> = storage
            .iter()
            .map(|&(_, b)| dpc_workload::mb(b as usize))
            .collect();
        storage_cols.push((r.scheme.name(), ys));
    }
    print_series("storage over time", "second", "MB", &xs, &storage_cols);

    // Bandwidth over time (MB/s).
    let mut bxs: Vec<f64> = Vec::new();
    let mut bw_cols = Vec::new();
    for r in &runs {
        let rate = r.m.bandwidth_rate_series();
        if bxs.is_empty() {
            bxs = rate.iter().map(|&(s, _)| s).collect();
        }
        bw_cols.push((
            r.scheme.name(),
            rate.iter().map(|&(_, b)| b / 1e6).collect::<Vec<f64>>(),
        ));
    }
    print_series("bandwidth over time", "second", "MB/s", &bxs, &bw_cols);

    // Compression ratio over time: ExSPAN storage over each scheme's, at
    // the per-second snapshot granularity (the figure the paper's
    // storage plots imply).
    let per_scheme: Vec<(&str, std::collections::BTreeMap<u64, usize>)> = runs
        .iter()
        .map(|r| (r.scheme.name(), r.m.snapshots.iter().copied().collect()))
        .collect();
    if let Some((_, exspan)) = per_scheme.iter().find(|(n, _)| *n == "ExSPAN") {
        let mut rxs = Vec::new();
        let mut ratio_cols: Vec<(&str, Vec<f64>)> = per_scheme
            .iter()
            .filter(|(n, _)| *n != "ExSPAN")
            .map(|(n, _)| (*n, Vec::new()))
            .collect();
        for (&sec, &ex_bytes) in exspan {
            rxs.push(sec as f64);
            for (name, col) in &mut ratio_cols {
                let own = per_scheme
                    .iter()
                    .find(|(n, _)| n == name)
                    .and_then(|(_, snaps)| snaps.get(&sec))
                    .copied()
                    .unwrap_or(0);
                col.push(if own > 0 {
                    ex_bytes as f64 / own as f64
                } else {
                    f64::NAN
                });
            }
        }
        print_series(
            "compression ratio (ExSPAN storage / scheme storage)",
            "second",
            "x",
            &rxs,
            &ratio_cols,
        );
    }

    let totals: Vec<(&str, String)> = runs
        .iter()
        .map(|r| {
            (
                r.scheme.name(),
                format!(
                    "{} storage bytes, {} wire bytes",
                    r.m.total_storage(),
                    r.m.total_traffic
                ),
            )
        })
        .collect();
    print_table("final totals", &totals);

    if let Some(path) = out_path {
        let mut doc = String::new();
        for r in &runs {
            doc.push_str(&run_json("dpc-report", r.scheme.name(), &r.m).to_string());
            doc.push('\n');
            doc.push_str(&r.m.telemetry.timeseries_json_lines());
        }
        if let Err(e) = std::fs::write(&path, doc) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("wrote JSON-lines timeline artifact to {path}");
    }
    if let Some(path) = csv_path {
        // Flat CSV across schemes: scheme,series,t_ns,value.
        let mut csv = String::from("scheme,series,t_ns,value\n");
        for r in &runs {
            for (key, points) in r.m.telemetry.timeseries() {
                for (t, v) in points {
                    csv.push_str(&format!("{},{key},{t},{v}\n", r.scheme.name()));
                }
            }
        }
        if let Err(e) = std::fs::write(&path, csv) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("wrote CSV timeline artifact to {path}");
    }
}

// --- bench-history -----------------------------------------------------

fn bench_history(args: &[String]) {
    let mut mode: Option<&str> = None;
    let mut file = "BENCH_history.json".to_string();
    let mut seed = 42u64;
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--record" => mode = Some("record"),
            "--check" => mode = Some("check"),
            "--file" => match it.next() {
                Some(p) => file = p.clone(),
                None => die("--file requires a path"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed requires an integer"),
            },
            "--tolerance" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => tol.metric = t,
                None => die("--tolerance requires a fraction (e.g. 0.1)"),
            },
            "--wall-tolerance" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => tol.wall_clock = t,
                None => die("--wall-tolerance requires a fraction"),
            },
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let Some(mode) = mode else {
        die("bench-history requires --record or --check");
    };

    let (cfg, fingerprint) = gate_config(seed);
    let current: Vec<BenchRecord> = run_fwd(&cfg)
        .iter()
        .map(|r| BenchRecord {
            workload: "fwd".to_string(),
            scheme: r.scheme.name().to_string(),
            seed,
            config: fingerprint.clone(),
            wall_clock_secs: r.wall_secs,
            bytes_shipped: r.m.total_traffic,
            peak_storage_bytes: r.m.total_storage() as u64,
            index_hit_ratio: r.m.index_hit_ratio(),
        })
        .collect();

    let mut history = match std::fs::read_to_string(&file) {
        Ok(src) => match History::parse(&src) {
            Ok(h) => h,
            Err(e) => die(&format!("cannot parse {file}: {e}")),
        },
        Err(_) => History::default(),
    };

    if mode == "record" {
        history.runs.extend(current);
        if let Err(e) = std::fs::write(&file, history.to_json_string()) {
            die(&format!("cannot write {file}: {e}"));
        }
        println!("recorded {} run(s) into {file}", Scheme::PAPER.len());
        return;
    }

    let res = check(&history, &current, tol);
    for s in &res.skipped {
        println!("skipped {s}");
    }
    println!(
        "bench-history gate: {} metric(s) compared against {file}",
        res.compared
    );
    if res.passed() {
        println!("PASS");
    } else {
        for f in &res.failures {
            eprintln!("REGRESSION {f}");
        }
        std::process::exit(1);
    }
}
