//! Figure 12: CDF of provenance query latency, 100 random queries.
//!
//! Paper result (on their 25-machine testbed): ExSPAN mean/median 75/74 ms
//! vs Basic 25.5/25 ms — about 3x — because ExSPAN processes and ships the
//! large intermediate tuples while Basic/Advanced re-derive them at the
//! querier. Expect the same ~3x ordering under the simulated cost model.

use dpc_bench::fwdrun::simulated_query_means;
use dpc_bench::{forwarding_query_latencies, print_cdf, Cli, FwdConfig, Scheme};
use dpc_netsim::SimTime;
use dpc_telemetry::json::Json;
use dpc_workload::Cdf;

fn main() {
    let cli = Cli::parse();
    let (pairs, queries) = if cli.paper_scale {
        (100, 100)
    } else {
        (30, 100)
    };
    let cfg = FwdConfig {
        seed: cli.seed,
        pairs,
        rate_per_pair: 2.0,
        duration: SimTime::from_secs(5),
        ..FwdConfig::default()
    };
    if !cli.json {
        println!("Figure 12 — query latency CDF ({queries} queries, {pairs} pairs)");
    }
    let mut cdfs = Vec::new();
    for scheme in Scheme::PAPER {
        let lat = forwarding_query_latencies(scheme, &cfg, queries);
        if cli.json {
            let line = Json::obj([
                ("record", Json::Str("query_latency".into())),
                ("figure", Json::Str("fig12".into())),
                ("scheme", Json::Str(scheme.name().into())),
                (
                    "latencies_ms",
                    Json::Arr(lat.iter().copied().map(Json::Float).collect()),
                ),
            ]);
            println!("{line}");
        }
        cdfs.push((scheme.name(), Cdf::new(lat)));
    }
    if cli.json {
        let (sim_e, sim_a) = simulated_query_means(&cfg, queries.min(20));
        let line = Json::obj([
            ("record", Json::Str("simulated_query_means".into())),
            ("figure", Json::Str("fig12".into())),
            ("exspan_mean_ms", Json::Float(sim_e)),
            ("advanced_mean_ms", Json::Float(sim_a)),
        ]);
        println!("{line}");
        return;
    }
    let series: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (*n, c)).collect();
    print_cdf("provenance query latency", "ms", &series);
    let ex = &cdfs[0].1;
    let ba = &cdfs[1].1;
    println!(
        "ExSPAN/Basic mean ratio: {:.2}x (paper: ~3x)",
        ex.mean() / ba.mean()
    );

    // Cross-check with the message-level simulation of both protocols
    // (dpc_core::distquery): latencies come from the network simulator
    // itself, not the analytic cost model.
    let (sim_e, sim_a) = simulated_query_means(&cfg, queries.min(20));
    println!(
        "simulated (message-level): ExSPAN mean {sim_e:.1} ms, Advanced mean {sim_a:.1} ms, ratio {:.2}x",
        sim_e / sim_a
    );
}
