//! Ablation: intra-class compression (Section 5.3) vs. adding the
//! inter-equivalence-class node/link split (Section 5.4), across both
//! applications. Not a paper figure — quantifies the design choice the
//! paper motivates with Table 4.

use dpc_apps::forwarding;
use dpc_bench::{print_table, run_dns, run_forwarding, Cli, DnsConfig, FwdConfig, Scheme};
use dpc_common::NodeId;
use dpc_core::AdvancedRecorder;
use dpc_engine::ProvRecorder;
use dpc_ndlog::{equivalence_keys, programs};
use dpc_netsim::{topo, Link, SimTime};
use dpc_telemetry::json::Json;

/// The regime Section 5.4 targets: many sources converging on one
/// destination along a line, so every tree shares the path suffix of the
/// longest one. Returns (plain bytes, inter-class bytes).
fn convergecast(sources: usize) -> (usize, usize) {
    let keys = equivalence_keys(&programs::packet_forwarding());
    let mut out = [0usize; 2];
    for (slot, inter) in [(0, false), (1, true)] {
        let n = sources + 1;
        let net = topo::line(n, Link::STUB_STUB);
        let rec = if inter {
            AdvancedRecorder::with_inter_class(n, keys.clone())
        } else {
            AdvancedRecorder::new(n, keys.clone())
        };
        let mut rt = forwarding::make_runtime(net, rec);
        let dst = NodeId(sources as u32);
        let pairs: Vec<_> = (0..sources as u32).map(|s| (NodeId(s), dst)).collect();
        forwarding::install_routes_for_pairs(&mut rt, &pairs).expect("line is connected");
        for &(s, _) in &pairs {
            rt.inject(forwarding::packet(s, s, dst, "payload"))
                .expect("valid");
            rt.run().expect("run");
        }
        out[slot] = rt.net().nodes().map(|m| rt.recorder().storage_at(m)).sum();
    }
    (out[0], out[1])
}

/// The `--json` record for one Advanced-vs-InterClass comparison.
fn ablation_json(case: &str, plain: usize, inter: usize) -> Json {
    Json::obj([
        ("record", Json::Str("ablation".into())),
        ("case", Json::Str(case.into())),
        ("advanced_bytes", Json::UInt(plain as u64)),
        ("inter_class_bytes", Json::UInt(inter as u64)),
        (
            "saving_pct",
            Json::Float((1.0 - inter as f64 / plain as f64) * 100.0),
        ),
    ])
}

fn main() {
    let cli = Cli::parse();

    // Forwarding: many sources toward few destinations maximizes shared
    // path suffixes, the case inter-class compression targets.
    let fwd = FwdConfig {
        seed: cli.seed,
        pairs: 60,
        rate_per_pair: 5.0,
        duration: SimTime::from_secs(5),
        ..FwdConfig::default()
    };
    let plain = run_forwarding(Scheme::Advanced, &fwd).m.total_storage();
    let inter = run_forwarding(Scheme::AdvancedInterClass, &fwd)
        .m
        .total_storage();
    if cli.json {
        println!("{}", ablation_json("forwarding", plain, inter));
    } else {
        print_table(
            "forwarding: Advanced vs +InterClass",
            &[
                ("Advanced (5.3) bytes", plain.to_string()),
                ("Advanced+InterClass (5.4) bytes", inter.to_string()),
                (
                    "inter-class saving",
                    format!("{:.1}%", (1.0 - inter as f64 / plain as f64) * 100.0),
                ),
            ],
        );
    }

    // DNS: every resolution shares the delegation chain prefix from the
    // root, so node sharing across classes is pervasive.
    let dns = DnsConfig {
        seed: cli.seed,
        ..DnsConfig::default()
    };
    let plain = run_dns(Scheme::Advanced, &dns).m.total_storage();
    let inter = run_dns(Scheme::AdvancedInterClass, &dns).m.total_storage();
    if cli.json {
        println!("{}", ablation_json("dns", plain, inter));
    } else {
        print_table(
            "dns: Advanced vs +InterClass",
            &[
                ("Advanced (5.3) bytes", plain.to_string()),
                ("Advanced+InterClass (5.4) bytes", inter.to_string()),
                (
                    "inter-class saving",
                    format!("{:.1}%", (1.0 - inter as f64 / plain as f64) * 100.0),
                ),
            ],
        );
    }

    // The favorable regime: heavy cross-class node sharing (Section 5.4's
    // own example is a packet entering mid-path). With k sources converging
    // on one destination, plain Advanced stores O(k^2) chain rows while the
    // split shares the O(k) concrete nodes.
    let (plain, inter) = convergecast(20);
    if cli.json {
        println!("{}", ablation_json("convergecast", plain, inter));
        return;
    }
    print_table(
        "convergecast (20 sources -> 1 dest): Advanced vs +InterClass",
        &[
            ("Advanced (5.3) bytes", plain.to_string()),
            ("Advanced+InterClass (5.4) bytes", inter.to_string()),
            (
                "inter-class saving",
                format!("{:.1}%", (1.0 - inter as f64 / plain as f64) * 100.0),
            ),
        ],
    );
}
