//! Figure 15: bandwidth consumption for DNS resolution (100,000 requests
//! in the paper).
//!
//! Paper result: ExSPAN and Basic track each other (~4.5 MBps); Advanced
//! runs ~25% higher because DNS requests carry no payload, so the tagged
//! metadata (existFlag, evid, equivalence-key hash) is a visible fraction
//! of every message.

use dpc_bench::{
    emit_run_json, emit_timeseries_json, print_series, print_table, run_dns, Cli, DnsConfig, Scheme,
};
use dpc_netsim::SimTime;

fn main() {
    let cli = Cli::parse();
    let total = if cli.paper_scale { 100_000 } else { 5_000 };
    let cfg = DnsConfig {
        seed: cli.seed,
        total_requests: Some(total),
        duration: SimTime::from_secs(10),
        ..DnsConfig::default()
    };
    if !cli.json {
        println!("Figure 15 — DNS bandwidth ({total} requests)");
    }

    let mut xs: Vec<f64> = Vec::new();
    let mut series = Vec::new();
    let mut totals = Vec::new();
    for scheme in Scheme::PAPER {
        let out = run_dns(scheme, &cfg);
        if cli.json {
            emit_run_json("fig15", scheme.name(), &out.m);
            if cli.timeseries {
                emit_timeseries_json(&out.m);
            }
        }
        // Bandwidth-over-time from the sampler's cumulative
        // `net.bytes_total` series, differentiated between stamps.
        let rate = out.m.bandwidth_rate_series();
        if xs.is_empty() {
            xs = rate.iter().map(|&(s, _)| s).collect();
        }
        let ys: Vec<f64> = rate.iter().map(|&(_, b)| b / 1_000_000.0).collect();
        totals.push((scheme.name(), out.m.total_traffic));
        series.push((scheme.name(), ys));
    }
    if cli.json {
        return;
    }
    print_series("bandwidth", "second", "MB/s", &xs, &series);
    let ex = totals[0].1 as f64;
    let adv = totals[2].1 as f64;
    print_table(
        "totals",
        &[
            ("ExSPAN bytes", totals[0].1.to_string()),
            ("Basic bytes", totals[1].1.to_string()),
            ("Advanced bytes", totals[2].1.to_string()),
            (
                "Advanced overhead vs ExSPAN",
                format!("{:.1}% (paper: ~25%)", (adv / ex - 1.0) * 100.0),
            ),
        ],
    );
}
