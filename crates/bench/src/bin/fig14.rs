//! Figure 14: DNS storage vs. number of requested URLs, with the request
//! count fixed (200 in the paper).
//!
//! Paper result: ExSPAN (~2.5 MB) and Basic (~2.26 MB) stay flat;
//! Advanced grows ~11.6 Kb per URL (one shared tree per equivalence
//! class) while remaining far below both.

use dpc_bench::{emit_run_json_with, print_series, run_dns, Cli, DnsConfig, Scheme};
use dpc_telemetry::json::Json;

fn main() {
    let cli = Cli::parse();
    let total_requests = 200;
    let url_counts: Vec<usize> = (1..=8).map(|k| k * 10).collect();
    if !cli.json {
        println!("Figure 14 — DNS storage vs. URLs ({total_requests} requests total)");
    }

    let xs: Vec<f64> = url_counts.iter().map(|&u| u as f64).collect();
    let mut series = Vec::new();
    for scheme in Scheme::PAPER {
        let mut ys = Vec::new();
        for &urls in &url_counts {
            let cfg = DnsConfig {
                seed: cli.seed,
                urls,
                total_requests: Some(total_requests),
                ..DnsConfig::default()
            };
            let out = run_dns(scheme, &cfg);
            if cli.json {
                emit_run_json_with(
                    "fig14",
                    scheme.name(),
                    vec![("urls", Json::UInt(urls as u64))],
                    &out.m,
                );
            }
            ys.push(dpc_workload::mb(out.m.total_storage()));
        }
        series.push((scheme.name(), ys));
    }
    if cli.json {
        return;
    }
    print_series("total storage", "urls", "MB", &xs, &series);

    // The Advanced slope, reported as Kb/URL like the paper.
    let adv = &series[2].1;
    let slope_mb =
        (adv.last().unwrap() - adv.first().unwrap()) / (xs.last().unwrap() - xs.first().unwrap());
    println!(
        "Advanced slope: {:.1} Kb per URL (paper: 11.6 Kb)",
        slope_mb * 8.0 * 1000.0
    );
}
