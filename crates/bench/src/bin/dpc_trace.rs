//! `dpc-trace` — run the forwarding workload with causal span tracing
//! on, execute simulated provenance queries against the Advanced store,
//! and attribute where query latency goes.
//!
//! Prints the aggregate critical-path breakdown (network / join /
//! equivalence / storage) and the top-k slowest queries, and writes the
//! full span set as Chrome trace-event JSON — load it in Perfetto or
//! `chrome://tracing` to see maintenance executions and queries on one
//! simulated-time axis.
//!
//! Flags on top of the shared harness CLI:
//!
//! * `--queries <n>` — provenance queries to run and attribute (20).
//! * `--top <k>` — slowest queries to list (10).
//! * `--out <path>` — Chrome trace output path (`dpc.trace.json`).

use dpc_bench::{
    print_trace_report, run_traced_queries, span_histograms_json, trace_summary_json, Cli,
    FwdConfig,
};
use dpc_netsim::SimTime;
use dpc_telemetry::chrome_trace;

fn fail(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: dpc-trace [--queries <n>] [--top <k>] [--out <path>] \
         [--paper-scale] [--seed <n>] [--json] [--trace-sample <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut queries = 20usize;
    let mut top = 10usize;
    let mut out_path = String::from("dpc.trace.json");
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--queries" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => queries = n,
                None => fail("--queries requires an integer"),
            },
            "--top" => match args.next().and_then(|s| s.parse().ok()) {
                Some(k) => top = k,
                None => fail("--top requires an integer"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => fail("--out requires a path"),
            },
            _ => rest.push(a),
        }
    }
    let cli = match Cli::parse_from(rest) {
        Ok(cli) => cli,
        Err(msg) => fail(&msg),
    };

    let cfg = FwdConfig {
        seed: cli.seed,
        duration: if cli.paper_scale {
            SimTime::from_secs(10)
        } else {
            SimTime::from_secs(4)
        },
        trace_sample: cli.trace_sample,
        ..FwdConfig::default()
    };
    let out = run_traced_queries(&cfg, queries);

    if cli.json {
        println!(
            "{}",
            trace_summary_json("trace", "Advanced", &out.queries, top)
        );
        for row in span_histograms_json(&out.spans) {
            println!("{row}");
        }
    } else {
        print_trace_report(&out.queries, top);
    }

    let doc = chrome_trace(&out.spans).to_string();
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    if !cli.json {
        println!();
        println!(
            "wrote {} spans to {out_path} (load in Perfetto / chrome://tracing)",
            out.spans.len()
        );
    }
}
