//! Figure 16: total DNS provenance storage over time at a constant
//! request rate.
//!
//! Paper result: growth rates 13.15 / 11.57 / 3.81 Mbps for ExSPAN /
//! Basic / Advanced; at 100 s the totals reach 1.32 / 1.16 / 0.38 GB —
//! Advanced roughly 3.5x below ExSPAN.

use dpc_bench::{
    emit_run_json, emit_timeseries_json, print_series, run_dns_schemes, Cli, DnsConfig, Scheme,
};

fn main() {
    let cli = Cli::parse();
    let cfg = if cli.paper_scale {
        DnsConfig::paper_scale(cli.seed)
    } else {
        DnsConfig {
            seed: cli.seed,
            ..DnsConfig::default()
        }
    };
    let runs = run_dns_schemes(&cfg, &Scheme::PAPER);
    if cli.json {
        for (scheme, out) in &runs {
            emit_run_json("fig16", scheme.name(), &out.m);
            if cli.timeseries {
                emit_timeseries_json(&out.m);
            }
        }
        return;
    }
    println!(
        "Figure 16 — DNS storage over time ({} req/s for {}s)",
        cfg.rate,
        cfg.duration.as_secs_f64()
    );
    // The storage trajectory comes from the runtime's time-series
    // sampler (summed per-node `recorder.storage_bytes#n` series).
    let mut xs: Vec<f64> = Vec::new();
    let mut series = Vec::new();
    for (scheme, out) in runs {
        let storage = out.m.storage_series();
        if xs.is_empty() {
            xs = storage.iter().map(|&(t, _)| t as f64 / 1e9).collect();
        }
        let ys: Vec<f64> = storage
            .iter()
            .map(|&(_, b)| dpc_workload::mb(b as usize))
            .collect();
        let rate_mbps = dpc_workload::mbps(out.m.total_storage(), out.m.duration);
        eprintln!("  {}: {:.2} Mbps growth", scheme.name(), rate_mbps);
        series.push((scheme.name(), ys));
    }
    print_series("total DNS provenance storage", "second", "MB", &xs, &series);
}
