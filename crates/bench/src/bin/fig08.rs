//! Figure 8: CDF of per-node provenance storage growth rate, packet
//! forwarding, 100 communicating pairs.
//!
//! Paper result: ExSPAN has 20% of nodes above 5 Mbps (transit nodes above
//! 30 Mbps); Advanced keeps every node under 2 Mbps — roughly an 11x
//! mean reduction. Expect the same ordering and a similar gap here.

use dpc_bench::{emit_run_json, print_cdf, run_forwarding_schemes, Cli, FwdConfig, Scheme};
use dpc_workload::Cdf;

fn main() {
    let cli = Cli::parse();
    let cfg = if cli.paper_scale {
        FwdConfig::paper_scale(cli.seed)
    } else {
        FwdConfig {
            seed: cli.seed,
            pairs: 100,
            rate_per_pair: 10.0,
            duration: dpc_netsim::SimTime::from_secs(10),
            ..FwdConfig::default()
        }
    };
    let runs = run_forwarding_schemes(&cfg, &Scheme::PAPER);
    if cli.json {
        for (scheme, out) in &runs {
            emit_run_json("fig08", scheme.name(), &out.m);
        }
        return;
    }
    println!(
        "Figure 8 — per-node storage growth CDF ({} pairs, {} pkt/s/pair, {}s)",
        cfg.pairs,
        cfg.rate_per_pair,
        cfg.duration.as_secs_f64()
    );
    let mut cdfs = Vec::new();
    for (scheme, out) in runs {
        eprintln!(
            "  {}: {} outputs, total {:.2} MB",
            scheme.name(),
            out.m.outputs,
            dpc_workload::mb(out.m.total_storage())
        );
        cdfs.push((scheme.name(), Cdf::new(out.m.growth_rates_mbps())));
    }
    let series: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (*n, c)).collect();
    print_cdf("per-node storage growth rate", "Mbps", &series);
}
