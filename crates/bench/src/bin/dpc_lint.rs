//! `dpc-lint` — static analysis for NDlog/DELP programs.
//!
//! Runs the full `dpc_ndlog::analyze` pipeline (DELP validation,
//! range-restriction, locality, dead rules, shadowing, equivalence-key
//! coverage, attribute kind inference) over one or more programs and
//! prints rustc-style diagnostics with source excerpts. For programs that
//! validate as DELPs it also compiles every rule with the engine's plan
//! compiler and audits the compiled plans against the static join-key
//! analysis.
//!
//! Targets:
//!
//! * `--bundled` — the four programs shipped in `dpc_ndlog::programs`.
//! * `path.ndlog` — a file of NDlog source.
//! * `path.rs` — a Rust file; every `r#"…"#` raw string that contains
//!   `:-` is extracted and linted as a program (how the examples and
//!   tests embed NDlog).
//!
//! Flags:
//!
//! * `--json` — one JSON object per target on stdout (JSON lines).
//! * `--deny-warnings` — exit non-zero if any warning fires.
//! * `--relaxed` — validate against the relaxed DELP rules
//!   (`Delp::new_relaxed`): Definition 1 dependency violations downgrade
//!   to warnings.
//! * `--no-audit` — skip the compiled-plan audit.
//! * `--list-codes` — print the diagnostic code table and exit.
//!
//! Exit codes: 0 clean, 1 diagnostics at failing severity (or parse /
//! audit failure), 2 usage or I/O error.

use dpc_engine::PlanSet;
use dpc_ndlog::{
    analyze, parse_program, render_parse_error, Code, Delp, Diagnostic, Mode, Severity,
};
use dpc_telemetry::Json;

fn fail(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: dpc-lint [--bundled] [--json] [--deny-warnings] [--relaxed] \
         [--no-audit] [--list-codes] [files...]"
    );
    std::process::exit(2);
}

/// Everything the linter learned about one target program.
struct Report {
    target: String,
    source: String,
    /// `(line, col, message)` when the program did not even parse.
    parse_error: Option<(usize, usize, String)>,
    diagnostics: Vec<Diagnostic>,
    /// `Some(n)`: n plans compiled and audited. `None`: audit skipped
    /// (flag, parse failure, or the program has validation errors).
    plans_audited: Option<usize>,
    audit_error: Option<String>,
}

impl Report {
    fn error_count(&self) -> usize {
        let base = self.diagnostics.iter().filter(|d| d.is_error()).count();
        base + usize::from(self.parse_error.is_some()) + usize::from(self.audit_error.is_some())
    }

    fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.is_error()).count()
    }
}

fn lint_source(target: &str, source: &str, mode: Mode, audit: bool) -> Report {
    let mut report = Report {
        target: target.to_string(),
        source: source.to_string(),
        parse_error: None,
        diagnostics: Vec::new(),
        plans_audited: None,
        audit_error: None,
    };
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(dpc_common::Error::Parse { line, col, msg }) => {
            report.parse_error = Some((line, col, msg));
            return report;
        }
        Err(e) => {
            report.parse_error = Some((0, 0, e.to_string()));
            return report;
        }
    };
    let analysis = analyze(&program, mode);
    let has_errors = analysis.has_errors();
    report.diagnostics = analysis.diagnostics;
    if audit && !has_errors {
        let delp = match mode {
            Mode::Strict => Delp::new(program),
            Mode::Relaxed => Delp::new_relaxed(program),
        };
        match delp.and_then(|d| PlanSet::compile(&d)).and_then(|p| {
            p.audit()?;
            Ok(p.len())
        }) {
            Ok(n) => report.plans_audited = Some(n),
            Err(e) => report.audit_error = Some(e.to_string()),
        }
    }
    report
}

/// Extract every `r#"…"#` raw string that looks like an NDlog program
/// (contains `:-`) from Rust source.
fn extract_programs(rust_src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = rust_src;
    while let Some(start) = rest.find("r#\"") {
        rest = &rest[start + 3..];
        let Some(end) = rest.find("\"#") else { break };
        let body = &rest[..end];
        if body.contains(":-") {
            out.push(body.to_string());
        }
        rest = &rest[end + 2..];
    }
    out
}

fn print_human(report: &Report) {
    if let Some((line, col, msg)) = &report.parse_error {
        if *line > 0 {
            print!(
                "{}",
                render_parse_error(&report.source, &report.target, *line, *col, msg)
            );
        } else {
            eprintln!("{}: parse error: {msg}", report.target);
        }
    }
    for d in &report.diagnostics {
        print!("{}", d.render(&report.source, &report.target));
    }
    if let Some(e) = &report.audit_error {
        println!("error: plan audit failed for `{}`: {e}", report.target);
    }
    let (errs, warns) = (report.error_count(), report.warning_count());
    let audit = match report.plans_audited {
        Some(n) => format!(", {n} plans audited"),
        None => String::new(),
    };
    println!("{}: {errs} errors, {warns} warnings{audit}", report.target);
}

fn label_json(l: &dpc_ndlog::Label) -> Json {
    Json::obj([
        ("line", Json::UInt(l.span.line as u64)),
        ("col", Json::UInt(l.span.col as u64)),
        ("start", Json::UInt(l.span.start as u64)),
        ("end", Json::UInt(l.span.end as u64)),
        ("message", Json::Str(l.message.clone())),
    ])
}

fn report_json(report: &Report) -> Json {
    let mut diags: Vec<Json> = Vec::new();
    if let Some((line, col, msg)) = &report.parse_error {
        diags.push(Json::obj([
            ("code", Json::Str("parse".into())),
            ("severity", Json::Str("error".into())),
            ("message", Json::Str(msg.clone())),
            ("line", Json::UInt(*line as u64)),
            ("col", Json::UInt(*col as u64)),
        ]));
    }
    for d in &report.diagnostics {
        diags.push(Json::obj([
            ("code", Json::Str(d.code.as_str().into())),
            ("severity", Json::Str(d.severity.to_string())),
            ("message", Json::Str(d.message.clone())),
            ("line", Json::UInt(d.primary.span.line as u64)),
            ("col", Json::UInt(d.primary.span.col as u64)),
            ("primary", label_json(&d.primary)),
            (
                "secondary",
                Json::Arr(d.secondary.iter().map(label_json).collect()),
            ),
        ]));
    }
    let audit = match (&report.plans_audited, &report.audit_error) {
        (Some(n), _) => Json::obj([("ok", Json::Bool(true)), ("plans", Json::UInt(*n as u64))]),
        (None, Some(e)) => Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(e.clone()))]),
        (None, None) => Json::Null,
    };
    Json::obj([
        ("target", Json::Str(report.target.clone())),
        ("errors", Json::UInt(report.error_count() as u64)),
        ("warnings", Json::UInt(report.warning_count() as u64)),
        ("diagnostics", Json::Arr(diags)),
        ("plan_audit", audit),
    ])
}

fn list_codes() {
    for code in Code::ALL {
        let sev = match code.default_severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        println!("{}  {:7}  {}", code.as_str(), sev, code.summary());
    }
}

fn main() {
    let mut json = false;
    let mut deny_warnings = false;
    let mut bundled = false;
    let mut audit = true;
    let mut mode = Mode::Strict;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--bundled" => bundled = true,
            "--no-audit" => audit = false,
            "--relaxed" => mode = Mode::Relaxed,
            "--list-codes" => {
                list_codes();
                return;
            }
            "--help" | "-h" => fail("dpc-lint: static analysis for NDlog/DELP programs"),
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            _ => files.push(a),
        }
    }
    if !bundled && files.is_empty() {
        fail("nothing to lint: pass --bundled and/or files");
    }

    let mut targets: Vec<(String, String)> = Vec::new();
    if bundled {
        use dpc_ndlog::programs;
        targets.push((
            "bundled:packet_forwarding".into(),
            programs::PACKET_FORWARDING.into(),
        ));
        targets.push((
            "bundled:dns_resolution".into(),
            programs::DNS_RESOLUTION.into(),
        ));
        targets.push(("bundled:dhcp".into(), programs::DHCP.into()));
        targets.push(("bundled:arp".into(), programs::ARP.into()));
    }
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        };
        if path.ends_with(".rs") {
            for (i, prog) in extract_programs(&src).into_iter().enumerate() {
                targets.push((format!("{path}#{i}"), prog));
            }
        } else {
            targets.push((path.clone(), src));
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (target, source) in &targets {
        let report = lint_source(target, source, mode, audit);
        errors += report.error_count();
        warnings += report.warning_count();
        if json {
            println!("{}", report_json(&report));
        } else {
            print_human(&report);
        }
    }
    if !json {
        println!(
            "dpc-lint: {} targets, {errors} errors, {warnings} warnings",
            targets.len()
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
