//! Figure 13: CDF of per-nameserver storage growth rate, DNS resolution
//! at 1000 requests/second.
//!
//! Paper result: at the 80th percentile ExSPAN grows at 476 Kbps vs
//! Advanced's 121 Kbps — about 4x (less than forwarding's 11x because the
//! total event throughput is rated, spreading load over the tree).

use dpc_bench::{emit_run_json_with, print_cdf, run_dns_schemes, Cli, DnsConfig, Scheme};
use dpc_telemetry::json::Json;
use dpc_workload::Cdf;

fn main() {
    let cli = Cli::parse();
    let cfg = if cli.paper_scale {
        DnsConfig::paper_scale(cli.seed)
    } else {
        DnsConfig {
            seed: cli.seed,
            ..DnsConfig::default()
        }
    };
    let runs = run_dns_schemes(&cfg, &Scheme::PAPER);
    if cli.json {
        for (scheme, out) in &runs {
            emit_run_json_with(
                "fig13",
                scheme.name(),
                vec![
                    ("injected", Json::UInt(out.injected as u64)),
                    ("resolved", Json::UInt(out.resolved as u64)),
                ],
                &out.m,
            );
        }
        return;
    }
    println!(
        "Figure 13 — per-nameserver storage growth CDF ({} servers, {} URLs, {} req/s)",
        cfg.servers, cfg.urls, cfg.rate
    );
    let mut cdfs = Vec::new();
    for (scheme, out) in runs {
        eprintln!(
            "  {}: {}/{} resolved, total {:.2} MB",
            scheme.name(),
            out.resolved,
            out.injected,
            dpc_workload::mb(out.m.total_storage())
        );
        // Kbps is the natural unit at DNS row sizes.
        let rates: Vec<f64> = out
            .m
            .growth_rates_mbps()
            .iter()
            .map(|m| m * 1000.0)
            .collect();
        cdfs.push((scheme.name(), Cdf::new(rates)));
    }
    let series: Vec<(&str, &Cdf)> = cdfs.iter().map(|(n, c)| (*n, c)).collect();
    print_cdf("per-nameserver storage growth rate", "Kbps", &series);
    println!(
        "ExSPAN/Advanced p80 ratio: {:.2}x (paper: ~4x)",
        cdfs[0].1.quantile(0.8) / cdfs[2].1.quantile(0.8).max(1e-9)
    );
}
