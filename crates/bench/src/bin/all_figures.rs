//! Run every figure harness in sequence (scaled-down configurations).
//!
//! This is a convenience wrapper: each `figNN` binary can also be run
//! individually, with `--paper-scale` for the paper's parameters.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failures = 0;
    for fig in [
        "tables", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        "ablation",
    ] {
        println!("\n================ {fig} ================");
        let status = Command::new(dir.join(fig))
            .args(std::env::args().skip(1))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{fig} exited with {s}");
                failures += 1;
            }
            Err(e) => {
                eprintln!(
                    "could not run {fig}: {e} (build with `cargo build -p dpc-bench --bins`)"
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
